"""Flexible-size accelerators and tile/dataflow selection (Sec. IV-C).

The v4 accelerator accepts any rectangular (tM, tN, tK) tile that is a
multiple of 16 and fits its buffers, configured at run time by the
``cfg`` opcode.  For a tall/skinny problem the best square tile wastes
buffer space; the Best heuristic searches flows x rectangular tiles
using the transfer-volume model and AXI4MLIR regenerates the driver for
the chosen configuration.

Run:  python examples/flexible_tiling.py
"""

import numpy as np

from repro import AXI4MLIRCompiler, make_pynq_z2
from repro.accelerators import make_matmul_system
from repro.heuristics import (
    best_configuration,
    square_tile_configuration,
)

M, N, K = 128, 32, 256          # a tall/skinny permutation
QUANTUM, CAPACITY = 16, 16 * 16 * 16

rng = np.random.default_rng(5)
a = rng.integers(-8, 8, (M, K)).astype(np.int32)
b = rng.integers(-8, 8, (K, N)).astype(np.int32)
expected = a.astype(np.int64) @ b.astype(np.int64)


def run(flow: str, tiles) -> float:
    hardware, info = make_matmul_system(4, 16, flow=flow, accel_size=tiles)
    board = make_pynq_z2()
    board.attach_accelerator(hardware)
    kernel = AXI4MLIRCompiler(info).compile_matmul(M, N, K)
    c = np.zeros((M, N), np.int32)
    counters = kernel.run(board, a, b, c)
    assert np.array_equal(c, expected)
    return counters.task_clock_ms()


print(f"MatMul {M}x{N}x{K} on the v4-16 flexible accelerator\n")
print(f"{'strategy':18} {'tiles':>14} {'modelled words':>15} "
      f"{'measured':>12}")
for flow in ("As", "Bs", "Cs"):
    choice = square_tile_configuration(M, N, K, flow, QUANTUM, CAPACITY)
    ms = run(flow, choice.tiles)
    print(f"{flow + '-squareTile':18} {str(choice.tiles):>14} "
          f"{choice.words_moved:>15,} {ms:>10.3f}ms")

best = best_configuration(M, N, K, QUANTUM, CAPACITY)
ms = run(best.flow, best.tiles)
print(f"{'Best (' + best.flow + ')':18} {str(best.tiles):>14} "
      f"{best.words_moved:>15,} {ms:>10.3f}ms")
print(f"\nBest configuration: {best.label()} — rectangular tiles use the "
      f"accelerator's buffers where the problem actually has extent.")
