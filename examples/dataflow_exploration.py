"""Dataflow exploration: one accelerator, four flows, zero rewrites.

The paper's central productivity claim: switching the host-accelerator
dataflow (Nothing/A/B/C-stationary) is a one-line change in the
configuration, and the compiler regenerates the driver — no manual
rewrite.  This example compiles all four flows for the same v3
accelerator, shows how the generated loop structure changes, and
compares runtime and DMA traffic.

Run:  python examples/dataflow_exploration.py
"""

import numpy as np

from repro import AXI4MLIRCompiler, make_pynq_z2
from repro.accelerators import make_matmul_system

DIMS = 128
SIZE = 16

rng = np.random.default_rng(1)
a = rng.integers(-8, 8, (DIMS, DIMS)).astype(np.int32)
b = rng.integers(-8, 8, (DIMS, DIMS)).astype(np.int32)
expected = a.astype(np.int64) @ b.astype(np.int64)

print(f"MatMul {DIMS}x{DIMS}x{DIMS} on a v3-{SIZE} accelerator\n")
results = []
for flow in ("Ns", "As", "Bs", "Cs"):
    hardware, info = make_matmul_system(3, SIZE, flow=flow)
    board = make_pynq_z2()
    board.attach_accelerator(hardware)
    kernel = AXI4MLIRCompiler(info).compile_matmul(DIMS, DIMS, DIMS)
    c = np.zeros((DIMS, DIMS), np.int32)
    counters = kernel.run(board, a, b, c)
    assert np.array_equal(c, expected)
    results.append((flow, kernel, counters))

print(f"{'flow':5} {'loop order':12} {'task-clock':>11} "
      f"{'to accel':>11} {'from accel':>11} {'DMA txns':>9}")
for flow, kernel, counters in results:
    order = "(" + ", ".join(kernel.plan.loop_order) + ")"
    print(f"{flow:5} {order:12} {counters.task_clock_ms():>9.3f}ms "
          f"{counters.dma_bytes_to_accel:>10,}B "
          f"{counters.dma_bytes_from_accel:>10,}B "
          f"{counters.dma_transactions:>9}")

print("\nObservations (matching paper Figs. 11-13):")
ns = results[0][2]
cs = results[3][2]
print(f"- A/B-stationary cut input traffic; C-stationary cuts output "
      f"traffic {ns.dma_bytes_from_accel // cs.dma_bytes_from_accel}x")
print(f"- Cs is the fastest flow here: "
      f"{ns.task_clock_ms() / cs.task_clock_ms():.2f}x vs Ns")

print("\n--- generated inner structure, As flow (compare paper Fig. 6b) ---")
as_kernel = results[1][1]
for line in as_kernel.source.splitlines():
    if "for " in line or "send_memref" in line or "recv" in line \
            or "flush" in line:
        print(line)
