"""Drive the convolution accelerator on ResNet18 layers (paper Sec. IV-D).

The conv engine is filter/output stationary: the host configures filter
and channel geometry (the ``rst`` opcode pair), sends one 3-D filter per
output channel, streams input windows (``sIcO``), and collects the whole
output slice (``rO``).  AXI4MLIR generates that orchestration from the
``(sF (sIcO) rO)`` opcode flow.

Run:  python examples/conv_resnet_layer.py
"""

import numpy as np

from repro import AXI4MLIRCompiler, make_pynq_z2
from repro.accelerators import make_conv_system
from repro.baselines import cpu_conv, manual_conv_driver
from repro.accelerators import ConvAccelerator
from repro.frontends import RESNET18_LAYERS, scaled_layer

# Pick two interesting layers: a 3x3 layer (copy specialization applies)
# and the paper's regressing 1x1 layer.  Spatially scaled for speed.
chosen = [
    scaled_layer(next(l for l in RESNET18_LAYERS
                      if l.label == "30_128_3_128_1")),
    scaled_layer(next(l for l in RESNET18_LAYERS
                      if l.label == "56_64_1_128_2")),
]

rng = np.random.default_rng(3)
for layer in chosen:
    print(f"\n=== layer {layer.label} (run at {layer.in_hw}x{layer.in_hw}"
          f" spatial, {layer.out_ch} output channels) ===")
    image = rng.integers(-4, 4, layer.input_shape()).astype(np.int32)
    weights = rng.integers(-4, 4, layer.filter_shape()).astype(np.int32)
    expected, _ = cpu_conv(make_pynq_z2(), image, weights, layer.stride)

    # AXI4MLIR-generated driver.
    hardware, info = make_conv_system(layer.in_ch, layer.f_hw,
                                      max_slice=layer.out_hw ** 2)
    board = make_pynq_z2()
    board.attach_accelerator(hardware)
    kernel = AXI4MLIRCompiler(info).compile_conv(
        layer.batch, layer.in_ch, layer.in_hw, layer.out_ch,
        layer.f_hw, layer.stride,
    )
    out = np.zeros(layer.output_shape(), np.int32)
    generated = kernel.run(board, image, weights, out)
    assert np.array_equal(out, expected)

    # Hand-written baseline on identical hardware.
    board2 = make_pynq_z2()
    board2.attach_accelerator(
        ConvAccelerator(max_ic=layer.in_ch, max_fhw=layer.f_hw,
                        max_slice=layer.out_hw ** 2)
    )
    out2 = np.zeros(layer.output_shape(), np.int32)
    manual = manual_conv_driver(board2, image, weights, out2, layer.stride)
    assert np.array_equal(out2, expected)

    speedup = manual.task_clock_ms() / generated.task_clock_ms()
    verdict = "win" if speedup > 1 else (
        "regression: fHW=1 rows defeat the strided-copy optimization"
    )
    print(f"generated: {generated.task_clock_ms():8.3f} ms   "
          f"manual: {manual.task_clock_ms():8.3f} ms   "
          f"speedup {speedup:.2f}x ({verdict})")

print("\n--- generated driver head (compare paper Fig. 15b) ---")
print("\n".join(kernel.source.splitlines()[:30]))
