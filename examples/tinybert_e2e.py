"""TinyBERT end-to-end co-execution (paper Sec. IV-E, Fig. 17).

Runs a (reduced) TinyBERT encoder stack functionally, routing the
projection/FFN GEMMs through the simulated v4 accelerator via the
compiled AXI4MLIR driver, and verifies the numerics against a pure
numpy forward pass.  Then prints the full-size Fig. 17 time
decomposition (CPU vs Ns-SquareTile vs Best).

Run:  python examples/tinybert_e2e.py
"""

import numpy as np

from repro import AXI4MLIRCompiler, make_pynq_z2
from repro.accelerators import make_matmul_system
from repro.experiments import fig17_rows, format_table
from repro.frontends import TinyBertConfig, TinyBertModel

# -- functional co-execution on a reduced model ----------------------------
config = TinyBertConfig(num_layers=2, hidden=64, heads=4, ffn=128,
                        seq_len=16, batch=1)
model = TinyBertModel(config, seed=42)
x = np.random.default_rng(9).standard_normal(
    (config.tokens, config.hidden)
).astype(np.float32)

reference = model.forward(x)                      # all-numpy

kernel_cache = {}


def accel_matmul(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Route one GEMM through the compiled driver on a fresh board."""
    m, k = lhs.shape
    k2, n = rhs.shape
    key = (m, n, k)
    if key not in kernel_cache:
        hardware, info = make_matmul_system(3, 16, flow="Cs",
                                            dtype=np.float32)
        compiler = AXI4MLIRCompiler(info)
        kernel_cache[key] = (compiler.compile_matmul(m, n, k), info)
    kernel, info = kernel_cache[key]
    board = make_pynq_z2()
    hardware, _ = make_matmul_system(3, 16, flow="Cs", dtype=np.float32)
    board.attach_accelerator(hardware)
    out = np.zeros((m, n), np.float32)
    accel_matmul.counters.append(
        kernel.run(board, lhs.astype(np.float32),
                   rhs.astype(np.float32), out)
    )
    return out


accel_matmul.counters = []
co_executed = model.forward(x, matmul_fn=accel_matmul)

max_err = float(np.max(np.abs(co_executed - reference)))
gemms = len(accel_matmul.counters)
total_ms = sum(c.task_clock_ms() for c in accel_matmul.counters)
print(f"reduced TinyBERT: {gemms} GEMMs offloaded, "
      f"max |accel - numpy| = {max_err:.2e}")
assert max_err < 1e-3
print(f"accelerated GEMM simulated time: {total_ms:.2f} ms\n")

# -- the Fig. 17 decomposition at full model size ---------------------------
print("Fig. 17 — TinyBERT (4 layers, hidden 312, seq 128, batch 2):")
rows = fig17_rows()
print(format_table(rows, ("strategy", "other_layers_s", "matmuls_cpu_s",
                          "matmuls_acc_s", "e2e_s", "e2e_speedup",
                          "matmul_speedup")))
