"""Submit kernels to the compile/simulate service and ride its retries.

The service (``repro.service``) turns the in-process pipeline into a
shared long-lived resource: one server owns a pool of workers and the
kernel store; many clients submit (accelerator config, kernel, shape,
inputs) and get back PerfCounters + outputs bit-identical to a local
run.  This example shows the client-side ladder end to end:

1. start a tiny server in-process (one worker, a two-slot queue);
2. submit a matmul and a conv and check the results;
3. saturate the queue so a submit is shed with a structured ``BUSY``
   + ``retry_after_s``, and watch the client's seeded backoff absorb
   it transparently;
4. read the ``health`` RPC: queue depth, breaker states, counters.

Run:  python examples/service_client.py
"""

import threading

import numpy as np

from repro.service import BackoffSchedule, ServiceClient, ServiceServer

# -- 1. A deliberately tiny server ----------------------------------------
# One worker and a short queue make backpressure easy to demonstrate;
# production-shaped deployments run `python -m repro.service` with the
# REPRO_SERVICE_* knobs instead.
server = ServiceServer(workers=1, queue_max=2).start()
print(f"server: {server.address} ({server.workers} worker)")

client = ServiceClient(server.address, seed=7)

# -- 2. A matmul and a conv over the wire ---------------------------------
rng = np.random.default_rng(0)
a = rng.integers(-8, 8, (16, 8)).astype(np.int32)
b = rng.integers(-8, 8, (8, 12)).astype(np.int32)
counters, product = client.matmul(a, b, size=4, version=1, flow="Ns")
assert np.array_equal(product, a @ b)
print(f"matmul:  {counters.task_clock_ms():.3f} ms task-clock, "
      f"output {product.shape} verified")

image = rng.integers(-4, 4, (1, 2, 8, 8)).astype(np.int32)
weights = rng.integers(-4, 4, (3, 2, 3, 3)).astype(np.int32)
counters, feature_map = client.conv(image, weights)
print(f"conv:    {counters.task_clock_ms():.3f} ms task-clock, "
      f"output {feature_map.shape}")

# -- 3. Backpressure + retry ----------------------------------------------
# Flood the one-worker server from background threads until the
# admission queue fills; the client's submit() retries BUSY responses
# with the server's retry_after hint plus seeded jitter, so every
# request still completes.
shapes = [(16, 8, 12), (24, 8, 8), (16, 16, 8), (8, 8, 24), (32, 8, 8)]


def submit_one(m, k, n, results, index):
    left = rng_pool[index].integers(-8, 8, (m, k)).astype(np.int32)
    right = rng_pool[index].integers(-8, 8, (k, n)).astype(np.int32)
    with ServiceClient(server.address, seed=index) as flood_client:
        _, out = flood_client.matmul(left, right, size=4, version=1,
                                     flow="Ns")
    results[index] = np.array_equal(out, left @ right)


rng_pool = [np.random.default_rng(index) for index in range(len(shapes))]
results = [None] * len(shapes)
threads = [
    threading.Thread(target=submit_one, args=(m, k, n, results, index))
    for index, (m, k, n) in enumerate(shapes)
]
for thread in threads:
    thread.start()
for thread in threads:
    thread.join()
assert all(results), results
health = client.health()
print(f"flood:   {len(shapes)} concurrent submits OK "
      f"({health['counters']['service_shed_busy']} shed BUSY, "
      f"{health['counters']['service_coalesced']} coalesced)")

# The retry schedule itself is deterministic per (seed, site) — the
# same idiom the fault-injection streams use:
schedule = [round(delay, 4) for delay in BackoffSchedule(7, "submit").delays(4)]
print(f"backoff: seed 7 schedule {schedule}")

# -- 4. Observability -----------------------------------------------------
print(f"health:  status={health['status']} "
      f"queue={health['queue_depth']}/{health['queue_max']} "
      f"breakers=store:{health['breakers']['store']['state']} "
      f"native:{health['breakers']['native']['state']}")

client.close()
summary = server.drain()
print(f"drain:   {summary['counters']['service_ok']} served, "
      f"{summary['counters']['service_workers_merged']} worker "
      f"deltas merged")
