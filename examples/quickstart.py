"""Quickstart: offload a matrix multiplication to a custom accelerator.

The AXI4MLIR workflow in five steps (paper Fig. 4):

1. describe the accelerator + host CPU in a configuration file;
2. express the computation as a linalg-level program;
3. let the compiler tile it, pick the dataflow, and generate host code;
4. run the generated driver against the (simulated) board;
5. read back results and performance counters.

Run:  python examples/quickstart.py
"""

import json

import numpy as np

from repro import AXI4MLIRCompiler, make_pynq_z2, parse_config
from repro.accelerators import MatMulAccelerator, matmul_config_dict

# -- 1. The configuration file (paper Fig. 5) -----------------------------
# A v3 accelerator: 16x16x16 tiles, separate sA/sB/cC/rC opcodes, so the
# host may keep inputs or the output stationary.  We pick the
# C-stationary flow: stream A and B tiles, read C back once per C tile.
config_text = json.dumps({
    "cpu": {
        "cache-levels": ["32K", "512K"],
        "cache-types": ["data", "shared"],
    },
    "accelerators": [matmul_config_dict(version=3, size=16, flow="Cs")],
})
system = parse_config(json.loads(config_text))
accel_info = system.accelerator()
print(f"accelerator: {accel_info.name}")
print(f"opcodes:     {accel_info.opcode_map}")
print(f"flow:        {accel_info.flow}")

# -- 2/3. Compile a 64x64x64 MatMul for it --------------------------------
compiler = AXI4MLIRCompiler(accel_info, cpu=system.cpu)
kernel = compiler.compile_matmul(64, 64, 64)

print("\n--- generated host driver code ---")
print(kernel.source)

# -- 4. Run it against the simulated PYNQ-Z2 -------------------------------
board = make_pynq_z2(cpu_info=system.cpu)
board.attach_accelerator(MatMulAccelerator(size=16, version=3))

rng = np.random.default_rng(0)
a = rng.integers(-8, 8, (64, 64)).astype(np.int32)
b = rng.integers(-8, 8, (64, 64)).astype(np.int32)
c = np.zeros((64, 64), np.int32)
counters = kernel.run(board, a, b, c)

# -- 5. Check results and look at the counters ------------------------------
assert np.array_equal(c, a @ b), "offloaded result mismatch!"
print("--- execution ---")
print(f"result correct:      True")
print(f"task-clock:          {counters.task_clock_ms():.3f} ms")
print(f"cache-references:    {counters.cache_references:,.0f}")
print(f"branch-instructions: {counters.branch_instructions:,.0f}")
print(f"DMA transactions:    {counters.dma_transactions}")
print(f"bytes to accel:      {counters.dma_bytes_to_accel:,}")
print(f"bytes from accel:    {counters.dma_bytes_from_accel:,}")
