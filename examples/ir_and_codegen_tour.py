"""A tour of the compiler internals: IR at every stage of the pipeline.

Shows what the paper's Figs. 2, 6a, and 6b look like in this library:
the linalg-level program, the trait attributes the annotate pass
attaches, the lowered scf+accel IR, and the emitted Python host code —
plus the interpreter/emitted-code equivalence check.

Run:  python examples/ir_and_codegen_tour.py
"""

import numpy as np

from repro import make_pynq_z2
from repro.accelerators import MatMulAccelerator, make_matmul_system
from repro.codegen import compile_host_function
from repro.compiler import build_matmul_module
from repro.ir import print_op
from repro.transforms import (
    AnnotateForAcceleratorPass,
    GeneralizeNamedOpsPass,
    LowerToAccelPass,
)
from repro.transforms.pass_manager import PassManager

hardware, info = make_matmul_system(version=3, size=4, flow="As")
module = build_matmul_module(8, 8, 8, info.data_type)

print("=== 1. linalg level (paper Fig. 2a) ===")
print(module)

pm = PassManager()
pm.add(GeneralizeNamedOpsPass())
annotate = AnnotateForAcceleratorPass(info)
pm.add(annotate)
pm.run(module)

print("\n=== 2. after match-and-annotate (paper Fig. 6a trait) ===")
generic = annotate.annotated[0]
for key, value in generic.attributes.items():
    if key.startswith("accel."):
        print(f"  {key} = {value}")

lower = LowerToAccelPass(enable_cpu_tiling=False)
lower.run(module)
print("\n=== 3. lowered scf + accel IR (paper Fig. 6b) ===")
print(module)

plan = lower.plans[0]
print(f"\nloop order {plan.loop_order} (A-stationary: the compiler "
      f"derived the paper's (m, k, n) permutation from the flow)")

func_op = module.lookup("matmul_call")
entry, source = compile_host_function(func_op)
print("\n=== 4. emitted Python host code ===")
print(source)

print("=== 5. interpreter vs emitted code ===")
from repro.compiler import CompiledKernel  # noqa: E402

kernel = CompiledKernel(module=module, func_name="matmul_call",
                        source=source, entry_point=entry, plan=plan)
rng = np.random.default_rng(0)
a = rng.integers(-5, 5, (8, 8)).astype(np.int32)
b = rng.integers(-5, 5, (8, 8)).astype(np.int32)

board1 = make_pynq_z2()
board1.attach_accelerator(MatMulAccelerator(4, version=3))
c1 = np.zeros((8, 8), np.int32)
emitted = kernel.run(board1, a, b, c1)

board2 = make_pynq_z2()
board2.attach_accelerator(MatMulAccelerator(4, version=3))
c2 = np.zeros((8, 8), np.int32)
interpreted = kernel.run_interpreted(board2, a, b, c2)

assert np.array_equal(c1, a @ b) and np.array_equal(c2, a @ b)
print(f"results identical: {np.array_equal(c1, c2)}")
print(f"emitted     task-clock {emitted.task_clock_ms():.4f} ms, "
      f"refs {emitted.cache_references:.0f}")
print(f"interpreted task-clock {interpreted.task_clock_ms():.4f} ms, "
      f"refs {interpreted.cache_references:.0f}")

print("\n=== 6. textual IR round-trip: parse a module from text ===")
# The printer's output is also the parser's input: whole pipelines can
# start from an .mlir string (or fixture file) instead of Python builders.
from repro.ir import parse_module, print_module  # noqa: E402
from repro.transforms import parse_pass_pipeline  # noqa: E402

MATMUL_SOURCE = """
module {
  func.func @matmul_from_text(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}
"""

parsed = parse_module(MATMUL_SOURCE, verify=True)
print("parsed functions:", [f.get_attr("sym_name").value
                            for f in parsed.functions()])

# Run the same pipeline, but named textually this time.
parse_pass_pipeline("generalize,annotate,lower-to-accel{cpu-tiling=off}",
                    info=info).run(parsed)
lowered_text = print_module(parsed)
print(f"lowered module: {len(lowered_text.splitlines())} lines of IR")

# The contract the test suite locks down: printing is a fixpoint.
assert print_module(parse_module(lowered_text)) == lowered_text
print("print(parse(print(m))) == print(m) holds")

# Text in, executable host code out.
from repro.compiler import AXI4MLIRCompiler  # noqa: E402

kernel_from_text = AXI4MLIRCompiler(
    info, enable_cpu_tiling=False
).compile_module(MATMUL_SOURCE)
board3 = make_pynq_z2()
board3.attach_accelerator(MatMulAccelerator(4, version=3))
c3 = np.zeros((8, 8), np.int32)
kernel_from_text.run(board3, a, b, c3)
assert np.array_equal(c3, a @ b)
print("kernel compiled from text computes the same C = A @ B")
