"""Crash-safe autotuning sweep engine.

Enumerates matmul configuration spaces (:mod:`~repro.tuning.space`),
checkpoints progress in an append-only journal
(:mod:`~repro.tuning.journal`), executes points under a supervised
worker pool with pruning, retries, and quarantine
(:mod:`~repro.tuning.driver`), and renders deterministic best-config
reports (:mod:`~repro.tuning.report`).  ``python -m repro.tuning``
is the CLI entry point.

Heavy modules (driver pulls in the compiler and simulator) are loaded
lazily so that importing :mod:`repro.tuning` for its counters — as the
diagnostics surface does — stays cheap.
"""

from __future__ import annotations

from .counters import (
    TUNING_COUNTERS,
    merge_tuning_counters,
    reset_tuning_counters,
    tuning_counters,
)

__all__ = [
    "TUNING_COUNTERS",
    "merge_tuning_counters",
    "reset_tuning_counters",
    "tuning_counters",
    "SweepPoint",
    "SweepSpace",
    "all_permutations",
    "group_floors",
    "smoke_space",
    "SweepJournal",
    "JournalMismatch",
    "JournalReplay",
    "SweepDriver",
    "evaluate_point",
    "tuning_workers",
    "tuning_deadline_s",
    "build_report",
    "render_report",
    "write_report",
    "best_rows",
]

_LAZY = {
    "SweepPoint": "space",
    "SweepSpace": "space",
    "all_permutations": "space",
    "group_floors": "space",
    "smoke_space": "space",
    "SweepJournal": "journal",
    "JournalMismatch": "journal",
    "JournalReplay": "journal",
    "SweepDriver": "driver",
    "evaluate_point": "driver",
    "tuning_workers": "driver",
    "tuning_deadline_s": "driver",
    "build_report": "report",
    "render_report": "report",
    "write_report": "report",
    "best_rows": "report",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
