"""Supervised, resumable execution of a sweep space.

:class:`SweepDriver` walks a :class:`~repro.tuning.space.SweepSpace`
and produces one journaled outcome record per point.  Failure is the
common case it is built for:

* **Pruning before paying** — each point is compiled, then its exact
  DMA traffic is predicted with
  :func:`repro.analysis.traffic.estimate_traffic`; points predicted to
  move more than ``prune_ratio`` times their group's cheapest
  closed-form configuration are journaled as ``pruned`` without
  simulating.  Plans the analyzer cannot model
  (:class:`~repro.analysis.traffic.TrafficUnsupported`) are counted
  and simulated anyway.
* **Supervision** — points run in forked pool workers (the service
  worker idiom: duplex pipes, crash detection via process sentinels,
  deterministic restarts).  A worker death costs one attempt of one
  point, never the sweep.  Per-point deadlines are enforced both
  cooperatively in the worker and by a hard parent-side kill.
* **Retries with taxonomy** — crashes and deadline kills are
  retryable (seeded :class:`~repro.retry.BackoffSchedule` per point);
  in-worker exceptions are permanent (``failed``).  A point whose
  workers crash ``max_attempts`` times is quarantined as ``poisoned``
  instead of wedging the run.
* **Degradation over abortion** — store and native seams sit behind
  :class:`~repro.service.breaker.CircuitBreaker` instances; repeated
  seam failures route subsequent points through the memory-only store
  or pure-Python kernels (both bit-identical rungs).  Journal I/O
  failures degrade to memory-only progress tracking.

Determinism is the load-bearing property: evaluation is deterministic
per point, injected crash/poison verdicts are keyed on point digests
(:func:`repro.faults.keyed_fires` — pure functions of the digest, not
of consultation order), and interrupted points resume from attempt
zero.  Whether a point completes, gets pruned, or is poisoned is
therefore a function of the point alone, which is what makes a resumed
sweep's report bit-identical to an uninterrupted one.

Knobs: ``REPRO_TUNING_WORKERS`` (pool size, default ``min(4, cpus)``)
and ``REPRO_TUNING_DEADLINE_S`` (per-point deadline, default 60) —
both with the envutil one-shot-warning fallback on malformed values.
"""

from __future__ import annotations

import collections
import contextlib
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from typing import Dict, List, Optional, Tuple

from .. import faults
from ..envutil import env_float, env_int
from ..execution.trace import add_stage_time
from ..retry import BackoffSchedule, retryable
from ..service import protocol
from ..service.breaker import CircuitBreaker
from .counters import count
from .journal import SweepJournal
from .report import build_report, write_report
from .space import SweepSpace, group_floors

#: Pool-size knob (default min(4, cpu_count)).
TUNING_WORKERS_ENV = "REPRO_TUNING_WORKERS"

#: Per-point deadline knob, seconds (default 60).
TUNING_DEADLINE_ENV = "REPRO_TUNING_DEADLINE_S"

_DEFAULT_DEADLINE_S = 60.0

#: Exit code of an injected sweep-worker crash (tests assert on it).
CRASH_EXIT_CODE = 23

#: Crashes are quarantined as poisoned after this many attempts.
DEFAULT_MAX_ATTEMPTS = 3

#: Outcome codes the retry ladder considers transient.
RETRYABLE_OUTCOMES = frozenset({"crash", "deadline"})


def tuning_workers() -> int:
    """Requested pool size: REPRO_TUNING_WORKERS, else min(4, cpus)."""
    default = max(1, min(4, os.cpu_count() or 1))
    return env_int(TUNING_WORKERS_ENV, default, minimum=1)


def tuning_deadline_s() -> float:
    """Per-point deadline: REPRO_TUNING_DEADLINE_S, else 60 seconds."""
    return env_float(TUNING_DEADLINE_ENV, _DEFAULT_DEADLINE_S,
                     minimum=0.001)


class DeadlinePassed(RuntimeError):
    """Cooperative cancellation: the point's deadline expired."""


def _injected_crash(digest: str, attempt: int) -> bool:
    """Prefix-budget crash verdict for ``tuning.worker:crash``.

    Attempt ``a`` crashes iff the keyed draws for attempts ``1..a``
    *all* fire.  The set of crashing attempts per point is then a
    prefix ``1..budget`` — a pure function of the digest — so a point
    completes at attempt ``budget+1`` (or is poisoned when the budget
    reaches ``max_attempts``) regardless of where any earlier run of
    the sweep was interrupted.  Independent per-attempt draws would
    not have this property: a clean run and a resumed run could
    classify the same point differently.
    """
    return all(
        faults.keyed_fires("tuning.worker", f"{digest}:attempt{j}")
        == "crash"
        for j in range(1, attempt + 1)
    )


def _poisoned(digest: str) -> bool:
    return faults.keyed_fires("tuning.point", digest) == "poison"


def _prebuild_spec(spec: dict) -> dict:
    """A sweep-point spec in the plan-prebuilder's (service) vocabulary."""
    job = {
        "kind": "matmul",
        "m": spec["m"], "n": spec["n"], "k": spec["k"],
        "size": spec["size"], "version": spec["version"],
        "flow": spec["flow"],
        "cpu_tiling": bool(spec["cpu_tiling"]),
    }
    if spec["version"] == 4:
        job["accel_size"] = list(spec["tiles"])
    if spec.get("permutation"):
        job["permutation"] = list(spec["permutation"])
    return job


# -- point evaluation (runs in pool workers and inline) ---------------------

def evaluate_point(spec: dict, prune_bytes: Optional[int] = None,
                   deadline: Optional[float] = None) -> dict:
    """Compile, maybe prune, simulate, verify one point.

    Returns the outcome payload (metric, counters, traffic estimate);
    deterministic for a given spec.  ``deadline`` is absolute
    wall-clock (cooperative checkpoints between the pipeline stages).
    """
    import numpy as np

    from ..accelerators import make_matmul_system
    from ..analysis import TrafficUnsupported, estimate_traffic
    from ..compiler import AXI4MLIRCompiler
    from ..dialects import linalg
    from ..experiments.harness import expected_matmul, matmul_inputs
    from ..soc import make_pynq_z2

    def check_deadline(stage: str) -> None:
        if deadline is not None and time.time() >= deadline:
            raise DeadlinePassed(f"deadline expired before {stage}")

    check_deadline("compile")
    started = time.perf_counter()
    accel_size = tuple(spec["tiles"]) if spec["version"] == 4 else None
    hw, info = make_matmul_system(spec["version"], spec["size"],
                                  flow=spec["flow"],
                                  accel_size=accel_size)
    compiler = AXI4MLIRCompiler(
        info,
        permutation=tuple(spec["permutation"])
        if spec.get("permutation") else None,
        enable_cpu_tiling=bool(spec["cpu_tiling"]),
    )
    kernel = compiler.compile_matmul(spec["m"], spec["n"], spec["k"])
    add_stage_time("sweep_compile_s", time.perf_counter() - started)

    started = time.perf_counter()
    est_bytes: Optional[int] = None
    try:
        estimate = estimate_traffic(kernel.plan, info.opcode_map,
                                    linalg.matmul_maps())
        est_bytes = estimate.bytes_to_accel + estimate.bytes_from_accel
    except TrafficUnsupported:
        # CPU-tiled plans are outside the traffic model: count, then
        # simulate unconditionally instead of guessing.
        count("tuning_prune_unsupported")
    add_stage_time("sweep_estimate_s", time.perf_counter() - started)
    if est_bytes is not None and prune_bytes is not None \
            and est_bytes > prune_bytes:
        return {"status": "pruned", "est_bytes": est_bytes,
                "prune_bytes": prune_bytes}

    check_deadline("simulation")
    started = time.perf_counter()
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    a, b = matmul_inputs(spec["m"], spec["n"], spec["k"])
    out = np.zeros((spec["m"], spec["n"]), np.int32)
    counters = kernel.run(board, a, b, out, trace=True)
    add_stage_time("sweep_simulate_s", time.perf_counter() - started)
    if not np.array_equal(out, expected_matmul(a, b)):
        raise AssertionError("sweep point produced wrong results")
    return {
        "status": "ok",
        "metric": counters.elapsed_seconds,
        "counters": protocol.encode_value(counters),
        "est_bytes": est_bytes,
    }


@contextlib.contextmanager
def _seam_overrides(disable_store: bool, disable_native: bool):
    """Breaker verdicts -> the PR 6/PR 8 degradation rungs."""
    from ..compiler import suspend_disk_store
    from ..soc._native import suspend_native

    with contextlib.ExitStack() as stack:
        if disable_store:
            stack.enter_context(suspend_disk_store())
        if disable_native:
            stack.enter_context(suspend_native())
        yield


def _store_failures(store_counters: Dict[str, int]) -> int:
    return store_counters.get("store_io_errors", 0) \
        + store_counters.get("store_write_failures", 0)


def worker_main(conn, worker_index: int) -> None:
    """Job loop of one sweep pool worker (runs in a forked child)."""
    from ..execution.model_plan import (
        _diagnostics_delta,
        snapshot_diagnostics,
    )
    from ..soc._native import native_status
    from ..store import STORE_COUNTERS

    last_snapshot = snapshot_diagnostics()
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        op = job.get("op")
        if op == "shutdown":
            snapshot = snapshot_diagnostics()
            try:
                conn.send({"op": "bye", "worker": worker_index,
                           "delta": _diagnostics_delta(snapshot,
                                                       last_snapshot)})
            except (BrokenPipeError, OSError):
                pass
            break
        if op != "run":
            continue
        digest = job["digest"]
        if _poisoned(digest) or _injected_crash(digest, job["attempt"]):
            # Hard process death, skipping every Python cleanup layer —
            # exactly what the parent's crash ladder must absorb.
            os._exit(CRASH_EXIT_CODE)
        reply: Dict = {"op": "result", "worker": worker_index,
                       "digest": digest, "ok": False}
        store_before = dict(STORE_COUNTERS)
        try:
            with _seam_overrides(job.get("disable_store", False),
                                 job.get("disable_native", False)):
                outcome = evaluate_point(job["spec"],
                                         job.get("prune_bytes"),
                                         job.get("deadline"))
            reply.update(ok=True, outcome=outcome)
        except DeadlinePassed as exc:
            reply.update(code="deadline", error=str(exc))
        except Exception as exc:
            reply.update(
                code="error",
                error=f"{type(exc).__name__}: {exc}",
                trace=traceback.format_exc(limit=8),
            )
        reply["store_failures"] = \
            _store_failures(STORE_COUNTERS) - _store_failures(store_before)
        reply["native_ok"] = native_status()["status"] not in (
            "compile-failed", "load-failed", "fault-injected",
        )
        snapshot = snapshot_diagnostics()
        reply["delta"] = _diagnostics_delta(snapshot, last_snapshot)
        last_snapshot = snapshot
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    """One forked sweep worker and its duplex pipe."""

    def __init__(self, index: int, context) -> None:
        self.index = index
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=worker_main, args=(child_conn, index), daemon=True,
        )
        self.process.start()
        child_conn.close()
        #: Digest of the in-flight point, None when idle.
        self.busy: Optional[str] = None
        #: Monotonic hard-kill time for the in-flight point.
        self.kill_at: Optional[float] = None
        self.seam_probe: Tuple[bool, bool] = (False, False)
        self.seam_enabled: Tuple[bool, bool] = (True, True)

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):
            pass
        self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass


class SweepDriver:
    """Run (or resume) one sweep; see the module docstring."""

    def __init__(self, space: SweepSpace, journal_path,
                 report_path=None,
                 workers: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 prune_ratio: Optional[float] = 4.0,
                 seed: int = 0,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 1.0,
                 prebuild: bool = False,
                 sleep=time.sleep) -> None:
        self.space = space
        self.journal = SweepJournal(journal_path)
        self.report_path = report_path
        self.workers = workers if workers is not None else tuning_workers()
        self.deadline_s = deadline_s if deadline_s is not None \
            else tuning_deadline_s()
        self.max_attempts = max(1, max_attempts)
        self.prune_ratio = prune_ratio
        self.seed = seed
        self.store_breaker = CircuitBreaker("tuning-store",
                                            breaker_threshold,
                                            breaker_cooldown_s)
        self.native_breaker = CircuitBreaker("tuning-native",
                                             breaker_threshold,
                                             breaker_cooldown_s)
        self._sleep = sleep
        self.prebuild = prebuild
        self._stop = False
        self._attempts: Dict[str, int] = {}
        self._crashes: Dict[str, int] = {}
        self._backoffs: Dict[str, BackoffSchedule] = {}
        self._retry_at: Dict[str, float] = {}
        self._results: Dict[str, dict] = {}
        self._pending: collections.deque = collections.deque()
        self._by_digest: Dict[str, object] = {}

    # -- public control ------------------------------------------------------
    def request_stop(self) -> None:
        """Graceful drain: stop dispatching, finish in-flight points."""
        self._stop = True

    # -- helpers -------------------------------------------------------------
    def _backoff(self, digest: str) -> BackoffSchedule:
        if digest not in self._backoffs:
            self._backoffs[digest] = BackoffSchedule(
                self.seed, site=f"tuning.point.{digest}")
        return self._backoffs[digest]

    def _prune_thresholds(self, points) -> Dict[str, Optional[int]]:
        # ``prune_ratio <= 0`` disables pruning, same as the CLI flag:
        # a zero threshold would prune every point.
        if self.prune_ratio is None or self.prune_ratio <= 0:
            return {point.digest: None for point in points}
        floors = group_floors(points)
        return {
            point.digest: int(self.prune_ratio * floors[point.group])
            for point in points
        }

    def _resolve(self, point, record_fields: dict) -> None:
        """Journal one point's final outcome and account for it."""
        record = {"digest": point.digest, "spec": point.spec(),
                  **record_fields}
        self._results[point.digest] = record
        self.journal.append_result(point.digest, record)
        status = record["status"]
        count({"ok": "tuning_points_completed",
               "pruned": "tuning_points_pruned",
               "poisoned": "tuning_points_poisoned",
               "failed": "tuning_points_failed"}[status])

    def _classify_failure(self, point, code: str,
                          error: str) -> Optional[float]:
        """One failed attempt: retry delay, or None when final.

        Crashes and deadline kills are transient
        (:data:`RETRYABLE_OUTCOMES`); anything a worker *reported* is a
        deterministic failure and final on the first occurrence.
        """
        digest = point.digest
        if code == "crash":
            self._crashes[digest] = self._crashes.get(digest, 0) + 1
        attempts = self._attempts.get(digest, 0)
        if retryable(RuntimeError(error), code=code,
                     retryable_codes=RETRYABLE_OUTCOMES) \
                and attempts < self.max_attempts:
            count("tuning_retries")
            return self._backoff(digest).next_delay()
        if code == "crash" \
                and self._crashes.get(digest, 0) >= attempts:
            self._resolve(point, {"status": "poisoned",
                                  "crashes": self._crashes[digest]})
        else:
            self._resolve(point, {"status": "failed", "error": error})
        return None

    def _seam_flags(self) -> Tuple[dict, dict]:
        store = self.store_breaker.allow()
        native = self.native_breaker.allow()
        if not store["enabled"]:
            count("tuning_store_degraded")
        if not native["enabled"]:
            count("tuning_native_degraded")
        return store, native

    def _record_seams(self, handle: "_WorkerHandle", reply: dict) -> None:
        store_enabled, native_enabled = handle.seam_enabled
        store_probe, native_probe = handle.seam_probe
        if store_enabled:
            self.store_breaker.record(reply.get("store_failures", 0) == 0,
                                      store_probe)
        if native_enabled:
            self.native_breaker.record(bool(reply.get("native_ok", True)),
                                       native_probe)

    # -- the run -------------------------------------------------------------
    def run(self) -> dict:
        started = time.perf_counter()
        points = self.space.points()
        space_digest = self.space.digest()
        count("tuning_points_total", len(points))

        journal_started = time.perf_counter()
        replay = self.journal.replay(expect_space=space_digest)
        add_stage_time("sweep_journal_s",
                       time.perf_counter() - journal_started)
        known = {point.digest for point in points}
        for digest, record in replay.results.items():
            if digest in known:
                self._results[digest] = record
        count("tuning_points_resumed", len(self._results))
        count("tuning_points_inflight",
              len([d for d in replay.inflight() if d in known]))
        if replay.meta is None:
            self.journal.append_meta(space_digest)

        thresholds = self._prune_thresholds(points)
        pending = collections.deque(
            point for point in points
            if point.digest not in self._results
        )
        if pending and self.prebuild:
            # Opt-in prewarm: pay every pending point's cold path
            # (compile, trace, plan build) on the plan-prebuild pool
            # before the sweep proper.  The artifacts land in the
            # shared store — and in this parent's in-memory caches and
            # component memo, which the forked sweep workers inherit —
            # so the measured sweep runs warm.  Off by default: it
            # simulates points the traffic pruner would have skipped,
            # which only pays off when the store outlives one sweep.
            from ..execution.prebuild import prebuild_plans

            prebuild_started = time.perf_counter()
            prebuild_plans([_prebuild_spec(point.spec())
                            for point in pending])
            add_stage_time("sweep_prebuild_s",
                           time.perf_counter() - prebuild_started)
        if pending:
            if self.workers > 1 and "fork" in \
                    multiprocessing.get_all_start_methods():
                self._run_pool(pending, thresholds)
            else:
                self._run_inline(pending, thresholds)

        complete = all(point.digest in self._results for point in points)
        report = None
        if complete:
            journal_started = time.perf_counter()
            self.journal.compact(space_digest, self._results)
            add_stage_time("sweep_journal_s",
                           time.perf_counter() - journal_started)
            report = build_report(self.space, self._results)
            if self.report_path is not None:
                write_report(self.report_path, report)
        self.journal.close()
        add_stage_time("sweep_run_s", time.perf_counter() - started)
        return {
            "complete": complete,
            "points": len(points),
            "resolved": len(self._results),
            "report": report,
        }

    # -- inline execution (workers <= 1 or no fork) --------------------------
    def _run_inline(self, pending, thresholds) -> None:
        """Sequential fallback: same classification ladder, no forks.

        Injected crash/poison verdicts are simulated as failed attempts
        (killing the only process would end the sweep, not degrade it);
        the resulting outcome records are identical to the pool's.
        """
        while pending and not self._stop:
            point = pending.popleft()
            digest = point.digest
            attempt = self._attempts.get(digest, 0) + 1
            self._attempts[digest] = attempt
            self.journal.append_attempt(digest, attempt)
            if _poisoned(digest) or _injected_crash(digest, attempt):
                count("tuning_worker_crashes")
                delay = self._classify_failure(point, "crash",
                                               "injected crash")
                if delay is not None:
                    self._sleep(delay)
                    pending.appendleft(point)
                continue
            store, native = self._seam_flags()
            deadline = time.time() + self.deadline_s
            try:
                with _seam_overrides(not store["enabled"],
                                     not native["enabled"]):
                    from ..store import STORE_COUNTERS

                    store_before = dict(STORE_COUNTERS)
                    outcome = evaluate_point(point.spec(),
                                             thresholds[digest],
                                             deadline)
            except DeadlinePassed as exc:
                count("tuning_deadline_kills")
                delay = self._classify_failure(point, "deadline", str(exc))
                if delay is not None:
                    self._sleep(delay)
                    pending.appendleft(point)
                continue
            except Exception as exc:
                self._classify_failure(
                    point, "error", f"{type(exc).__name__}: {exc}")
                continue
            from ..soc._native import native_status
            from ..store import STORE_COUNTERS

            if store["enabled"]:
                self.store_breaker.record(
                    _store_failures(STORE_COUNTERS)
                    - _store_failures(store_before) == 0,
                    store["probe"])
            if native["enabled"]:
                self.native_breaker.record(
                    native_status()["status"] not in (
                        "compile-failed", "load-failed",
                        "fault-injected"),
                    native["probe"])
            self._resolve(point, outcome)

    # -- pool execution -------------------------------------------------------
    def _spawn(self, context, index: int) -> _WorkerHandle:
        return _WorkerHandle(index, context)

    def _dispatch(self, handle: _WorkerHandle, point,
                  thresholds) -> None:
        digest = point.digest
        attempt = self._attempts.get(digest, 0) + 1
        self._attempts[digest] = attempt
        self.journal.append_attempt(digest, attempt)
        store, native = self._seam_flags()
        handle.seam_enabled = (store["enabled"], native["enabled"])
        handle.seam_probe = (store["probe"], native["probe"])
        handle.busy = digest
        handle.kill_at = time.monotonic() + self.deadline_s * 1.5 + 0.25
        handle.conn.send({
            "op": "run", "digest": digest, "spec": point.spec(),
            "attempt": attempt,
            "prune_bytes": thresholds[digest],
            "deadline": time.time() + self.deadline_s,
            "disable_store": not store["enabled"],
            "disable_native": not native["enabled"],
        })

    def _run_pool(self, pending, thresholds) -> None:
        context = multiprocessing.get_context("fork")
        # Warm the native library once; forked workers inherit it.
        from ..soc._native import native_lib

        native_lib()
        size = min(self.workers, len(pending))
        handles: List[_WorkerHandle] = [
            self._spawn(context, index) for index in range(size)
        ]
        next_index = size
        self._pending = pending
        self._by_digest = {point.digest: point for point in pending}

        def requeue_or_finalize(handle, code, error):
            point = self._by_digest[handle.busy]
            delay = self._classify_failure(point, code, error)
            if delay is not None:
                self._retry_at[point.digest] = time.monotonic() + delay
                pending.append(point)

        try:
            while pending or any(h.busy for h in handles):
                now = time.monotonic()
                # Dispatch ready work onto idle workers.
                if not self._stop:
                    idle = [h for h in handles if h.busy is None]
                    for handle in idle:
                        point = self._next_ready(pending, now)
                        if point is None:
                            break
                        self._dispatch(handle, point, thresholds)
                elif all(h.busy is None for h in handles):
                    break  # drained: nothing in flight, stop dispatching
                busy = [h for h in handles if h.busy is not None]
                if not busy:
                    wait_until = self._next_event_time(pending)
                    if wait_until is None:
                        continue
                    self._sleep(min(0.05, max(0.0,
                                              wait_until - time.monotonic())))
                    continue
                timeout = self._wait_timeout(busy, pending)
                waitables = {h.conn: h for h in busy}
                waitables.update({h.process.sentinel: h for h in busy})
                ready = multiprocessing.connection.wait(
                    list(waitables), timeout)
                seen = set()
                for waitable in ready:
                    handle = waitables[waitable]
                    if id(handle) in seen:
                        continue
                    seen.add(id(handle))
                    self._service_handle(handle, handles, context,
                                         requeue_or_finalize)
                # Hard deadline kills for hung workers.
                now = time.monotonic()
                for position, handle in enumerate(handles):
                    if handle.busy is not None and handle.kill_at is not None \
                            and now >= handle.kill_at:
                        count("tuning_deadline_kills")
                        handle.kill()
                        requeue_or_finalize(handle, "deadline",
                                            "hard deadline kill")
                        handles[position] = self._spawn(context, next_index)
                        next_index += 1
                        count("tuning_worker_restarts")
        finally:
            self._shutdown_pool(handles)

    def _next_ready(self, pending, now: float):
        """Pop the first pending point whose retry backoff has elapsed."""
        for _ in range(len(pending)):
            point = pending.popleft()
            if self._retry_at.get(point.digest, 0.0) <= now:
                return point
            pending.append(point)
        return None

    def _next_event_time(self, pending) -> Optional[float]:
        times = [self._retry_at[p.digest] for p in pending
                 if p.digest in self._retry_at]
        return min(times) if times else None

    def _wait_timeout(self, busy, pending) -> float:
        deadlines = [h.kill_at for h in busy if h.kill_at is not None]
        event = self._next_event_time(pending)
        if event is not None:
            deadlines.append(event)
        horizon = min(deadlines) - time.monotonic() if deadlines else 0.25
        return min(0.25, max(0.01, horizon))

    def _service_handle(self, handle, handles, context,
                        requeue_or_finalize) -> None:
        """Drain one worker's reply, or absorb its death."""
        if handle.conn.poll():
            try:
                reply = handle.conn.recv()
            except (EOFError, OSError):
                reply = None
        else:
            reply = None
        if reply is None:
            # The worker died (injected crash, OOM-shaped failure).
            handle.process.join(timeout=5)
            count("tuning_worker_crashes")
            position = handles.index(handle)
            if handle.busy is not None:
                requeue_or_finalize(handle, "crash",
                                    f"worker {handle.index} crashed "
                                    f"(exit {handle.process.exitcode})")
            handle.kill()
            handles[position] = self._spawn(context, handle.index)
            count("tuning_worker_restarts")
            return
        if reply.get("op") != "result" or handle.busy is None:
            return
        point_digest = handle.busy
        handle.busy = None
        handle.kill_at = None
        self._record_seams(handle, reply)
        from ..execution.model_plan import merge_worker_diagnostics

        merge_worker_diagnostics(reply.get("delta", {}),
                                 count_worker=False)
        point = self._by_digest.get(point_digest)
        if point is None:
            return
        if reply.get("ok"):
            self._resolve(point, reply["outcome"])
        elif reply.get("code") == "deadline":
            count("tuning_deadline_kills")
            delay = self._classify_failure(point, "deadline",
                                           reply.get("error", "deadline"))
            if delay is not None:
                self._retry_at[point.digest] = time.monotonic() + delay
                self._pending_append(point)
        else:
            self._classify_failure(point, "error",
                                   reply.get("error", "worker error"))

    def _pending_append(self, point) -> None:
        # Set by _run_pool before the loop; dispatching back onto it.
        self._pending.append(point)

    def _shutdown_pool(self, handles) -> None:
        for handle in handles:
            if not handle.process.is_alive():
                handle.kill()
                continue
            try:
                handle.conn.send({"op": "shutdown"})
            except (BrokenPipeError, OSError):
                handle.kill()
                continue
            if handle.conn.poll(5):
                try:
                    reply = handle.conn.recv()
                except (EOFError, OSError):
                    reply = None
                if reply and reply.get("op") == "bye":
                    from ..execution.model_plan import (
                        merge_worker_diagnostics,
                    )

                    merge_worker_diagnostics(reply.get("delta", {}),
                                             count_worker=False)
                    count("tuning_workers_merged")
            handle.process.join(timeout=5)
            handle.kill()
