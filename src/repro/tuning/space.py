"""Declarative sweep-space enumeration with deterministic point digests.

A :class:`SweepSpace` describes the grid ROADMAP item 5 asks for —
(shape x accelerator version x size x flow x tile x permutation x
host-tiling) matmul configurations — and enumerates it as an ordered
list of :class:`SweepPoint` candidates.  Everything downstream hangs
off two deterministic identities:

* ``point.digest`` — SHA-256 of the point's canonical JSON spec.  The
  journal checkpoints results under it, the fault registry keys
  per-point crash/poison draws on it, and ties in best-config ranking
  break on it.  It never depends on enumeration order or process
  state, so an interrupted sweep and its resume agree on what every
  point *is*.
* ``space.digest()`` — SHA-256 over the ordered point digests.  The
  journal's meta record pins it; resuming against a journal written
  for a different space fails loudly instead of silently merging
  incompatible results.

Infeasible combinations (sizes that do not divide the problem, flows a
version does not support, v4 tiles that overflow the accelerator
buffers) are filtered during enumeration, so every emitted point is
compilable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import permutations as _permutations
from typing import Dict, Iterator, List, Optional, Tuple

from ..accelerators.catalog import VERSION_FLOWS
from ..heuristics.flexible import _fits, candidate_tiles, transfer_cost_model

#: v4 buffer capacity in elements, as configured by the catalog
#: (``buffer_capacity = 16 * size**2`` for flex quantum ``size``).
_V4_CAPACITY_FACTOR = 16


@dataclass(frozen=True)
class SweepPoint:
    """One candidate configuration: a fully determined compile+run."""

    m: int
    n: int
    k: int
    version: int
    size: int
    flow: str
    #: Accelerator tile per dim.  ``(size, size, size)`` for v1-v3;
    #: rectangular multiples of the quantum for the flexible v4.
    tiles: Tuple[int, int, int]
    cpu_tiling: bool = False
    permutation: Optional[Tuple[str, str, str]] = None
    kernel: str = "matmul"

    def spec(self) -> Dict:
        """Canonical JSON-ready description (the digest's preimage)."""
        spec = {
            "kernel": self.kernel,
            "m": self.m, "n": self.n, "k": self.k,
            "version": self.version, "size": self.size,
            "flow": self.flow, "tiles": list(self.tiles),
            "cpu_tiling": self.cpu_tiling,
        }
        if self.permutation is not None:
            spec["permutation"] = list(self.permutation)
        return spec

    @property
    def digest(self) -> str:
        body = json.dumps(self.spec(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    @property
    def group(self) -> str:
        """Best-config reports rank within one (kernel, shape) group."""
        return f"{self.kernel}-{self.m}x{self.n}x{self.k}"

    @property
    def accel_size(self) -> Optional[Tuple[int, int, int]]:
        """``accel_size`` argument for the system builder (v4 only)."""
        return self.tiles if self.version == 4 else None

    def modeled_bytes(self) -> int:
        """Closed-form Sec. IV-C transfer volume, in bytes.

        The pruner compares the *exact* per-point traffic estimate
        against the group's cheapest modeled configuration; both sides
        count tile payload, so the comparison is apples-to-apples.
        """
        words, _ = transfer_cost_model(self.m, self.n, self.k,
                                       *self.tiles, self.flow)
        return words * 4


@dataclass(frozen=True)
class SweepSpace:
    """The declarative grid; :meth:`points` enumerates it."""

    shapes: Tuple[Tuple[int, int, int], ...]
    versions: Tuple[int, ...] = (1, 2, 3, 4)
    sizes: Tuple[int, ...] = (4,)
    #: Host loop orders to try on top of each version's derived order.
    #: Only ``Ns``-flow points fan out over permutations: stationary
    #: flows pin their reuse dim's position, so permuting them mostly
    #: re-measures the derived order.
    permutations: Tuple[Tuple[str, str, str], ...] = ()
    #: Host-level cache tiling settings to sweep.  ``True`` points are
    #: not traffic-prunable (the analyzer raises ``TrafficUnsupported``)
    #: and are always simulated.
    cpu_tiling_options: Tuple[bool, ...] = (False,)

    def points(self) -> List[SweepPoint]:
        return list(self._iter_points())

    def _iter_points(self) -> Iterator[SweepPoint]:
        for shape in self.shapes:
            m, n, k = shape
            for version in self.versions:
                for size in self.sizes:
                    if m % size or n % size or k % size:
                        continue
                    yield from self._version_points(m, n, k, version, size)

    def _version_points(self, m: int, n: int, k: int, version: int,
                        size: int) -> Iterator[SweepPoint]:
        if version == 4:
            capacity = _V4_CAPACITY_FACTOR * size * size
            tile_grid = [
                (tm, tn, tk)
                for tm in candidate_tiles(m, size)
                for tn in candidate_tiles(n, size)
                for tk in candidate_tiles(k, size)
                if _fits(tm, tn, tk, capacity)
            ]
        else:
            tile_grid = [(size, size, size)]
        for flow in VERSION_FLOWS[version]:
            for tiles in tile_grid:
                for cpu_tiling in self.cpu_tiling_options:
                    yield SweepPoint(m, n, k, version, size, flow,
                                     tiles, cpu_tiling=cpu_tiling)
                    if flow == "Ns":
                        for order in self.permutations:
                            yield SweepPoint(m, n, k, version, size,
                                             flow, tiles,
                                             cpu_tiling=cpu_tiling,
                                             permutation=order)

    def digest(self) -> str:
        hasher = hashlib.sha256()
        for point in self._iter_points():
            hasher.update(point.digest.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()[:16]

    def describe(self) -> Dict:
        points = self.points()
        return {
            "digest": self.digest(),
            "points": len(points),
            "groups": sorted({p.group for p in points}),
        }


def group_floors(points: List[SweepPoint]) -> Dict[str, int]:
    """Cheapest modeled transfer bytes per (kernel, shape) group.

    The pruning threshold for a point is ``prune_ratio`` times its
    group's floor: a candidate predicted to move several times more
    data than the best closed-form configuration of the same problem
    cannot win and is not worth simulating.
    """
    floors: Dict[str, int] = {}
    for point in points:
        modeled = point.modeled_bytes()
        best = floors.get(point.group)
        if best is None or modeled < best:
            floors[point.group] = modeled
    return floors


def all_permutations() -> Tuple[Tuple[str, str, str], ...]:
    """All six host loop orders of a matmul, in lexicographic order."""
    return tuple(_permutations(("m", "n", "k")))


def smoke_space(shapes: Optional[Tuple[Tuple[int, int, int], ...]] = None,
                versions: Tuple[int, ...] = (1, 2, 3, 4),
                permutations: bool = False) -> SweepSpace:
    """The small space the CLI preset, tests, and CI smoke leg share."""
    return SweepSpace(
        shapes=shapes or ((8, 8, 8), (16, 16, 8)),
        versions=versions,
        sizes=(4,),
        permutations=(("k", "n", "m"),) if permutations else (),
        cpu_tiling_options=(False, True),
    )
