"""CLI for the autotuning sweep engine: ``python -m repro.tuning``.

Runs (or resumes) a sweep against a journal and prints one JSON event
line per lifecycle step, so harnesses — including the CI smoke leg
that SIGKILLs a sweep mid-run and resumes it — can script against the
output.  SIGTERM requests a graceful drain: in-flight points finish,
nothing new dispatches, and the process exits 3 so callers can tell an
interrupted sweep from a finished one (the report file is written only
by complete runs).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from .driver import SweepDriver
from .space import SweepSpace, all_permutations, smoke_space

#: Exit code of a drained-but-incomplete sweep (SIGTERM mid-run).
EXIT_INCOMPLETE = 3


def _parse_shapes(texts):
    shapes = []
    for text in texts:
        parts = text.lower().split("x")
        if len(parts) != 3:
            raise SystemExit(f"bad shape {text!r}: expected MxNxK")
        shapes.append(tuple(int(part) for part in parts))
    return tuple(shapes)


def _build_space(args) -> SweepSpace:
    if args.shapes:
        return SweepSpace(
            shapes=_parse_shapes(args.shapes),
            versions=tuple(args.versions),
            sizes=tuple(args.sizes),
            permutations=all_permutations() if args.permutations else (),
            cpu_tiling_options=(False, True) if args.cpu_tiling
            else (False,),
        )
    return smoke_space(versions=tuple(args.versions),
                       permutations=args.permutations)


def _emit(event: str, **fields) -> None:
    print(json.dumps({"event": event, **fields}, sort_keys=True),
          flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning",
        description="Run or resume a crash-safe autotuning sweep.",
    )
    parser.add_argument("--journal", required=True,
                        help="journal path (created, or resumed from)")
    parser.add_argument("--report", default=None,
                        help="best-config report path (written on "
                             "completion only)")
    parser.add_argument("--shapes", nargs="*", default=None,
                        metavar="MxNxK",
                        help="problem shapes; default: the smoke preset")
    parser.add_argument("--versions", nargs="*", type=int,
                        default=(1, 2, 3, 4), choices=(1, 2, 3, 4))
    parser.add_argument("--sizes", nargs="*", type=int, default=(4,))
    parser.add_argument("--permutations", action="store_true",
                        help="also sweep host loop permutations")
    parser.add_argument("--cpu-tiling", action="store_true",
                        help="also sweep host cache tiling on/off")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: REPRO_TUNING_WORKERS "
                             "or min(4, cpus))")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="per-point deadline (default: "
                             "REPRO_TUNING_DEADLINE_S or 60)")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--prune-ratio", type=float, default=4.0,
                        help="prune points whose predicted traffic "
                             "exceeds ratio x group floor; <= 0 "
                             "disables pruning")
    parser.add_argument("--seed", type=int, default=0,
                        help="retry-backoff jitter seed")
    args = parser.parse_args(argv)

    space = _build_space(args)
    driver = SweepDriver(
        space,
        journal_path=args.journal,
        report_path=args.report,
        workers=args.workers,
        deadline_s=args.deadline_s,
        max_attempts=args.max_attempts,
        prune_ratio=args.prune_ratio if args.prune_ratio
        and args.prune_ratio > 0 else None,
        seed=args.seed,
    )

    def drain(signum, frame):
        _emit("drain", signal=signum)
        driver.request_stop()

    previous = signal.signal(signal.SIGTERM, drain)
    try:
        _emit("start", **space.describe())
        result = driver.run()
    finally:
        signal.signal(signal.SIGTERM, previous)
    from .counters import tuning_counters

    _emit("done", complete=result["complete"], points=result["points"],
          resolved=result["resolved"], counters=tuning_counters())
    return 0 if result["complete"] else EXIT_INCOMPLETE


if __name__ == "__main__":
    sys.exit(main())
