"""Append-only JSONL write-ahead journal for sweep checkpoints.

One journal file records one sweep's durable progress as JSON lines::

    {"t": "meta", "space": <digest>, "schema": 1, "seq": 0, "c": <sum>}
    {"t": "attempt", "digest": <point>, "attempt": 1, "seq": 1, "c": ...}
    {"t": "result", "digest": <point>, "record": {...}, "seq": 2, "c": ...}

``c`` is the SHA-256 (12 hex chars) of the record's canonical JSON with
``c`` removed — per-record integrity, so one flipped bit invalidates
exactly one record instead of the file.  Appends are write+flush+fsync:
once :meth:`SweepJournal.append` returns True the record survives
SIGKILL.  The ``tuning.journal:io`` fault site fires inside the append
path; an I/O failure (injected or real) is counted and reported to the
caller, never raised — losing the journal degrades a sweep to
memory-only progress tracking, it must not abort it.

:meth:`SweepJournal.replay` is crash-shaped on purpose: a final line
without a terminating newline is a torn append (the process died
mid-write) and is dropped; a record whose checksum or JSON does not
verify is skipped; duplicate results for one point keep the first
occurrence.  Each anomaly is counted separately so tests can pin the
recovery behaviour.

:meth:`SweepJournal.compact` rewrites the journal to its live content
(meta + one result per point) through the store's atomic-publish idiom
— temp sibling, fsync, ``os.replace``, directory fsync — so a reader
holding the old file descriptor keeps a complete old journal and a
crash at any instant leaves old-or-new, never a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from .. import faults
from ..store import fsync_dir, next_tmp_suffix
from .counters import count

#: Journal line-format version; bump on incompatible record changes so
#: stale journals are rejected instead of misread.
JOURNAL_SCHEMA_VERSION = 1


class JournalMismatch(RuntimeError):
    """The journal belongs to a different sweep space or schema."""


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksum(record: dict) -> str:
    body = _canonical({key: value for key, value in record.items()
                       if key != "c"})
    return hashlib.sha256(body.encode()).hexdigest()[:12]


class JournalReplay:
    """Outcome of reading one journal back (see :meth:`SweepJournal.replay`)."""

    def __init__(self) -> None:
        self.meta: Optional[dict] = None
        #: point digest -> result record payload, first occurrence wins.
        self.results: Dict[str, dict] = {}
        #: point digest -> highest attempt number journaled.
        self.attempts: Dict[str, int] = {}
        self.records = 0
        self.torn_tail = 0
        self.corrupt = 0
        self.duplicates = 0

    def inflight(self) -> Dict[str, int]:
        """Points that were dispatched but never completed."""
        return {digest: attempt
                for digest, attempt in self.attempts.items()
                if digest not in self.results}


class SweepJournal:
    """One sweep's write-ahead journal (see module docstring)."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self._seq = 0

    # -- writing ------------------------------------------------------------
    def _open_for_append(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> bool:
        """Durably append one record; False when the write was lost.

        A lost append is counted (``tuning_journal_io_errors``) and the
        file handle dropped so the next append reopens — transient I/O
        trouble costs individual checkpoints, not the whole journal.
        """
        record = dict(record)
        record["seq"] = self._seq
        record["c"] = _checksum(record)
        line = _canonical(record) + "\n"
        try:
            if faults.fires("tuning.journal") == "io":
                raise OSError("injected tuning.journal io fault")
            fh = self._open_for_append()
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        except OSError:
            count("tuning_journal_io_errors")
            self._drop_handle()
            return False
        self._seq += 1
        count("tuning_journal_appends")
        return True

    def append_meta(self, space_digest: str) -> bool:
        return self.append({"t": "meta", "space": space_digest,
                            "schema": JOURNAL_SCHEMA_VERSION})

    def append_attempt(self, digest: str, attempt: int) -> bool:
        return self.append({"t": "attempt", "digest": digest,
                            "attempt": attempt})

    def append_result(self, digest: str, record: dict) -> bool:
        return self.append({"t": "result", "digest": digest,
                            "record": record})

    def _drop_handle(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def close(self) -> None:
        self._drop_handle()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ------------------------------------------------------------
    def replay(self, expect_space: Optional[str] = None) -> JournalReplay:
        """Recover completed work; tolerant of every torn-write shape.

        ``expect_space`` pins the meta record's space digest: resuming
        a journal written for a different sweep raises
        :class:`JournalMismatch` (silently merging results of the wrong
        space would corrupt the report).
        """
        replay = JournalReplay()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return replay
        lines = raw.split(b"\n")
        if lines and lines[-1] != b"":
            # No terminating newline: the writer died mid-append.
            replay.torn_tail += 1
            count("tuning_journal_torn_tail")
            lines = lines[:-1]
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) \
                        or record.get("c") != _checksum(record):
                    raise ValueError("checksum mismatch")
            except (ValueError, UnicodeDecodeError):
                replay.corrupt += 1
                count("tuning_journal_corrupt")
                continue
            replay.records += 1
            count("tuning_journal_replayed")
            self._seq = max(self._seq, int(record.get("seq", 0)) + 1)
            kind = record.get("t")
            if kind == "meta":
                if record.get("schema") != JOURNAL_SCHEMA_VERSION:
                    raise JournalMismatch(
                        f"journal {self.path} has schema "
                        f"{record.get('schema')!r}, expected "
                        f"{JOURNAL_SCHEMA_VERSION}"
                    )
                if expect_space is not None \
                        and record.get("space") != expect_space:
                    raise JournalMismatch(
                        f"journal {self.path} belongs to space "
                        f"{record.get('space')!r}, not {expect_space!r}"
                    )
                replay.meta = record
            elif kind == "attempt":
                digest = record.get("digest")
                replay.attempts[digest] = max(
                    replay.attempts.get(digest, 0),
                    int(record.get("attempt", 0)),
                )
            elif kind == "result":
                digest = record.get("digest")
                if digest in replay.results:
                    replay.duplicates += 1
                    count("tuning_journal_duplicates")
                    continue
                replay.results[digest] = record.get("record", {})
        return replay

    # -- compaction ---------------------------------------------------------
    def compact(self, space_digest: str, results: Dict[str, dict]) -> bool:
        """Atomically rewrite the journal to meta + one result per point.

        Attempt records and superseded duplicates are dropped; result
        payloads are preserved byte-for-byte (the report is built from
        them).  Publishes via temp-file + fsync + ``os.replace`` +
        directory fsync, so concurrent readers and crashes both see a
        complete journal — old or new, never mixed.  Returns False
        (counted, old journal intact) when I/O fails.
        """
        self._drop_handle()
        records = [{"t": "meta", "space": space_digest,
                    "schema": JOURNAL_SCHEMA_VERSION}]
        records.extend(
            {"t": "result", "digest": digest, "record": results[digest]}
            for digest in sorted(results)
        )
        tmp_path = self.path.with_name(self.path.name + next_tmp_suffix())
        try:
            if faults.fires("tuning.journal") == "io":
                raise OSError("injected tuning.journal io fault")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as fh:
                for seq, record in enumerate(records):
                    record = dict(record)
                    record["seq"] = seq
                    record["c"] = _checksum(record)
                    fh.write(_canonical(record) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
            fsync_dir(self.path.parent)
        except OSError:
            count("tuning_journal_io_errors")
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        self._seq = len(records)
        count("tuning_journal_compactions")
        return True
