"""Best-config reports per (kernel, shape) from sweep results.

A report is a pure function of ``(space, results)``: the results dict
maps point digests to the journaled outcome records, and every field
that could differ between an interrupted-and-resumed sweep and a clean
one-shot sweep — attempt counts, retry/crash tallies, wall-clock —
is deliberately excluded.  That is what makes the acceptance bar
("resume yields a bit-identical report") a property the code can
actually guarantee: outcome records are serialized once, journaled,
and rendered verbatim; rankings sort on the simulated metric with the
point digest as a total-order tie-break.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List

from ..store import fsync_dir, next_tmp_suffix
from .space import SweepSpace

#: Report layout version, embedded so downstream consumers can detect
#: incompatible rewrites.
REPORT_SCHEMA_VERSION = 1


def build_report(space: SweepSpace, results: Dict[str, dict]) -> dict:
    """Rank completed points per group; account for every other point."""
    points = {point.digest: point for point in space.points()}
    groups: Dict[str, List[dict]] = {}
    skipped: Dict[str, List[dict]] = {"pruned": [], "poisoned": [],
                                      "failed": []}
    missing = []
    for digest in sorted(points):
        point = points[digest]
        record = results.get(digest)
        if record is None:
            missing.append(digest)
            continue
        status = record.get("status")
        if status == "ok":
            groups.setdefault(point.group, []).append(record)
        elif status in skipped:
            skipped[status].append(record)
    ranked = {}
    for group in sorted(groups):
        entries = sorted(
            groups[group],
            key=lambda record: (record["metric"], record["digest"]),
        )
        ranked[group] = {
            "best": entries[0],
            "ranked": entries,
        }
    completed = sum(len(g["ranked"]) for g in ranked.values())
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "space": space.digest(),
        "groups": ranked,
        "pruned": skipped["pruned"],
        "poisoned": skipped["poisoned"],
        "failed": skipped["failed"],
        "missing": missing,
        "totals": {
            "points": len(points),
            "completed": completed,
            "pruned": len(skipped["pruned"]),
            "poisoned": len(skipped["poisoned"]),
            "failed": len(skipped["failed"]),
            "missing": len(missing),
        },
    }


def render_report(report: dict) -> str:
    """Canonical serialization — the byte-comparison form."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(path, report: dict) -> None:
    """Publish a report atomically (store idiom: tmp, fsync, replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + next_tmp_suffix())
    with open(tmp_path, "w", encoding="utf-8") as fh:
        fh.write(render_report(report))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    fsync_dir(path.parent)


def best_rows(report: dict) -> List[dict]:
    """Flatten a report's winners into figure-style rows."""
    rows = []
    for group in sorted(report["groups"]):
        best = report["groups"][group]["best"]
        spec = best["spec"]
        rows.append({
            "group": group,
            "impl": "mlir_AXI4MLIR",
            "accel_version": f"v{spec['version']}",
            "flow": spec["flow"],
            "tiles": "x".join(str(t) for t in spec["tiles"]),
            "cpu_tiling": spec["cpu_tiling"],
            "metric_s": best["metric"],
            "digest": best["digest"],
        })
    return rows
