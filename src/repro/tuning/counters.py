"""Cumulative counters of the autotuning sweep engine.

Surfaced as ``diagnostics()["tuning"]`` and merged across sweep pool
workers exactly like the store/trace/model counters: workers report
deltas against an at-fork snapshot, the parent folds them in, so the
totals describe the work the process *observed*, not just the work its
own threads did.
"""

from __future__ import annotations

import os
import threading
from typing import Dict

TUNING_COUNTERS: Dict[str, int] = {
    "tuning_points_total": 0,        # points enumerated for the run
    "tuning_points_completed": 0,    # simulated + verified this run
    "tuning_points_pruned": 0,       # skipped via traffic estimate
    "tuning_points_poisoned": 0,     # quarantined after repeated crashes
    "tuning_points_failed": 0,       # permanent non-crash failures
    "tuning_points_resumed": 0,      # served from the journal, no recompute
    "tuning_points_inflight": 0,     # in-flight at interrupt, re-run
    "tuning_prune_unsupported": 0,   # TrafficUnsupported: simulated anyway
    "tuning_retries": 0,             # point re-dispatches after failures
    "tuning_worker_crashes": 0,      # worker processes that died mid-point
    "tuning_worker_restarts": 0,     # replacement workers forked
    "tuning_deadline_kills": 0,      # workers killed past the point deadline
    "tuning_workers_merged": 0,      # worker diagnostics deltas folded in
    "tuning_store_degraded": 0,      # points run with the store seam open
    "tuning_native_degraded": 0,     # points run with native forced off
    "tuning_journal_appends": 0,     # records durably appended
    "tuning_journal_io_errors": 0,   # appends lost to (injected) I/O errors
    "tuning_journal_replayed": 0,    # records recovered on resume
    "tuning_journal_torn_tail": 0,   # unterminated final records dropped
    "tuning_journal_corrupt": 0,     # checksum/JSON-invalid records skipped
    "tuning_journal_duplicates": 0,  # re-journaled results (first wins)
    "tuning_journal_compactions": 0,
}

_lock = threading.Lock()


def _fresh_lock_after_fork() -> None:
    # Same contract as the fault/store counter locks: a child forked
    # while another thread held the lock must not inherit it locked.
    global _lock
    _lock = threading.Lock()


os.register_at_fork(after_in_child=_fresh_lock_after_fork)


def count(key: str, amount: int = 1) -> None:
    with _lock:
        TUNING_COUNTERS[key] = TUNING_COUNTERS.get(key, 0) + amount


def tuning_counters() -> Dict[str, int]:
    """Snapshot of the sweep counters."""
    with _lock:
        return dict(TUNING_COUNTERS)


def merge_tuning_counters(delta: Dict[str, int]) -> None:
    """Fold a sweep pool worker's counter deltas into this process."""
    with _lock:
        for key, value in delta.items():
            TUNING_COUNTERS[key] = TUNING_COUNTERS.get(key, 0) + value


def reset_tuning_counters() -> None:
    with _lock:
        for key in list(TUNING_COUNTERS):
            TUNING_COUNTERS[key] = 0
