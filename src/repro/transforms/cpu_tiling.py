"""CPU cache-hierarchy tiling heuristic (paper Fig. 4 step 4).

AXI4MLIR tiles twice: the inner tiling matches the accelerator size, and
an outer tiling keeps the per-iteration working set resident in the CPU
caches so the staging copies hit instead of streaming from DRAM.  This
module picks the outer (CPU) tile sizes.

The heuristic: grow per-dim CPU tiles (multiples of the accelerator tile
that evenly divide the extent, so no remainder loops are needed) until
the combined operand footprint reaches a fraction of the last-level
cache.  Dims are grown round-robin starting from the innermost loop,
which favours reuse of the tiles that move most often.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

#: Use at most this fraction of the last-level cache for the working set.
CACHE_BUDGET_FRACTION = 0.5


def _divisor_multiples(extent: int, quantum: int) -> List[int]:
    """Multiples of ``quantum`` that evenly divide ``extent``, ascending."""
    options = []
    candidate = quantum
    while candidate <= extent:
        if extent % candidate == 0:
            options.append(candidate)
        candidate += quantum
    return options or [extent]


def footprint_elements(tiles: Dict[str, int],
                       operand_dims: Sequence[Sequence[str]]) -> int:
    """Combined tile footprint (elements) across all operands."""
    total = 0
    for dims in operand_dims:
        product = 1
        for dim in dims:
            product *= tiles.get(dim, 1)
        total += product
    return total


def choose_cpu_tiles(
    extents: Dict[str, int],
    accel_tiles: Dict[str, int],
    operand_dims: Sequence[Sequence[str]],
    itemsize: int,
    cache_bytes: int,
    loop_order: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Pick an outer (CPU) tile size per dim.

    Returns a dim -> tile mapping; a dim whose CPU tile equals its full
    extent needs no outer loop.  ``operand_dims`` lists, per operand, the
    dims indexing it (used for the footprint estimate).
    """
    budget_elements = int(cache_bytes * CACHE_BUDGET_FRACTION) // itemsize
    order = list(loop_order) if loop_order else list(extents)

    options = {
        dim: _divisor_multiples(extents[dim], max(1, accel_tiles.get(dim, 1)))
        for dim in extents
    }
    chosen = {dim: opts[0] for dim, opts in options.items()}
    if footprint_elements(chosen, operand_dims) > budget_elements:
        # Even single accelerator tiles exceed the budget; nothing to do —
        # the accelerator dictates the minimum working set.
        return chosen

    # Grow innermost-first, round-robin, while the footprint fits.
    grow_order = list(reversed(order))
    progressed = True
    while progressed:
        progressed = False
        for dim in grow_order:
            opts = options[dim]
            index = opts.index(chosen[dim])
            if index + 1 >= len(opts):
                continue
            trial = dict(chosen)
            trial[dim] = opts[index + 1]
            if footprint_elements(trial, operand_dims) <= budget_elements:
                chosen = trial
                progressed = True
    return chosen


def dims_needing_outer_loop(extents: Dict[str, int],
                            cpu_tiles: Dict[str, int]) -> Set[str]:
    return {
        dim for dim, extent in extents.items()
        if cpu_tiles.get(dim, extent) < extent
    }
