"""Compilation error type shared by all transformation passes."""


class CompileError(RuntimeError):
    """Raised when a transformation cannot be applied.

    Examples: the accelerator kernel does not match any operation in the
    module, tile sizes do not divide the problem, or an opcode flow is
    inconsistent with the operands it references.
    """
