"""Minimal pass infrastructure: named passes over a module, with
verification between passes and optional IR dumping for debugging.

Besides the programmatic :class:`PassManager`, this module implements a
textual pipeline specification (``"generalize,annotate,lower-to-accel"``)
so fixture files and command lines can name a pipeline without touching
Python.  Pass modules register a factory under a canonical name with
:func:`register_pass`; factories receive a :class:`PipelineContext`
(accelerator/CPU configuration) plus per-pass options written as
``name{key=value,...}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.core import Module
from ..ir.verifier import verify
from .errors import CompileError


class Pass:
    """Base class: subclasses override :meth:`run`."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def run(self, module: Module) -> None:
        raise NotImplementedError


class FunctionPass(Pass):
    """Convenience base running per ``func.func``."""

    def run(self, module: Module) -> None:
        for func_op in module.functions():
            self.run_on_function(module, func_op)

    def run_on_function(self, module: Module, func_op) -> None:
        raise NotImplementedError


class LambdaPass(Pass):
    def __init__(self, name: str, fn: Callable[[Module], None]):
        self.name = name
        super().__init__()
        self._fn = fn

    def run(self, module: Module) -> None:
        self._fn(module)


class PassManager:
    """Runs a pipeline of passes, verifying the module between them."""

    def __init__(self, verify_each: bool = True,
                 dump_each: bool = False):
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.dump_each = dump_each
        self.dumps: List[str] = []

    def add(self, pass_instance: Pass) -> "PassManager":
        self.passes.append(pass_instance)
        return self

    def run(self, module: Module) -> Module:
        for pass_instance in self.passes:
            try:
                pass_instance.run(module)
            except CompileError:
                raise
            except Exception as error:
                raise CompileError(
                    f"pass {pass_instance.name} failed: {error}"
                ) from error
            if self.verify_each:
                verify(module.op)
            if self.dump_each:
                self.dumps.append(
                    f"// ----- after {pass_instance.name} -----\n{module}"
                )
        return module


# ---------------------------------------------------------------------------
# Textual pipeline specifications
# ---------------------------------------------------------------------------


@dataclass
class PipelineContext:
    """Configuration a textual pipeline binds its passes against.

    ``info`` is the :class:`~repro.accel_config.AcceleratorInfo` for the
    accelerator-aware passes; ``cpu`` the optional
    :class:`~repro.accel_config.CPUInfo` driving cache tiling.  Kept as
    plain ``object`` fields so this module stays import-light.
    """

    info: Optional[object] = None
    cpu: Optional[object] = None
    flow_name: Optional[str] = None
    permutation: Optional[Sequence[str]] = None


#: Canonical pipeline name -> factory(context, options) -> Pass.
_PASS_REGISTRY: Dict[
    str, Callable[[PipelineContext, Dict[str, str]], Pass]
] = {}


def register_pass(name: str):
    """Decorator: register a pass factory under a pipeline-spec name."""

    def decorate(factory: Callable[[PipelineContext, Dict[str, str]], Pass]):
        _PASS_REGISTRY[name] = factory
        return factory

    return decorate


def registered_passes() -> List[str]:
    return sorted(_PASS_REGISTRY)


def option_bool(options: Dict[str, str], key: str, default: bool) -> bool:
    """Interpret a pass option string as a boolean."""
    raw = options.get(key)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "on", "true", "yes"):
        return True
    if lowered in ("0", "off", "false", "no"):
        return False
    raise CompileError(f"bad boolean pass option {key}={raw!r}")


def _split_spec(spec: str) -> List[str]:
    """Split ``"a,b{x=1,y=2},c"`` on commas outside ``{...}``."""
    entries: List[str] = []
    depth = 0
    current = []
    for ch in spec:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise CompileError(f"unbalanced '}}' in pipeline {spec!r}")
        if ch == "," and depth == 0:
            entries.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise CompileError(f"unbalanced '{{' in pipeline {spec!r}")
    entries.append("".join(current))
    return [e.strip() for e in entries if e.strip()]


def parse_pass_pipeline(
    spec: str,
    info: Optional[object] = None,
    cpu: Optional[object] = None,
    flow_name: Optional[str] = None,
    permutation: Optional[Sequence[str]] = None,
    verify_each: bool = True,
    dump_each: bool = False,
) -> PassManager:
    """Build a :class:`PassManager` from a textual pipeline spec.

    ``spec`` is a comma-separated list of registered pass names, each
    optionally carrying ``{key=value,...}`` options — e.g.
    ``"generalize,annotate,lower-to-accel{cpu-tiling=off}"``.  An empty
    spec yields an empty pipeline (useful for parse/print-only fixtures).
    """
    context = PipelineContext(info=info, cpu=cpu, flow_name=flow_name,
                              permutation=permutation)
    pm = PassManager(verify_each=verify_each, dump_each=dump_each)
    for entry in _split_spec(spec):
        name, options = entry, {}
        if "{" in entry:
            if not entry.endswith("}"):
                raise CompileError(f"malformed pass entry {entry!r}")
            name, body = entry[:-1].split("{", 1)
            name = name.strip()
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                if "=" not in item:
                    raise CompileError(
                        f"malformed option {item!r} in pass {name!r}"
                    )
                key, value = item.split("=", 1)
                options[key.strip()] = value.strip()
        factory = _PASS_REGISTRY.get(name)
        if factory is None:
            raise CompileError(
                f"unknown pass {name!r}; registered: {registered_passes()}"
            )
        pm.add(factory(context, options))
    return pm
