"""Minimal pass infrastructure: named passes over a module, with
verification between passes and optional IR dumping for debugging."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..ir.core import Module
from ..ir.verifier import verify
from .errors import CompileError


class Pass:
    """Base class: subclasses override :meth:`run`."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def run(self, module: Module) -> None:
        raise NotImplementedError


class FunctionPass(Pass):
    """Convenience base running per ``func.func``."""

    def run(self, module: Module) -> None:
        for func_op in module.functions():
            self.run_on_function(module, func_op)

    def run_on_function(self, module: Module, func_op) -> None:
        raise NotImplementedError


class LambdaPass(Pass):
    def __init__(self, name: str, fn: Callable[[Module], None]):
        self.name = name
        super().__init__()
        self._fn = fn

    def run(self, module: Module) -> None:
        self._fn(module)


class PassManager:
    """Runs a pipeline of passes, verifying the module between them."""

    def __init__(self, verify_each: bool = True,
                 dump_each: bool = False):
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        self.dump_each = dump_each
        self.dumps: List[str] = []

    def add(self, pass_instance: Pass) -> "PassManager":
        self.passes.append(pass_instance)
        return self

    def run(self, module: Module) -> Module:
        for pass_instance in self.passes:
            try:
                pass_instance.run(module)
            except CompileError:
                raise
            except Exception as error:
                raise CompileError(
                    f"pass {pass_instance.name} failed: {error}"
                ) from error
            if self.verify_each:
                verify(module.op)
            if self.dump_each:
                self.dumps.append(
                    f"// ----- after {pass_instance.name} -----\n{module}"
                )
        return module
