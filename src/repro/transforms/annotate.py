"""Match-and-annotate pass (paper Fig. 4 step 3, Fig. 6a).

Finds ``linalg.generic`` operations whose structure matches an
accelerator's supported kernel and attaches the AXI4MLIR trait
attributes: ``dma_init_config``, ``init_opcodes``, ``accel_dim``,
``permutation_map`` (optional), ``opcode_map`` and ``opcode_flow``.

The configuration's ``dims`` must use the kernel's canonical loop names
(``m, n, k`` for MatMul; ``n, f, oh, ow, c, fh, fw`` for NCHW/FCHW
convolution) so sizes and flows bind unambiguously to the operation's
indexing maps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..accel_config import AcceleratorInfo
from ..dialects import linalg
from ..ir.attributes import attr
from ..ir.core import Module, Operation
from ..opcodes import OpcodeFlowAttr, OpcodeMapAttr
from .errors import CompileError
from .pass_manager import Pass, PipelineContext, register_pass

#: Attribute namespace used for all trait entries.
PREFIX = "accel."


def trait_attributes(info: AcceleratorInfo,
                     flow_name: Optional[str] = None,
                     permutation: Optional[Sequence[str]] = None) -> dict:
    """The trait attribute dictionary for one accelerator config."""
    flow_name = flow_name or info.selected_flow
    attrs = {
        PREFIX + "name": attr(info.name),
        PREFIX + "dma_init_config": attr({
            "id": info.dma_config.id,
            "inputAddress": info.dma_config.input_address,
            "inputBufferSize": info.dma_config.input_buffer_size,
            "outputAddress": info.dma_config.output_address,
            "outputBufferSize": info.dma_config.output_buffer_size,
        }),
        PREFIX + "accel_dim": attr(
            {dim: size for dim, size in zip(info.dims, info.accel_size)}
        ),
        PREFIX + "opcode_map": OpcodeMapAttr(info.opcode_map),
        PREFIX + "opcode_flow": OpcodeFlowAttr(info.flow_named(flow_name)),
        PREFIX + "flow_name": attr(flow_name),
        PREFIX + "data_type": attr(info.data_type),
    }
    if info.init_opcodes is not None:
        attrs[PREFIX + "init_opcodes"] = OpcodeFlowAttr(info.init_opcodes)
    if info.flexible_size:
        attrs[PREFIX + "flex"] = attr({
            "quantum": info.flex_quantum,
            "capacity": info.buffer_capacity,
        })
    if permutation is not None:
        attrs[PREFIX + "permutation"] = attr(list(permutation))
    return attrs


def is_annotated(op: Operation) -> bool:
    return (PREFIX + "opcode_flow") in op.attributes


def matches_kernel(op: Operation, kernel: str) -> bool:
    return linalg.kernel_name(op) == kernel


def check_dims_compatible(op: Operation, info: AcceleratorInfo) -> None:
    op_dims = linalg.loop_dim_names(op)
    if set(info.dims) != set(op_dims):
        raise CompileError(
            f"accelerator {info.name!r} declares dims {list(info.dims)} "
            f"but kernel {info.kernel!r} has loop dims {list(op_dims)}; "
            f"configuration files must use the kernel's canonical names"
        )


def annotate_operation(op: Operation, info: AcceleratorInfo,
                       flow_name: Optional[str] = None,
                       permutation: Optional[Sequence[str]] = None) -> None:
    """Attach the trait to one matched operation."""
    if not matches_kernel(op, info.kernel):
        raise CompileError(
            f"operation {op.name} does not implement {info.kernel!r}"
        )
    check_dims_compatible(op, info)
    for key, value in trait_attributes(info, flow_name, permutation).items():
        op.attributes[key] = value


class AnnotateForAcceleratorPass(Pass):
    """Annotate every matching ``linalg.generic`` in the module."""

    name = "accel-match-annotate"

    def __init__(self, info: AcceleratorInfo,
                 flow_name: Optional[str] = None,
                 permutation: Optional[Sequence[str]] = None,
                 require_match: bool = True):
        super().__init__()
        self.info = info
        self.flow_name = flow_name
        self.permutation = permutation
        self.require_match = require_match
        self.annotated: List[Operation] = []

    def run(self, module: Module) -> None:
        self.annotated = []
        for op in module.walk():
            if op.name != "linalg.generic" or is_annotated(op):
                continue
            if matches_kernel(op, self.info.kernel):
                annotate_operation(op, self.info, self.flow_name,
                                   self.permutation)
                self.annotated.append(op)
        if self.require_match and not self.annotated:
            raise CompileError(
                f"no linalg.generic in the module matches kernel "
                f"{self.info.kernel!r}"
            )


@register_pass("annotate")
def _make_annotate(context: PipelineContext, options: dict) -> Pass:
    if context.info is None:
        raise CompileError(
            "the 'annotate' pass needs an accelerator configuration "
            "(PipelineContext.info); fixtures declare one with an "
            "'// ACCEL:' directive"
        )
    flow_name = options.get("flow", context.flow_name)
    return AnnotateForAcceleratorPass(
        context.info, flow_name=flow_name, permutation=context.permutation
    )
