"""Opcode-flow analysis: stationary placement and loop-order derivation.

This implements the semantics of ``opcode_flow`` parentheses (paper
Sec. III-C): nesting is "a proxy to specify multiple scopes for
sequential or nested for loops".  Two questions are answered here:

1. **Loop order** (the trait's ``permutation_map`` when the user does not
   give one): dims needed by outer flow scopes must iterate before dims
   only needed by inner scopes, so that outer opcodes are loop-invariant
   in the inner loops.  E.g. the A-stationary flow ``(sA (sBcCrC))``
   yields the ``(m, k, n)`` order of paper Fig. 6a L12.

2. **Placement**: each opcode lands in the body of the innermost loop
   its group requires — data-dependence gives a *minimum* level (the
   deepest loop whose induction variable its operands' tile offsets
   use), and grouping forces siblings into the same scope.  This is the
   paper's "hoisting the accel operations up to the right loop nest
   level".

Levels are loop positions in the permuted order; level ``-1`` means
"before all loops".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..opcodes import (
    FlowGroup,
    FlowOpcode,
    Opcode,
    OpcodeFlow,
    OpcodeMap,
    Recv,
    Send,
    SendDim,
    SendIdx,
)
from .errors import CompileError


def opcode_dependences(opcode: Opcode,
                       operand_host_dims: Sequence[Set[str]],
                       kinds: str = "all") -> Set[str]:
    """Host-loop dims whose induction variables this opcode's data uses.

    ``kinds`` selects which actions contribute: ``"all"``, ``"send"``
    (send/send_idx only), or ``"recv"``.
    """
    dims: Set[str] = set()
    for action in opcode.actions:
        if isinstance(action, (Send, Recv)):
            if action.arg >= len(operand_host_dims):
                raise CompileError(
                    f"opcode {opcode.name!r} references operand "
                    f"{action.arg}, but the kernel has only "
                    f"{len(operand_host_dims)} operands"
                )
            if kinds == "all" or                     (kinds == "send" and isinstance(action, Send)) or                     (kinds == "recv" and isinstance(action, Recv)):
                dims |= operand_host_dims[action.arg]
        elif isinstance(action, SendDim):
            if action.arg >= len(operand_host_dims):
                raise CompileError(
                    f"opcode {opcode.name!r} references operand "
                    f"{action.arg} in send_dim"
                )
            # Tile extents are compile-time constants: no dependence.
        elif isinstance(action, SendIdx):
            if kinds in ("all", "send"):
                dims.add(action.dim)
    return dims


def _group_depths(flow: OpcodeFlow) -> Dict[str, int]:
    """Depth of the outermost group referencing each opcode name."""
    depths: Dict[str, int] = {}

    def visit(group: FlowGroup, depth: int) -> None:
        for item in group:
            if isinstance(item, FlowOpcode):
                if item.name not in depths or depth < depths[item.name]:
                    depths[item.name] = depth
            else:
                visit(item, depth + 1)

    visit(flow.root, 0)
    return depths


def derive_loop_order(
    flow: OpcodeFlow,
    opcode_map: OpcodeMap,
    operand_host_dims: Sequence[Set[str]],
    host_dims: Sequence[str],
    tiles: Optional[Dict[str, int]] = None,
) -> List[str]:
    """Loop order implied by the flow's scoping (outermost first).

    Each host dim is ranked by the shallowest flow scope that iterates
    it; ties keep the kernel's original dim order.  This reproduces the
    paper's examples: ``(sA (sBcCrC))`` -> ``(m, k, n)``;
    ``((sA sB cC) rC)`` -> ``(m, n, k)``; the conv flow
    ``(sF (sIcO) rO)`` -> ``(b, oc, oh, ow)``.
    """
    ranks = dim_ranks(flow, opcode_map, operand_host_dims, host_dims, tiles)
    ordered = sorted(
        host_dims,
        key=lambda d: (ranks[d], host_dims.index(d)),
    )
    return list(ordered)


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


@dataclass
class PlacedOpcode:
    name: str
    level: int
    #: Minimum level required by data dependence (for verification).
    min_level: int


@dataclass
class PlacedGroup:
    items: List[Union[PlacedOpcode, "PlacedGroup"]]
    level: int


@dataclass
class FlowPlacement:
    """The placed flow tree plus the loop order it was computed for."""

    root: PlacedGroup
    loop_order: Tuple[str, ...]
    levels_by_opcode: Dict[str, int] = field(default_factory=dict)

    def max_level(self) -> int:
        result = -1

        def visit(group: PlacedGroup) -> None:
            nonlocal result
            result = max(result, group.level)
            for item in group.items:
                if isinstance(item, PlacedGroup):
                    visit(item)

        visit(self.root)
        return result


def dim_ranks(
    flow: OpcodeFlow,
    opcode_map: OpcodeMap,
    operand_host_dims: Sequence[Set[str]],
    host_dims: Sequence[str],
    tiles: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Shallowest flow-scope depth that *iterates* each host dim.

    Dims no opcode references get the deepest rank, so loops over them
    land in the innermost scope.

    Receive-side references on dims the accelerator does not tile
    (tile extent 1, ``accel_dim == 0``) do not pin the rank when a
    deeper scope also references the dim: such a receive *aggregates*
    the dim wholesale (the conv accelerator's ``rO`` collects the whole
    output slice that the deeper ``sIcO`` scope iterated, Fig. 15).
    """
    opcode_depths = _group_depths(flow)
    max_depth = flow.depth()
    send_rank: Dict[str, int] = {}
    recv_rank: Dict[str, int] = {}
    for name, depth in opcode_depths.items():
        if name not in opcode_map:
            raise CompileError(
                f"flow references unknown opcode {name!r}; known: "
                f"{opcode_map.names()}"
            )
        opcode = opcode_map[name]
        for dim in opcode_dependences(opcode, operand_host_dims, "send"):
            if dim in host_dims:
                send_rank[dim] = min(send_rank.get(dim, depth), depth)
        for dim in opcode_dependences(opcode, operand_host_dims, "recv"):
            if dim in host_dims:
                recv_rank[dim] = min(recv_rank.get(dim, depth), depth)

    ranks: Dict[str, int] = {}
    for dim in host_dims:
        from_send = send_rank.get(dim)
        from_recv = recv_rank.get(dim)
        candidates = [r for r in (from_send, from_recv) if r is not None]
        if not candidates:
            ranks[dim] = max_depth - 1
            continue
        rank = min(candidates)
        aggregatable = tiles is not None and tiles.get(dim, 0) == 1
        if (aggregatable and from_recv is not None
                and (from_send is None or from_recv < from_send)
                and from_send is not None):
            rank = from_send
        ranks[dim] = rank
    return ranks


def place_flow(
    flow: OpcodeFlow,
    opcode_map: OpcodeMap,
    operand_host_dims: Sequence[Set[str]],
    loop_order: Sequence[str],
    tiles: Optional[Dict[str, int]] = None,
) -> FlowPlacement:
    """Assign a loop level to every opcode/group of the flow.

    A scope at tree depth ``g`` executes inside every loop whose dim is
    first needed at depth <= ``g`` — its level is the innermost such
    loop.  An opcode may thus sit *above* loops whose dims its operand
    uses (conv's ``rO`` above the ``oh``/``ow`` loops): the code
    generator then widens that operand's subview to cover the deeper
    dims wholesale (the whole output slice).
    """
    positions = {dim: i for i, dim in enumerate(loop_order)}
    ranks = dim_ranks(flow, opcode_map, operand_host_dims, loop_order, tiles)

    def level_for_depth(depth: int) -> int:
        levels = [
            positions[d] for d, rank in ranks.items() if rank <= depth
        ]
        return max(levels) if levels else -1

    def min_level_of(name: str) -> int:
        dims = opcode_dependences(opcode_map[name], operand_host_dims)
        levels = [positions[d] for d in dims if d in positions]
        return max(levels) if levels else -1

    def build(group: FlowGroup, depth: int) -> PlacedGroup:
        group_level = level_for_depth(depth)
        items: List[Union[PlacedOpcode, PlacedGroup]] = []
        for item in group:
            if isinstance(item, FlowOpcode):
                if item.name not in opcode_map:
                    raise CompileError(
                        f"flow references unknown opcode {item.name!r}"
                    )
                items.append(
                    PlacedOpcode(item.name, group_level,
                                 min_level_of(item.name))
                )
            else:
                items.append(build(item, depth + 1))
        return PlacedGroup(items, group_level)

    root = build(flow.root, 0)

    # Nested groups never live shallower than their parent; degenerate
    # extra parentheses (no new dims) collapse onto the parent's level
    # and act only as a transfer-batch boundary.
    def deepen(group: PlacedGroup, minimum: int) -> None:
        if group.level < minimum:
            group.level = minimum
            for item in group.items:
                if isinstance(item, PlacedOpcode):
                    item.level = minimum
        for item in group.items:
            if isinstance(item, PlacedGroup):
                deepen(item, group.level)

    deepen(root, root.level)

    max_level = len(loop_order) - 1
    levels_by_opcode: Dict[str, int] = {}

    def validate(group: PlacedGroup) -> None:
        if group.level > max_level:
            raise CompileError(
                f"flow requires loop level {group.level}, but only "
                f"{len(loop_order)} host loops exist ({list(loop_order)})"
            )
        for item in group.items:
            if isinstance(item, PlacedOpcode):
                levels_by_opcode[item.name] = item.level
            else:
                validate(item)

    validate(root)
    return FlowPlacement(root, tuple(loop_order), levels_by_opcode)
