"""Lowering: annotated ``linalg.generic`` to ``scf`` loops + ``accel`` ops.

This is steps 4-5 of the paper's flow (Fig. 4): tiling for the CPU
memory hierarchy and the accelerator size, then host-code generation in
the ``accel`` dialect following the user's ``opcode_flow`` (producing IR
shaped like Fig. 6b / Fig. 15b).

Loop structure, outermost to innermost:

1. optional CPU-cache tiling loops (one per dim whose chosen CPU tile is
   smaller than its extent), in the permuted order;
2. accelerator tiling loops, in the permuted order, whose bodies carry
   the ``accel`` communication ops at the levels computed by
   :func:`repro.transforms.flow_analysis.place_flow`.

Staged sends batch into one DMA transaction: ``accel.flush_send`` is
inserted before each receive, before entering a nested flow scope, and
at the end of each scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dialects import accel, arith, linalg, scf
from ..ir.affine import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
)
from ..ir.attributes import unwrap
from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Module, Operation, Value
from ..ir.types import I32, INDEX, MemRefType
from ..opcodes import (
    FlowGroup,
    FlowOpcode,
    Opcode,
    OpcodeFlow,
    Recv,
    Send,
    SendDim,
    SendIdx,
    SendLiteral,
)
from .annotate import PREFIX, is_annotated
from .cpu_tiling import choose_cpu_tiles
from .errors import CompileError
from .flow_analysis import (
    FlowPlacement,
    PlacedGroup,
    PlacedOpcode,
    derive_loop_order,
    place_flow,
)
from .pass_manager import Pass, PipelineContext, option_bool, register_pass


@dataclass
class LoweringPlan:
    """Everything resolved before emission, useful for tests/heuristics."""

    dim_names: Tuple[str, ...]
    extents: Dict[str, int]
    #: Effective tile extent per dim (accel size, 1, or the full extent).
    tiles: Dict[str, int]
    #: Dims that get an accelerator-tiling host loop, in nest order.
    loop_order: Tuple[str, ...]
    #: CPU-cache tile per dim (== extent when no outer loop is needed).
    cpu_tiles: Dict[str, int]
    placement: FlowPlacement
    operand_host_dims: List[Set[str]]
    init_flow: Optional[OpcodeFlow]


def _effective_tiles(dim_names: Sequence[str], extents: Dict[str, int],
                     accel_dim: Dict[str, int]) -> Tuple[Dict[str, int],
                                                         List[str]]:
    """Resolve per-dim tile extents and which dims need host loops.

    ``accel_dim[d] == 0`` means the accelerator does not tile ``d``: the
    host iterates it with step 1 (paper Fig. 15).  A tile covering the
    full extent removes the loop entirely ("no tiling will be performed
    across these dimensions", Sec. IV-D).
    """
    tiles: Dict[str, int] = {}
    host_dims: List[str] = []
    for dim in dim_names:
        extent = extents[dim]
        size = int(accel_dim.get(dim, 0))
        if size == 0:
            tiles[dim] = 1
            host_dims.append(dim)
        elif size >= extent:
            tiles[dim] = extent
        else:
            if extent % size:
                raise CompileError(
                    f"dim {dim!r}: extent {extent} is not divisible by "
                    f"accelerator tile {size}; pad the problem or pick a "
                    f"flexible-size accelerator"
                )
            tiles[dim] = size
            host_dims.append(dim)
    return tiles, host_dims


def _result_tile_size(expr: AffineExpr, tiles: Dict[str, int],
                      dim_names: Sequence[str]) -> int:
    """Subview extent along one operand axis: 1 + sum(coef * (tile-1))."""
    terms = linalg._linear_terms(expr)
    size = 1
    for dim_pos, coefficient in terms.items():
        size += coefficient * (tiles[dim_names[dim_pos]] - 1)
    return size


def _expr_to_ir(b: Builder, expr: AffineExpr,
                iv_by_pos: Dict[int, Value]) -> Value:
    """Emit index arithmetic computing ``expr`` over loop ivs.

    Dims without a host loop contribute 0 (their whole extent lives in
    the accelerator tile).
    """
    if isinstance(expr, AffineConstantExpr):
        return arith.index_constant(b, expr.value)
    if isinstance(expr, AffineDimExpr):
        value = iv_by_pos.get(expr.position)
        return value if value is not None else arith.index_constant(b, 0)
    if isinstance(expr, AffineBinaryExpr):
        terms = linalg._linear_terms(expr)
        result: Optional[Value] = None
        constant_part = 0
        for dim_pos, coefficient in sorted(terms.items()):
            iv = iv_by_pos.get(dim_pos)
            if iv is None:
                continue
            term = iv
            if coefficient != 1:
                term = arith.muli(
                    b, iv, arith.index_constant(b, coefficient)
                )
            result = term if result is None else arith.addi(b, result, term)
        if result is None:
            return arith.index_constant(b, constant_part)
        if constant_part:
            result = arith.addi(
                b, result, arith.index_constant(b, constant_part)
            )
        return result
    raise CompileError(f"cannot lower indexing expression {expr}")


class _Emitter:
    """Per-operation emission state."""

    def __init__(self, op: Operation, plan: LoweringPlan,
                 opcode_map, literals_are_hex: bool = True):
        self.op = op
        self.plan = plan
        self.opcode_map = opcode_map
        self.maps = linalg.indexing_maps(op)
        self.dim_names = plan.dim_names
        self.dim_pos = {d: i for i, d in enumerate(plan.dim_names)}
        self.operands = list(op.operands)
        self.num_inputs = linalg.num_inputs(op)
        #: dim name -> current accel-loop induction variable.
        self.ivs: Dict[str, Value] = {}
        #: dim name -> (enclosing lower-bound value or None, extent of the
        #: current CPU-tile scope).  Covers host dims whose accel loop is
        #: not (yet) open at the emission point.
        self.bounds: Dict[str, Tuple[Optional[Value], int]] = {}

    # -- subview emission ------------------------------------------------
    def effective_extents(self) -> Dict[str, int]:
        """Per-dim subview extent at the current emission point.

        Dims whose accelerator loop is open contribute one tile; host
        dims whose loop is *inside* the current scope are aggregated
        wholesale (their remaining CPU-tile extent) — this is how a
        hoisted ``recv`` covers a whole output slice (paper Fig. 15b);
        dims without host loops contribute their full in-accelerator
        tile.
        """
        extents: Dict[str, int] = {}
        for dim in self.dim_names:
            if dim in self.ivs:
                extents[dim] = self.plan.tiles[dim]
            elif dim in self.bounds:
                extents[dim] = self.bounds[dim][1]
            else:
                extents[dim] = self.plan.tiles[dim]
        return extents

    def operand_subview(self, b: Builder, arg: int) -> Value:
        operand = self.operands[arg]
        operand_type = operand.type
        if not isinstance(operand_type, MemRefType):
            raise CompileError(
                f"operand {arg} of {self.op.name} is not a memref"
            )
        amap = self.maps[arg]
        iv_by_pos: Dict[int, Value] = {
            self.dim_pos[d]: iv for d, iv in self.ivs.items()
        }
        # Host dims not yet opened sit at their enclosing CPU-tile lower
        # bound (or 0 when there is no outer loop).
        for dim, (lower, _extent) in self.bounds.items():
            if dim not in self.ivs and lower is not None:
                iv_by_pos[self.dim_pos[dim]] = lower
        extents = self.effective_extents()
        offsets = [_expr_to_ir(b, expr, iv_by_pos) for expr in amap.results]
        sizes = [
            _result_tile_size(expr, extents, self.dim_names)
            for expr in amap.results
        ]
        return memref_subview(b, operand, offsets, sizes)

    def tile_extent_of_operand_dim(self, arg: int, dim_index: int) -> int:
        amap = self.maps[arg]
        if dim_index >= len(amap.results):
            raise CompileError(
                f"send_dim({arg}, {dim_index}): operand has rank "
                f"{len(amap.results)}"
            )
        return _result_tile_size(
            amap.results[dim_index], self.plan.tiles, self.dim_names
        )


def memref_subview(b: Builder, source: Value, offsets: Sequence[Value],
                   sizes: Sequence[int]) -> Value:
    from ..dialects import memref as memref_dialect

    return memref_dialect.subview(b, source, offsets, sizes)


class LowerToAccelPass(Pass):
    """Lower every annotated generic op in the module."""

    name = "linalg-to-accel"

    def __init__(self, cpu_cache_bytes: Optional[int] = None,
                 enable_cpu_tiling: bool = True):
        super().__init__()
        self.cpu_cache_bytes = cpu_cache_bytes or 512 * 1024
        self.enable_cpu_tiling = enable_cpu_tiling
        self.plans: List[LoweringPlan] = []

    # -- planning ------------------------------------------------------------
    def plan_operation(self, op: Operation) -> LoweringPlan:
        dim_names = tuple(linalg.loop_dim_names(op))
        extents = dict(zip(dim_names, linalg.loop_ranges(op)))
        accel_dim = {
            k: int(v) for k, v in unwrap(op.get_attr(PREFIX + "accel_dim")).items()
        }
        unknown = set(accel_dim) - set(dim_names)
        if unknown:
            raise CompileError(
                f"accel_dim names unknown dims {sorted(unknown)}"
            )
        tiles, host_dims = _effective_tiles(dim_names, extents, accel_dim)

        maps = linalg.indexing_maps(op)
        operand_host_dims: List[Set[str]] = []
        for amap in maps:
            used: Set[str] = set()
            for expr in amap.results:
                used |= {dim_names[p] for p in expr.used_dims()}
            operand_host_dims.append(used & set(host_dims))

        flow: OpcodeFlow = op.get_attr(PREFIX + "opcode_flow").value
        opcode_map = op.get_attr(PREFIX + "opcode_map").value

        permutation_attr = op.get_attr(PREFIX + "permutation")
        if permutation_attr is not None:
            requested = [str(s) for s in unwrap(permutation_attr)]
            # Dims that ended up fully inside the accelerator (extent <=
            # tile) have no host loop; drop them from the request.
            order = [d for d in requested if d in host_dims]
            if sorted(order) != sorted(host_dims):
                missing = sorted(set(host_dims) - set(order))
                raise CompileError(
                    f"permutation {requested} does not cover the host "
                    f"loop dims; missing {missing}"
                )
        else:
            order = derive_loop_order(
                flow, opcode_map, operand_host_dims, host_dims, tiles
            )

        if not order:
            # Everything fits in the accelerator: flatten the flow.
            flow = OpcodeFlow(FlowGroup(tuple(
                FlowOpcode(name) for name in flow.opcode_names()
            )))
        placement = place_flow(flow, opcode_map, operand_host_dims, order,
                               tiles)

        itemsize = 4
        if self.enable_cpu_tiling:
            operand_dim_lists = [
                [dim_names[p] for expr in amap.results
                 for p in sorted(expr.used_dims())]
                for amap in maps
            ]
            cpu_tiles = choose_cpu_tiles(
                {d: extents[d] for d in order},
                {d: tiles[d] for d in order},
                operand_dim_lists,
                itemsize,
                self.cpu_cache_bytes,
                loop_order=order,
            )
        else:
            cpu_tiles = {d: extents[d] for d in order}

        init_attr = op.get_attr(PREFIX + "init_opcodes")
        init_flow = init_attr.value if init_attr is not None else None

        return LoweringPlan(
            dim_names=dim_names,
            extents=extents,
            tiles=tiles,
            loop_order=tuple(order),
            cpu_tiles=cpu_tiles,
            placement=placement,
            operand_host_dims=operand_host_dims,
            init_flow=init_flow,
        )

    # -- emission ----------------------------------------------------------
    def run(self, module: Module) -> None:
        self.plans = []
        targets = [op for op in module.walk()
                   if op.name == "linalg.generic" and is_annotated(op)]
        for op in targets:
            plan = self.plan_operation(op)
            self.plans.append(plan)
            self.lower_operation(op, plan)

    def lower_operation(self, op: Operation, plan: LoweringPlan) -> None:
        b = Builder(InsertionPoint.before(op))
        opcode_map = op.get_attr(PREFIX + "opcode_map").value
        emitter = _Emitter(op, plan, opcode_map)

        self._emit_dma_init(b, op)
        if plan.init_flow is not None:
            self._emit_init_opcodes(b, emitter, plan, opcode_map)

        self._emit_loop_nest(b, emitter, plan, opcode_map)
        op.erase()

    def _emit_dma_init(self, b: Builder, op: Operation) -> None:
        config = unwrap(op.get_attr(PREFIX + "dma_init_config"))
        func_op = op.parent_op
        while func_op is not None and func_op.name != "func.func":
            func_op = func_op.parent_op
        if func_op is not None:
            for existing in func_op.walk():
                if existing.name == "accel.dma_init":
                    existing_id = existing.get_attr("dma_id")
                    if existing_id is not None and \
                            unwrap(existing_id) == config["id"]:
                        return
        operands = [
            arith.index_constant(b, int(config[key]))
            for key in ("id", "inputAddress", "inputBufferSize",
                        "outputAddress", "outputBufferSize")
        ]
        init = accel.dma_init(b, *operands)
        init.set_attr("dma_id", int(config["id"]))

    # -- opcode action emission ------------------------------------------
    def _emit_actions(self, b: Builder, emitter: _Emitter, opcode: Opcode,
                      offset: Value, staged: bool) -> Tuple[Value, bool]:
        """Emit one opcode's actions; returns (offset value, staged?)."""
        for action in opcode.actions:
            if isinstance(action, SendLiteral):
                literal = arith.constant(b, action.value, I32)
                offset = accel.send_literal(b, literal, offset)
                staged = True
            elif isinstance(action, Send):
                subview = emitter.operand_subview(b, action.arg)
                offset = accel.send(b, subview, offset)
                staged = True
            elif isinstance(action, SendDim):
                offset, staged = self._emit_send_dim(
                    b, emitter, action, offset
                )
            elif isinstance(action, SendIdx):
                iv = emitter.ivs.get(action.dim)
                if iv is None:
                    iv = arith.index_constant(b, 0)
                offset = accel.send_idx(b, iv, offset)
                staged = True
            elif isinstance(action, Recv):
                if staged:
                    offset = accel.flush_send(b, offset)
                    staged = False
                subview = emitter.operand_subview(b, action.arg)
                zero = arith.constant(b, 0, I32)
                accel.recv(b, subview, zero, mode=accel.RECV_ACCUMULATE)
            else:  # pragma: no cover - parser only produces the above
                raise CompileError(f"unknown action {action}")
        return offset, staged

    def _emit_send_dim(self, b: Builder, emitter: _Emitter,
                       action: SendDim, offset: Value) -> Tuple[Value, bool]:
        tile_extent = emitter.tile_extent_of_operand_dim(
            action.arg, action.dim
        )
        operand = emitter.operands[action.arg]
        operand_type = operand.type
        full_extent = operand_type.shape[action.dim]
        if tile_extent == full_extent:
            # Matches the paper's accel.sendDim on the whole operand
            # (Fig. 15b L7/L9).
            dim_const = arith.index_constant(b, action.dim)
            offset = accel.send_dim(b, operand, dim_const, offset)
        else:
            # Tile extent differs from the full dim (flexible-size
            # accelerators): the extent is a compile-time constant.
            literal = arith.constant(b, tile_extent, I32)
            offset = accel.send_literal(b, literal, offset)
        return offset, True

    def _emit_init_opcodes(self, b: Builder, emitter: _Emitter,
                           plan: LoweringPlan, opcode_map) -> None:
        offset: Value = arith.constant(b, 0, I32)
        staged = False
        for name in plan.init_flow.opcode_names():
            offset, staged = self._emit_actions(
                b, emitter, opcode_map[name], offset, staged
            )
        if staged:
            accel.flush_send(b, offset)

    # -- loop nest -----------------------------------------------------------
    def _emit_loop_nest(self, b: Builder, emitter: _Emitter,
                        plan: LoweringPlan, opcode_map) -> None:
        order = plan.loop_order
        outer_dims = [
            d for d in order
            if plan.cpu_tiles.get(d, plan.extents[d]) < plan.extents[d]
        ]

        accel_bounds = emitter.bounds

        # Outer CPU-cache tiling loops wrap the whole placed nest.
        def emit_outer(index: int) -> None:
            if index == len(outer_dims):
                self._emit_placed(b, emitter, plan, opcode_map,
                                  plan.placement.root, -1)
                return
            dim = outer_dims[index]
            extent = plan.extents[dim]
            cpu_tile = plan.cpu_tiles[dim]
            zero = arith.index_constant(b, 0)
            upper = arith.index_constant(b, extent)
            step = arith.index_constant(b, cpu_tile)
            with scf.build_for(b, zero, upper, step, f"{dim}o") as iv:
                accel_bounds[dim] = (iv, cpu_tile)
                emit_outer(index + 1)
                del accel_bounds[dim]

        for dim in order:
            if dim not in outer_dims:
                accel_bounds[dim] = (None, plan.extents[dim])

        emit_outer(0)

    def _emit_placed(self, b: Builder, emitter: _Emitter,
                     plan: LoweringPlan, opcode_map,
                     group: PlacedGroup, current_level: int) -> None:
        """Emit a placed group: loops down to its level, then its items."""
        order = plan.loop_order
        accel_bounds = emitter.bounds

        def open_loops(from_level: int, to_level: int, body) -> None:
            """Open accel loops for positions (from_level, to_level]."""
            if from_level >= to_level:
                body()
                return
            level = from_level + 1
            dim = order[level]
            lower_value, extent = accel_bounds[dim]
            step = plan.tiles[dim]
            if lower_value is None:
                lower = arith.index_constant(b, 0)
                upper = arith.index_constant(b, extent)
            else:
                lower = lower_value
                upper = arith.addi(
                    b, lower_value, arith.index_constant(b, extent)
                )
            step_value = arith.index_constant(b, step)
            with scf.build_for(b, lower, upper, step_value, dim) as iv:
                emitter.ivs[dim] = iv
                open_loops(level, to_level, body)
                del emitter.ivs[dim]

        def emit_items() -> None:
            offset: Value = arith.constant(b, 0, I32)
            staged = False
            for item in group.items:
                if isinstance(item, PlacedOpcode):
                    offset, staged = self._emit_actions(
                        b, emitter, opcode_map[item.name], offset, staged
                    )
                else:
                    if staged:
                        offset = accel.flush_send(b, offset)
                        staged = False
                    self._emit_placed(b, emitter, plan, opcode_map,
                                      item, group.level)
                    offset = arith.constant(b, 0, I32)
            if staged:
                accel.flush_send(b, offset)

        open_loops(current_level, group.level, emit_items)


@register_pass("lower-to-accel")
def _make_lower_to_accel(context: PipelineContext, options: dict) -> Pass:
    cache_bytes = None
    if context.cpu is not None:
        cache_bytes = context.cpu.last_level_size
    if "cache-bytes" in options:
        try:
            cache_bytes = int(options["cache-bytes"], 0)
        except ValueError as error:
            raise CompileError(
                f"bad cache-bytes option {options['cache-bytes']!r}"
            ) from error
    return LowerToAccelPass(
        cpu_cache_bytes=cache_bytes,
        enable_cpu_tiling=option_bool(options, "cpu-tiling", True),
    )
