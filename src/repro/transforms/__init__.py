"""AXI4MLIR compiler transformations (paper Fig. 4, steps 2-5).

* :mod:`repro.transforms.pass_manager` — pass infrastructure;
* :mod:`repro.transforms.generalize`   — named linalg ops to ``linalg.generic``;
* :mod:`repro.transforms.annotate`     — match-and-annotate: attach the
  accelerator trait attributes from a parsed configuration;
* :mod:`repro.transforms.flow_analysis`— opcode dependence/placement and
  loop-order derivation from ``opcode_flow`` (stationary hoisting);
* :mod:`repro.transforms.cpu_tiling`   — cache-hierarchy tile selection;
* :mod:`repro.transforms.lower_to_accel` — tiled loop-nest + ``accel``
  dialect code generation;
* :mod:`repro.transforms.pipeline`     — the end-to-end pass pipeline.
"""

from .errors import CompileError
from .pass_manager import (
    Pass,
    PassManager,
    PipelineContext,
    parse_pass_pipeline,
    register_pass,
    registered_passes,
)
from .generalize import GeneralizeNamedOpsPass, generalize_named_op
from .annotate import AnnotateForAcceleratorPass, trait_attributes
from .flow_analysis import (
    FlowPlacement,
    derive_loop_order,
    opcode_dependences,
    place_flow,
)
from .cpu_tiling import choose_cpu_tiles
from .lower_to_accel import LowerToAccelPass
from .pipeline import build_axi4mlir_pipeline

__all__ = [
    "CompileError", "Pass", "PassManager", "PipelineContext",
    "parse_pass_pipeline", "register_pass", "registered_passes",
    "GeneralizeNamedOpsPass", "generalize_named_op",
    "AnnotateForAcceleratorPass", "trait_attributes",
    "FlowPlacement", "derive_loop_order", "opcode_dependences", "place_flow",
    "choose_cpu_tiles",
    "LowerToAccelPass",
    "build_axi4mlir_pipeline",
]
