"""Generalization: named linalg ops to ``linalg.generic`` (Fig. 4 step,
"convert named ops to linalg.generic"; compare paper Fig. 2a)."""

from __future__ import annotations

from ..ir.attributes import unwrap
from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Module, Operation
from ..dialects import linalg
from .errors import CompileError
from .pass_manager import Pass, PipelineContext, register_pass


def generalize_named_op(op: Operation) -> Operation:
    """Replace one named op with the equivalent ``linalg.generic``."""
    builder = Builder(InsertionPoint.before(op))
    if op.name == "linalg.matmul":
        a, rhs, out = op.operands
        generic = linalg.generic(
            builder,
            linalg.matmul_maps(),
            linalg.MATMUL_ITERATORS,
            [a, rhs],
            [out],
        )
    elif op.name == "linalg.conv_2d_nchw_fchw":
        strides = unwrap(op.get_attr("strides")) or [1, 1]
        if strides[0] != strides[1]:
            raise CompileError(
                f"anisotropic conv strides {strides} are not supported"
            )
        image, filter_, out = op.operands
        generic = linalg.generic(
            builder,
            linalg.conv_2d_nchw_fchw_maps(stride=int(strides[0])),
            linalg.CONV_ITERATORS,
            [image, filter_],
            [out],
        )
    else:
        raise CompileError(f"cannot generalize {op.name}")
    for key, value in op.attributes.items():
        if key not in generic.attributes:
            generic.attributes[key] = value
    op.erase()
    return generic


GENERALIZABLE = ("linalg.matmul", "linalg.conv_2d_nchw_fchw")


class GeneralizeNamedOpsPass(Pass):
    """Rewrite every generalizable named op in the module."""

    name = "generalize-named-ops"

    def run(self, module: Module) -> None:
        targets = [op for op in module.walk() if op.name in GENERALIZABLE]
        for op in targets:
            generalize_named_op(op)


@register_pass("generalize")
def _make_generalize(context: PipelineContext, options: dict) -> Pass:
    return GeneralizeNamedOpsPass()
