"""The end-to-end AXI4MLIR pass pipeline (paper Fig. 4)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..accel_config import AcceleratorInfo, CPUInfo
from .annotate import AnnotateForAcceleratorPass
from .generalize import GeneralizeNamedOpsPass
from .lower_to_accel import LowerToAccelPass
from .pass_manager import PassManager


def build_axi4mlir_pipeline(
    info: AcceleratorInfo,
    cpu: Optional[CPUInfo] = None,
    flow_name: Optional[str] = None,
    permutation: Optional[Sequence[str]] = None,
    enable_cpu_tiling: bool = True,
    verify_each: bool = True,
    dump_each: bool = False,
) -> PassManager:
    """Assemble the standard pipeline for one accelerator configuration.

    Steps (Fig. 4): convert named ops to ``linalg.generic``; match and
    annotate with the accelerator trait; tile for the CPU hierarchy and
    the accelerator size while lowering to ``scf`` + ``accel``.
    """
    cache_bytes = cpu.last_level_size if cpu is not None else None
    if permutation is None:
        permutation = info.loop_permutation
    pm = PassManager(verify_each=verify_each, dump_each=dump_each)
    pm.add(GeneralizeNamedOpsPass())
    pm.add(AnnotateForAcceleratorPass(info, flow_name=flow_name,
                                      permutation=permutation))
    pm.add(LowerToAccelPass(cpu_cache_bytes=cache_bytes,
                            enable_cpu_tiling=enable_cpu_tiling))
    return pm
