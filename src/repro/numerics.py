"""Exact integer linear algebra via float64 BLAS, when provably safe.

``int64 @ int64`` (and int32) has no BLAS kernel in numpy and falls
back to naive loops; float64 BLAS is exact for integer operands while
every partial sum fits the f64 mantissa: ``k * max|a| * max|b| < 2**53``
guarantees all intermediates are exactly-representable integers, so
reassociation cannot change the result.  Shared by the CPU baselines
and the accelerator behavioural models.
"""

from __future__ import annotations

import numpy as np


def max_abs(array: np.ndarray) -> int:
    """max(|array|) in exact Python ints (np.abs wraps on INT_MIN)."""
    return max(abs(int(array.max(initial=0))), abs(int(array.min(initial=0))))


def float64_exact_bound(k: int, a: np.ndarray, b: np.ndarray) -> bool:
    """True when ``a @ b`` with reduction depth ``k`` is f64-exact."""
    return k * max_abs(a) * max_abs(b) < 2 ** 53


def exact_int_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` for integer operands, exactly (int64 semantics)."""
    if a.size and b.size and float64_exact_bound(a.shape[-1], a, b):
        return (a.astype(np.float64) @ b.astype(np.float64)) \
            .astype(np.int64)
    return a.astype(np.int64) @ b.astype(np.int64)
