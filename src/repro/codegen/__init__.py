"""Host code generation: lowered IR to executable Python driver code."""

from .python_emitter import (
    PythonEmitter,
    compile_host_function,
    emit_function,
    emit_function_source,
    schedule_event_count,
)

__all__ = [
    "PythonEmitter", "compile_host_function", "emit_function",
    "emit_function_source", "schedule_event_count",
]
