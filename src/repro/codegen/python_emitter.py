"""Python host-code emitter (the runtime-replacement step, Fig. 4 step 5).

The paper lowers the ``accel`` dialect into C calls against the AXI DMA
library and compiles them into the application binary.  Here the same
lowering emits *Python source* whose calls target
:class:`~repro.runtime.AxiRuntime`; ``exec`` turns it into a callable.
Generated code is pure driver code — loops, subviews, staged sends,
flushes, receives — and is the artifact benchmarked as
``mlir_AXI4MLIR``.

The emitted text is kept human-readable (it is part of this library's
observable behaviour: examples print it), but is micro-optimized the
way a C compiler would: runtime library calls are bound to locals at
function entry (one attribute lookup per call site per *invocation*,
not per loop iteration), and loop-invariant values — ``arith.constant``
results and subview size tuples — are hoisted out of the loop nests::

    def matmul_call(rt, arg0, arg1, arg2):
        dma_init = rt.dma_init
        send_literal = rt.send_literal
        ...
        c0 = 0
        sz0 = (8, 8)
        dma_init(c0, c1, c2, c3, c2)
        for m in range(c0, c8, c9):
            loop_iteration()
            ...

Alongside the source, the emitter produces a *schedule side table*: a
nested description of the loop nest and every statement in each body —
runtime calls with their operand value names, subview offset forms,
``arith`` index computations, and the constant pool — with static
bounds where known.  Two consumers read it: the trace recorder
cross-checks a recorded schedule against :func:`schedule_event_count`
(event counts must match the loop-nest expansion), and the
ahead-of-time synthesizer (:mod:`repro.execution.synthesize`) expands
it directly into a replayable :class:`DriverTrace` without ever
executing the emitted driver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import accel
from ..ir.attributes import StringAttr, unwrap
from ..ir.core import Block, Operation, Value


class EmitError(RuntimeError):
    pass


#: Runtime-library methods the emitted code may call; each call site is
#: emitted against a local binding established at function entry.
_RT_METHODS = (
    "dma_init", "send_literal", "send_memref", "send_dim", "send_idx",
    "flush_send", "recv_memref", "loop_iteration", "subview_setup",
)

#: Schedule-table entries that expand to a recorded runtime-library
#: event (everything else — ``arith``, ``subview``, ``dim`` — is pure
#: host-side index computation the recorder never sees).
SCHEDULE_EVENT_OPS = frozenset(_RT_METHODS)


class PythonEmitter:
    """Walks one lowered ``func.func`` and produces Python source."""

    def __init__(self, func_op: Operation):
        if func_op.name != "func.func":
            raise EmitError(f"expected func.func, got {func_op.name}")
        self.func_op = func_op
        self.names: Dict[Value, str] = {}
        self.lines: List[str] = []
        self.indent = 1
        self.counter = 0
        self.loop_names: List[str] = []
        #: Constant values by SSA value, for schedule bounds + hoisting.
        self.const_values: Dict[Value, object] = {}
        self._const_lines: List[str] = []
        self._size_tuples: Dict[Tuple[int, ...], str] = {}
        self._size_lines: List[str] = []
        self._used_methods: List[str] = []
        #: Nested schedule description (the side table).  ``constants``
        #: maps hoisted-constant names to their values; ``args`` lists
        #: the driver's memref argument names in order; body entries
        #: carry the emitted value names of their operands so the
        #: synthesizer can re-evaluate the loop nest symbolically.
        self.schedule: dict = {"op": "func", "constants": {}, "args": [],
                               "body": []}
        self._body_stack: List[list] = [self.schedule["body"]]

    # -- naming ----------------------------------------------------------
    def name_of(self, value: Value) -> str:
        name = self.names.get(value)
        if name is None:
            raise EmitError(f"value {value!r} used before definition")
        return name

    def fresh(self, value: Value, hint: str = "v") -> str:
        name = f"{hint}{self.counter}"
        self.counter += 1
        self.names[value] = name
        return name

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _rt(self, method: str) -> str:
        if method not in _RT_METHODS:
            raise EmitError(f"unknown runtime-library method {method!r}")
        if method not in self._used_methods:
            self._used_methods.append(method)
        return method

    def _size_tuple(self, sizes: Tuple[int, ...]) -> str:
        name = self._size_tuples.get(sizes)
        if name is None:
            name = f"sz{len(self._size_tuples)}"
            self._size_tuples[sizes] = name
            self._size_lines.append(f"    {name} = {sizes!r}")
        return name

    def _record(self, entry: dict) -> None:
        self._body_stack[-1].append(entry)

    # -- entry ------------------------------------------------------------
    def emit(self) -> str:
        sym = self.func_op.get_attr("sym_name")
        func_name = sym.value if isinstance(sym, StringAttr) else "host_func"
        entry = self.func_op.regions[0].entry_block
        arg_names = []
        for i, argument in enumerate(entry.arguments):
            name = f"arg{i}"
            self.names[argument] = name
            arg_names.append(name)
        self.schedule["args"] = list(arg_names)
        header = f"def {func_name}(rt, {', '.join(arg_names)}):"
        self._hoist_constants(entry)
        if not entry.operations:
            self.line("pass")
        self._emit_block(entry)
        prelude = [
            f"    {method} = rt.{method}" for method in self._used_methods
        ]
        return "\n".join(
            [header] + prelude + self._const_lines + self._size_lines
            + self.lines
        ) + "\n"

    def _hoist_constants(self, block: Block) -> None:
        """Emit every ``arith.constant`` once, at function entry.

        Constants are pure and loop-invariant; the IR materializes them
        inside the loop bodies that use them, but re-binding them every
        iteration is wasted interpreter work in the hot driver loops.
        """
        for op in block.operations:
            if op.name == "arith.constant":
                value = unwrap(op.get_attr("value"))
                name = self.fresh(op.results[0], "c")
                self.const_values[op.results[0]] = value
                self.schedule["constants"][name] = value
                self._const_lines.append(f"    {name} = {value!r}")
            for region in op.regions:
                for inner in region.blocks:
                    self._hoist_constants(inner)

    # -- blocks / ops ---------------------------------------------------------
    def _emit_block(self, block: Block) -> None:
        for op in block.operations:
            self._emit_op(op)

    #: op name -> handler attribute name (same memoized-mangling idiom
    #: as Interpreter._execute).
    _handler_names: Dict[str, str] = {}

    def _emit_op(self, op: Operation) -> None:
        attr = self._handler_names.get(op.name)
        if attr is None:
            attr = "_op_" + op.name.replace(".", "_")
            self._handler_names[op.name] = attr
        handler = getattr(self, attr, None)
        if handler is None:
            raise EmitError(f"cannot emit {op.name} as host code")
        handler(op)

    # -- func ------------------------------------------------------------
    def _op_func_return(self, op: Operation) -> None:
        if op.operands:
            values = ", ".join(self.name_of(v) for v in op.operands)
            self.line(f"return {values}")
        else:
            self.line("return None")

    # -- arith ------------------------------------------------------------
    def _op_arith_constant(self, op: Operation) -> None:
        del op  # hoisted to the function prelude

    def _binary(self, op: Operation, operator: str) -> None:
        lhs = self.name_of(op.operands[0])
        rhs = self.name_of(op.operands[1])
        name = self.fresh(op.results[0])
        self.line(f"{name} = {lhs} {operator} {rhs}")
        self._record({"op": "arith", "fn": operator, "result": name,
                      "args": [lhs, rhs]})

    def _op_arith_addi(self, op):
        self._binary(op, "+")

    def _op_arith_subi(self, op):
        self._binary(op, "-")

    def _op_arith_muli(self, op):
        self._binary(op, "*")

    def _op_arith_addf(self, op):
        self._binary(op, "+")

    def _op_arith_subf(self, op):
        self._binary(op, "-")

    def _op_arith_mulf(self, op):
        self._binary(op, "*")

    def _op_arith_minui(self, op: Operation) -> None:
        lhs = self.name_of(op.operands[0])
        rhs = self.name_of(op.operands[1])
        name = self.fresh(op.results[0])
        self.line(f"{name} = min({lhs}, {rhs})")
        self._record({"op": "arith", "fn": "min", "result": name,
                      "args": [lhs, rhs]})

    # -- scf ------------------------------------------------------------------
    def _op_scf_for(self, op: Operation) -> None:
        lower = self.name_of(op.operands[0])
        upper = self.name_of(op.operands[1])
        step = self.name_of(op.operands[2])
        body = op.regions[0].entry_block
        iv_hint = op.get_attr("iv_name")
        hint = iv_hint.value if isinstance(iv_hint, StringAttr) else "i"
        iv_name = hint
        suffix = 1
        while iv_name in self.loop_names:
            suffix += 1
            iv_name = f"{hint}{suffix}"
        self.loop_names.append(iv_name)
        self.names[body.arguments[0]] = iv_name
        self.line(f"for {iv_name} in range({lower}, {upper}, {step}):")
        entry = {
            "op": "for", "iv": iv_name,
            "lower": self.const_values.get(op.operands[0]),
            "upper": self.const_values.get(op.operands[1]),
            "step": self.const_values.get(op.operands[2]),
            "args": [lower, upper, step],
            "body": [],
        }
        self._record(entry)
        self._body_stack.append(entry["body"])
        self.indent += 1
        self.line(f"{self._rt('loop_iteration')}()")
        self._record({"op": "loop_iteration"})
        self._emit_block(body)
        self.indent -= 1
        self._body_stack.pop()
        self.loop_names.pop()

    def _op_scf_yield(self, op: Operation) -> None:
        del op  # loop bodies need no explicit terminator in Python

    # -- memref -----------------------------------------------------------
    def _op_memref_subview(self, op: Operation) -> None:
        source = self.name_of(op.operands[0])
        offsets = ", ".join(self.name_of(v) for v in op.operands[1:])
        sizes = tuple(unwrap(op.get_attr("static_sizes")))
        name = self.fresh(op.results[0], "sub")
        trailing = "," if len(op.operands) == 2 else ""
        self.line(
            f"{name} = {source}.subview(({offsets}{trailing}), "
            f"{self._size_tuple(sizes)})"
        )
        self._record({"op": "subview", "result": name, "ref": source,
                      "offsets": [self.name_of(v) for v in op.operands[1:]],
                      "sizes": list(sizes)})
        self.line(f"{self._rt('subview_setup')}()")
        self._record({"op": "subview_setup"})

    def _op_memref_dim(self, op: Operation) -> None:
        source = self.name_of(op.operands[0])
        index = unwrap(op.get_attr("index"))
        name = self.fresh(op.results[0], "d")
        self.line(f"{name} = {source}.sizes[{index}]")
        self._record({"op": "dim", "result": name, "ref": source,
                      "index": int(index)})

    # -- accel ------------------------------------------------------------
    def _op_accel_dma_init(self, op: Operation) -> None:
        names = [self.name_of(v) for v in op.operands]
        self.line(f"{self._rt('dma_init')}({', '.join(names)})")
        self._record({"op": "dma_init", "args": names})

    def _op_accel_send_literal(self, op: Operation) -> None:
        literal = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = {self._rt('send_literal')}({literal}, {offset})")
        self._record({"op": "send_literal", "result": name,
                      "value": literal, "offset": offset})

    def _op_accel_send(self, op: Operation) -> None:
        ref = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = {self._rt('send_memref')}({ref}, {offset})")
        self._record({"op": "send_memref", "result": name, "ref": ref,
                      "offset": offset})

    def _op_accel_send_dim(self, op: Operation) -> None:
        ref = self.name_of(op.operands[0])
        dim = self.name_of(op.operands[1])
        offset = self.name_of(op.operands[2])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = {self._rt('send_dim')}({ref}, {dim}, {offset})")
        self._record({"op": "send_dim", "result": name, "ref": ref,
                      "dim": dim, "offset": offset})

    def _op_accel_send_idx(self, op: Operation) -> None:
        value = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = {self._rt('send_idx')}({value}, {offset})")
        self._record({"op": "send_idx", "result": name, "value": value,
                      "offset": offset})

    def _op_accel_flush_send(self, op: Operation) -> None:
        offset = self.name_of(op.operands[0])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = {self._rt('flush_send')}({offset})")
        self._record({"op": "flush_send", "result": name, "offset": offset})

    def _op_accel_recv(self, op: Operation) -> None:
        ref = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        accumulate = accel.recv_mode(op) == accel.RECV_ACCUMULATE
        self.line(
            f"{self._rt('recv_memref')}({ref}, {offset}, "
            f"accumulate={accumulate})"
        )
        self._record({"op": "recv_memref", "ref": ref, "offset": offset,
                      "accumulate": accumulate})


def schedule_event_count(table: Optional[dict]) -> Optional[int]:
    """Total runtime-library calls the schedule expands to.

    ``None`` when any loop bound is not statically known.  The trace
    recorder compares this against the number of events it actually
    recorded — a cheap structural proof that the recording covered the
    whole loop nest.
    """
    if not table:
        return None

    def count(body: list) -> Optional[int]:
        total = 0
        for entry in body:
            if entry["op"] == "for":
                lower, upper = entry["lower"], entry["upper"]
                step = entry["step"]
                if lower is None or upper is None or not step:
                    return None
                trips = len(range(lower, upper, step))
                inner = count(entry["body"])
                if inner is None:
                    return None
                total += trips * inner
            elif entry["op"] in SCHEDULE_EVENT_OPS:
                total += 1
        return total

    return count(table["body"])


def emit_function_source(func_op: Operation) -> str:
    """Emit Python driver source for one lowered function."""
    return PythonEmitter(func_op).emit()


def emit_function(func_op: Operation) -> Tuple[str, dict]:
    """Emit source plus the schedule side table."""
    emitter = PythonEmitter(func_op)
    source = emitter.emit()
    return source, emitter.schedule


def compile_host_function(func_op: Operation,
                          source: Optional[str] = None):
    """Emit and ``exec`` the driver; returns ``(callable, source)``."""
    text = source or emit_function_source(func_op)
    sym = func_op.get_attr("sym_name")
    func_name = sym.value if isinstance(sym, StringAttr) else "host_func"
    namespace: dict = {}
    code = compile(text, f"<axi4mlir:{func_name}>", "exec")
    exec(code, namespace)
    return namespace[func_name], text
