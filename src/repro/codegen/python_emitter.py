"""Python host-code emitter (the runtime-replacement step, Fig. 4 step 5).

The paper lowers the ``accel`` dialect into C calls against the AXI DMA
library and compiles them into the application binary.  Here the same
lowering emits *Python source* whose calls target
:class:`~repro.runtime.AxiRuntime`; ``exec`` turns it into a callable.
Generated code is pure driver code — loops, subviews, staged sends,
flushes, receives — and is the artifact benchmarked as
``mlir_AXI4MLIR``.

The emitted text is kept human-readable (it is part of this library's
observable behaviour: examples print it), e.g.::

    def matmul_call(rt, arg0, arg1, arg2):
        rt.dma_init(0, 1073741824, 131072, 1074790400, 131072)
        v0 = rt.send_literal(0xff, 0)
        v1 = rt.flush_send(v0)
        for m in range(0, 64, 8):
            rt.loop_iteration()
            ...
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dialects import accel
from ..ir.attributes import StringAttr, unwrap
from ..ir.core import Block, Operation, Value


class EmitError(RuntimeError):
    pass


class PythonEmitter:
    """Walks one lowered ``func.func`` and produces Python source."""

    def __init__(self, func_op: Operation):
        if func_op.name != "func.func":
            raise EmitError(f"expected func.func, got {func_op.name}")
        self.func_op = func_op
        self.names: Dict[Value, str] = {}
        self.lines: List[str] = []
        self.indent = 1
        self.counter = 0
        self.loop_names: List[str] = []

    # -- naming ----------------------------------------------------------
    def name_of(self, value: Value) -> str:
        name = self.names.get(value)
        if name is None:
            raise EmitError(f"value {value!r} used before definition")
        return name

    def fresh(self, value: Value, hint: str = "v") -> str:
        name = f"{hint}{self.counter}"
        self.counter += 1
        self.names[value] = name
        return name

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- entry ------------------------------------------------------------
    def emit(self) -> str:
        sym = self.func_op.get_attr("sym_name")
        func_name = sym.value if isinstance(sym, StringAttr) else "host_func"
        entry = self.func_op.regions[0].entry_block
        arg_names = []
        for i, argument in enumerate(entry.arguments):
            name = f"arg{i}"
            self.names[argument] = name
            arg_names.append(name)
        header = f"def {func_name}(rt, {', '.join(arg_names)}):"
        self.lines.append(header)
        if not entry.operations:
            self.line("pass")
        self._emit_block(entry)
        return "\n".join(self.lines) + "\n"

    # -- blocks / ops ---------------------------------------------------------
    def _emit_block(self, block: Block) -> None:
        for op in block.operations:
            self._emit_op(op)

    #: op name -> handler attribute name (same memoized-mangling idiom
    #: as Interpreter._execute).
    _handler_names: Dict[str, str] = {}

    def _emit_op(self, op: Operation) -> None:
        attr = self._handler_names.get(op.name)
        if attr is None:
            attr = "_op_" + op.name.replace(".", "_")
            self._handler_names[op.name] = attr
        handler = getattr(self, attr, None)
        if handler is None:
            raise EmitError(f"cannot emit {op.name} as host code")
        handler(op)

    # -- func ------------------------------------------------------------
    def _op_func_return(self, op: Operation) -> None:
        if op.operands:
            values = ", ".join(self.name_of(v) for v in op.operands)
            self.line(f"return {values}")
        else:
            self.line("return None")

    # -- arith ------------------------------------------------------------
    def _op_arith_constant(self, op: Operation) -> None:
        value = unwrap(op.get_attr("value"))
        name = self.fresh(op.results[0], "c")
        self.line(f"{name} = {value!r}")

    def _binary(self, op: Operation, operator: str) -> None:
        lhs = self.name_of(op.operands[0])
        rhs = self.name_of(op.operands[1])
        name = self.fresh(op.results[0])
        self.line(f"{name} = {lhs} {operator} {rhs}")

    def _op_arith_addi(self, op):
        self._binary(op, "+")

    def _op_arith_subi(self, op):
        self._binary(op, "-")

    def _op_arith_muli(self, op):
        self._binary(op, "*")

    def _op_arith_addf(self, op):
        self._binary(op, "+")

    def _op_arith_subf(self, op):
        self._binary(op, "-")

    def _op_arith_mulf(self, op):
        self._binary(op, "*")

    def _op_arith_minui(self, op: Operation) -> None:
        lhs = self.name_of(op.operands[0])
        rhs = self.name_of(op.operands[1])
        name = self.fresh(op.results[0])
        self.line(f"{name} = min({lhs}, {rhs})")

    # -- scf ------------------------------------------------------------------
    def _op_scf_for(self, op: Operation) -> None:
        lower = self.name_of(op.operands[0])
        upper = self.name_of(op.operands[1])
        step = self.name_of(op.operands[2])
        body = op.regions[0].entry_block
        iv_hint = op.get_attr("iv_name")
        hint = iv_hint.value if isinstance(iv_hint, StringAttr) else "i"
        iv_name = hint
        suffix = 1
        while iv_name in self.loop_names:
            suffix += 1
            iv_name = f"{hint}{suffix}"
        self.loop_names.append(iv_name)
        self.names[body.arguments[0]] = iv_name
        self.line(f"for {iv_name} in range({lower}, {upper}, {step}):")
        self.indent += 1
        self.line("rt.loop_iteration()")
        self._emit_block(body)
        self.indent -= 1
        self.loop_names.pop()

    def _op_scf_yield(self, op: Operation) -> None:
        del op  # loop bodies need no explicit terminator in Python

    # -- memref -----------------------------------------------------------
    def _op_memref_subview(self, op: Operation) -> None:
        source = self.name_of(op.operands[0])
        offsets = ", ".join(self.name_of(v) for v in op.operands[1:])
        sizes = tuple(unwrap(op.get_attr("static_sizes")))
        name = self.fresh(op.results[0], "sub")
        trailing = "," if len(op.operands) == 2 else ""
        self.line(
            f"{name} = {source}.subview(({offsets}{trailing}), {sizes!r})"
        )
        self.line("rt.subview_setup()")

    def _op_memref_dim(self, op: Operation) -> None:
        source = self.name_of(op.operands[0])
        index = unwrap(op.get_attr("index"))
        name = self.fresh(op.results[0], "d")
        self.line(f"{name} = {source}.sizes[{index}]")

    # -- accel ------------------------------------------------------------
    def _op_accel_dma_init(self, op: Operation) -> None:
        args = ", ".join(self.name_of(v) for v in op.operands)
        self.line(f"rt.dma_init({args})")

    def _op_accel_send_literal(self, op: Operation) -> None:
        literal = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = rt.send_literal({literal}, {offset})")

    def _op_accel_send(self, op: Operation) -> None:
        ref = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = rt.send_memref({ref}, {offset})")

    def _op_accel_send_dim(self, op: Operation) -> None:
        ref = self.name_of(op.operands[0])
        dim = self.name_of(op.operands[1])
        offset = self.name_of(op.operands[2])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = rt.send_dim({ref}, {dim}, {offset})")

    def _op_accel_send_idx(self, op: Operation) -> None:
        value = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = rt.send_idx({value}, {offset})")

    def _op_accel_flush_send(self, op: Operation) -> None:
        offset = self.name_of(op.operands[0])
        name = self.fresh(op.results[0], "off")
        self.line(f"{name} = rt.flush_send({offset})")

    def _op_accel_recv(self, op: Operation) -> None:
        ref = self.name_of(op.operands[0])
        offset = self.name_of(op.operands[1])
        accumulate = accel.recv_mode(op) == accel.RECV_ACCUMULATE
        self.line(
            f"rt.recv_memref({ref}, {offset}, accumulate={accumulate})"
        )


def emit_function_source(func_op: Operation) -> str:
    """Emit Python driver source for one lowered function."""
    return PythonEmitter(func_op).emit()


def compile_host_function(func_op: Operation,
                          source: Optional[str] = None):
    """Emit and ``exec`` the driver; returns ``(callable, source)``."""
    text = source or emit_function_source(func_op)
    sym = func_op.get_attr("sym_name")
    func_name = sym.value if isinstance(sym, StringAttr) else "host_func"
    namespace: dict = {}
    code = compile(text, f"<axi4mlir:{func_name}>", "exec")
    exec(code, namespace)
    return namespace[func_name], text
