"""Crash-safe, concurrency-safe, corruption-tolerant kernel store.

This is the disk half of :class:`repro.compiler.KernelCache`, split out
so its failure semantics can be reasoned about (and fault-injected)
independently of the compilation pipeline.  Design points:

**Layout.**  Entries live under ``<root>/objects/<shard>/<name>.entry``
where ``shard`` is the first two hex digits of the entry-name digest —
directories stay small even for many thousands of kernels.  Quarantined
files move to ``<root>/corrupt/``; advisory lock files live under
``<root>/locks/``.  Legacy flat ``kernel-*.pkl`` entries (store
version <= 2) are never consulted: they simply age out of the directory
(CI prunes them; ``gc()`` ignores them).

**Atomic publish.**  Writers create a uniquely named temporary file
(pid + thread id + counter, so neither concurrent processes nor threads
collide), ``fsync`` it, ``os.replace`` it over the final name, then
``fsync`` the directory.  Readers therefore observe either the old
entry, the new entry, or no entry — never a torn write — and a writer
killed at any instant leaves at most one stray ``*.tmp-*`` file, which
is removed in a ``finally`` on error paths and swept by ``gc()``.

**Entry container.**  Each ``.entry`` file is::

    REPRO-KSTORE-1\\n
    <sha256 hex of manifest+arrays>\\n
    <manifest byte length>\\n
    <JSON manifest><npz archive>

The manifest is JSON (a whitelisted tagged encoding of the payload —
see the codec below); bulk numeric data rides in an appended
``numpy`` ``.npz`` archive loaded with ``allow_pickle=False``.  There
is **no pickle anywhere in the load path**, so an untrusted cache
directory can at worst fail to load — it can never execute code.  Any
container violation (bad magic, short file, checksum mismatch,
malformed JSON/npz, non-whitelisted tag) *quarantines* the file into
``corrupt/`` and reports status ``"corrupt"``, which callers count
separately from an honest miss.

**Cross-process coordination.**  ``build_lock(name)`` takes an
``fcntl`` advisory lock with bounded retry/backoff so N processes
sharing ``REPRO_KERNEL_CACHE_DIR`` compile each kernel once: the loser
of the race waits, then finds the winner's published entry on its
second look.  Lock acquisition failing (timeout, no fcntl, injected
fault) is never an error — the caller just compiles redundantly,
exactly as the store-less path would.

**Garbage collection.**  ``gc(max_bytes)`` (env:
``REPRO_KERNEL_CACHE_MAX_BYTES``) evicts least-recently-*used* entries
— loads touch the file mtime — until the store fits, and sweeps stale
temporaries.  It runs opportunistically after each publish.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import faults
from .envutil import env_float, env_int

try:
    import fcntl
    _HAVE_FCNTL = True
except ImportError:  # non-POSIX: no cross-process coordination
    _HAVE_FCNTL = False

#: Container magic line; bump with the container *framing*, not the
#: payload schema (that is KERNEL_STORE_VERSION in the manifest).
MAGIC = b"REPRO-KSTORE-1\n"

#: Env knob: total bytes the object tree may occupy before the LRU
#: garbage collector evicts oldest-used entries.  Unset/empty = no cap.
MAX_BYTES_ENV = "REPRO_KERNEL_CACHE_MAX_BYTES"

#: Env knob: seconds a build lock is retried before giving up and
#: compiling redundantly.
LOCK_TIMEOUT_ENV = "REPRO_KERNEL_CACHE_LOCK_TIMEOUT_S"

_DEFAULT_LOCK_TIMEOUT_S = 10.0

#: Temp files older than this are considered crash litter by gc().
_TMP_MAX_AGE_S = 300.0

#: Process-wide store event counters (mirrors TRACE_COUNTERS /
#: METRICS_PLAN_COUNTERS); surfaced via ``diagnostics()``.
STORE_COUNTERS: Dict[str, int] = {
    "store_hits": 0,
    "store_misses": 0,
    "store_corrupt": 0,
    "store_stale": 0,
    "store_io_errors": 0,
    "store_writes": 0,
    "store_write_failures": 0,
    "store_quarantined": 0,
    "store_evictions": 0,
    "store_lock_timeouts": 0,
}


def reset_store_counters() -> None:
    for key in STORE_COUNTERS:
        STORE_COUNTERS[key] = 0


class StoreFormatError(ValueError):
    """The entry container or its manifest violates the format."""


class UnencodablePayload(ValueError):
    """The payload contains values outside the codec whitelist."""


# ---------------------------------------------------------------------------
# Codec: whitelisted tagged JSON + npz side table
# ---------------------------------------------------------------------------
#
# JSON scalars (None/bool/int/float/str) encode as themselves; every
# container becomes a ``[tag, payload]`` array so tuples, sets, and
# non-string dict keys survive the round trip:
#
#   ["l", [...]]            list
#   ["t", [...]]            tuple
#   ["s", [...]]            set (sorted for determinism)
#   ["d", [[k, v], ...]]    dict
#   ["od", [[k, v], ...]]   OrderedDict
#   ["nd", "a3"]            ndarray, stored as npz member "a3"
#   ["o", cls, [[f, v]..]]  whitelisted object, rebuilt field-by-field
#   ["flow", "..."]         OpcodeFlow, via its textual form
#
# Objects are reconstructed with ``object.__new__`` + ``setattr`` over
# an explicit per-class field list — no constructors run on untrusted
# data and nothing outside the registry can ever be instantiated.

def _class_registry() -> Dict[str, Tuple[type, Optional[Tuple[str, ...]]]]:
    """Tag -> (class, field whitelist).  ``None`` fields = instance dict.

    Imported lazily so ``repro.store`` stays importable on its own (the
    execution/transform modules import numpy-heavy machinery).
    """
    from .execution.metrics import MetricsPlan
    from .execution.model_plan import ModelPlan
    from .execution.trace import DecodedPlan, DriverTrace, _TileClass
    from .transforms.flow_analysis import (
        FlowPlacement,
        PlacedGroup,
        PlacedOpcode,
    )
    from .transforms.lower_to_accel import LoweringPlan

    return {
        "LoweringPlan": (LoweringPlan, (
            "dim_names", "extents", "tiles", "loop_order", "cpu_tiles",
            "placement", "operand_host_dims", "init_flow",
        )),
        "FlowPlacement": (FlowPlacement, (
            "root", "loop_order", "levels_by_opcode",
        )),
        "PlacedGroup": (PlacedGroup, ("items", "level")),
        "PlacedOpcode": (PlacedOpcode, ("name", "level", "min_level")),
        "DriverTrace": (DriverTrace, None),
        "_TileClass": (_TileClass, (
            "arg", "sizes", "strides", "itemsize", "accumulate",
            "starts", "region_offsets", "event_pos", "order",
        )),
        "DecodedPlan": (DecodedPlan, None),
        "MetricsPlan": (MetricsPlan, (
            "final_state", "l1_ways", "l2_ways",
            "l1_hits_d", "l1_misses_d", "l2_hits_d", "l2_misses_d",
            "l1_miss_total", "l2_miss_total", "stats",
            "input_word_dest", "input_word_values", "input_tile_writes",
            "output_writes",
        )),
        # Fused model plans: steps is a list of (config-repr, MetricsPlan)
        # tuples, both already covered by the codec.
        "ModelPlan": (ModelPlan, ("name", "fingerprint", "steps")),
    }


#: DriverTrace attributes never persisted: ``metrics_plans`` has its
#: own schema slot in the kernel payload; ``decoded`` is filtered to
#: drop cached TraceUnsupported sentinels (cheap to rediscover).
_TRACE_SKIP = ("metrics_plans",)

#: DecodedPlan attributes lazily attached by the replay executor.
_PLAN_SKIP = ("_push_class", "_push_row")


class _Encoder:
    def __init__(self) -> None:
        self.arrays: Dict[str, np.ndarray] = {}
        self._registry = _class_registry()
        self._tag_of = {cls: tag for tag, (cls, _) in
                        self._registry.items()}

    def encode(self, value: Any) -> Any:
        if value is None or value is True or value is False:
            return value
        if isinstance(value, (int, float, str)) \
                and not isinstance(value, (np.integer, np.floating)):
            return value
        if isinstance(value, (np.integer, np.bool_)):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.ndarray):
            if value.dtype == object:
                raise UnencodablePayload("object-dtype ndarray")
            name = f"a{len(self.arrays)}"
            self.arrays[name] = value
            return ["nd", name]
        if isinstance(value, list):
            return ["l", [self.encode(v) for v in value]]
        if isinstance(value, tuple):
            return ["t", [self.encode(v) for v in value]]
        if isinstance(value, (set, frozenset)):
            return ["s", [self.encode(v)
                          for v in sorted(value, key=repr)]]
        if isinstance(value, OrderedDict):
            return ["od", [[self.encode(k), self.encode(v)]
                           for k, v in value.items()]]
        if isinstance(value, dict):
            return ["d", [[self.encode(k), self.encode(v)]
                          for k, v in value.items()]]
        tag = self._tag_of.get(type(value))
        if tag is not None:
            return ["o", tag, self._encode_fields(tag, value)]
        from .opcodes import OpcodeFlow
        if isinstance(value, OpcodeFlow):
            return ["flow", str(value)]
        raise UnencodablePayload(
            f"cannot persist value of type {type(value).__name__}"
        )

    def _encode_fields(self, tag: str, value: Any) -> List[List[Any]]:
        from .execution.trace import TraceUnsupported

        _, fields = self._registry[tag]
        items: List[List[Any]] = []
        if fields is None:
            pairs = list(vars(value).items())
        else:
            pairs = [(name, getattr(value, name)) for name in fields]
        for name, field in pairs:
            if tag == "DriverTrace":
                if name in _TRACE_SKIP:
                    continue
                if name == "decoded":
                    field = {k: v for k, v in field.items()
                             if not isinstance(v, TraceUnsupported)}
            if tag == "DecodedPlan" and name in _PLAN_SKIP:
                continue
            items.append([name, self.encode(field)])
        return items


class _Decoder:
    def __init__(self, arrays) -> None:
        self.arrays = arrays
        self._registry = _class_registry()

    def decode(self, value: Any) -> Any:
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if not isinstance(value, list) or not value \
                or not isinstance(value[0], str):
            raise StoreFormatError(f"malformed codec node: {value!r}")
        tag = value[0]
        if tag == "l":
            return [self.decode(v) for v in value[1]]
        if tag == "t":
            return tuple(self.decode(v) for v in value[1])
        if tag == "s":
            return {self.decode(v) for v in value[1]}
        if tag == "d":
            return {self.decode(k): self.decode(v) for k, v in value[1]}
        if tag == "od":
            return OrderedDict(
                (self.decode(k), self.decode(v)) for k, v in value[1]
            )
        if tag == "nd":
            try:
                return self.arrays[value[1]]
            except KeyError:
                raise StoreFormatError(
                    f"manifest references missing array {value[1]!r}"
                ) from None
        if tag == "flow":
            from .opcodes import parse_opcode_flow
            return parse_opcode_flow(value[1])
        if tag == "o":
            return self._decode_object(value[1], value[2])
        raise StoreFormatError(f"unknown codec tag {tag!r}")

    def _decode_object(self, tag: str, items: Any) -> Any:
        entry = self._registry.get(tag)
        if entry is None:
            raise StoreFormatError(f"non-whitelisted class tag {tag!r}")
        cls, fields = entry
        obj = object.__new__(cls)
        allowed = set(fields) if fields is not None else None
        seen = set()
        for name, encoded in items:
            if not isinstance(name, str) \
                    or (allowed is not None and name not in allowed):
                if tag in ("DriverTrace", "DecodedPlan"):
                    # Instance-dict classes tolerate extra fields from
                    # newer writers; drop anything unexpected.
                    if not isinstance(name, str) \
                            or name.startswith("_") \
                            or name in _TRACE_SKIP:
                        continue
                else:
                    raise StoreFormatError(
                        f"field {name!r} not allowed on {tag}"
                    )
            setattr(obj, name, self.decode(encoded))
            seen.add(name)
        if allowed is not None and seen != allowed:
            raise StoreFormatError(f"incomplete {tag} entry")
        if tag == "DriverTrace":
            obj.metrics_plans = OrderedDict()
        return obj


def encode_payload(payload: Any) -> Tuple[bytes, bytes]:
    """Payload -> (manifest JSON bytes, npz bytes).

    Raises :class:`UnencodablePayload` when the payload reaches outside
    the codec whitelist (e.g. an object-dtype array); callers keep such
    entries memory-only.
    """
    encoder = _Encoder()
    tree = encoder.encode(payload)
    manifest = json.dumps({"format": 1, "payload": tree},
                          separators=(",", ":")).encode()
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **encoder.arrays)
    return manifest, buffer.getvalue()


def decode_payload(manifest: bytes, npz: bytes) -> Any:
    """Inverse of :func:`encode_payload`; raises StoreFormatError."""
    try:
        document = json.loads(manifest)
    except ValueError as exc:
        raise StoreFormatError(f"bad manifest JSON: {exc}") from None
    if not isinstance(document, dict) or document.get("format") != 1:
        raise StoreFormatError("unknown manifest format")
    try:
        with np.load(io.BytesIO(npz), allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as exc:
        raise StoreFormatError(f"bad npz archive: {exc}") from None
    try:
        return _Decoder(arrays).decode(document["payload"])
    except StoreFormatError:
        raise
    except Exception as exc:
        # Anything else a hostile manifest provokes (bad flow text,
        # setattr on slots, ...) is still just a corrupt entry.
        raise StoreFormatError(f"undecodable payload: {exc}") from None


# ---------------------------------------------------------------------------
# Container framing
# ---------------------------------------------------------------------------

def pack_entry(manifest: bytes, npz: bytes) -> bytes:
    digest = hashlib.sha256(manifest + npz).hexdigest()
    header = MAGIC + digest.encode() + b"\n" + \
        str(len(manifest)).encode() + b"\n"
    return header + manifest + npz


def unpack_entry(blob: bytes) -> Tuple[bytes, bytes]:
    if not blob.startswith(MAGIC):
        raise StoreFormatError("bad magic")
    rest = blob[len(MAGIC):]
    try:
        digest_line, rest = rest.split(b"\n", 1)
        length_line, rest = rest.split(b"\n", 1)
        manifest_len = int(length_line)
    except ValueError:
        raise StoreFormatError("truncated header") from None
    if manifest_len < 0 or manifest_len > len(rest):
        raise StoreFormatError("truncated entry")
    manifest, npz = rest[:manifest_len], rest[manifest_len:]
    actual = hashlib.sha256(manifest + npz).hexdigest().encode()
    if actual != digest_line:
        raise StoreFormatError("checksum mismatch")
    return manifest, npz


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

_tmp_counter_lock = threading.Lock()
_tmp_counter = 0


def _fresh_tmp_lock_after_fork() -> None:
    # Forked children (service workers, model-pool workers) must not
    # inherit a lock some other parent thread held mid-publish.
    global _tmp_counter_lock
    _tmp_counter_lock = threading.Lock()


os.register_at_fork(after_in_child=_fresh_tmp_lock_after_fork)


def _next_tmp_suffix() -> str:
    """Unique per (pid, thread, counter): concurrent writers anywhere
    on the same filesystem never collide on a temp name."""
    global _tmp_counter
    with _tmp_counter_lock:
        _tmp_counter += 1
        count = _tmp_counter
    return f".tmp-{os.getpid()}-{threading.get_ident()}-{count}"


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Public names for the atomic-publish building blocks (write to a
#: collision-free ``*.tmp-*`` sibling, fsync, ``os.replace``, fsync the
#: directory).  The tuning journal's rotation/compaction reuses them so
#: every durable artifact in the repo follows one idiom — and one
#: hygiene rule: a crash at any instant leaves either the old file, the
#: new file, or removable ``*.tmp-*`` litter, never a torn target.
next_tmp_suffix = _next_tmp_suffix
fsync_dir = _fsync_dir


def _count(key: str, amount: int = 1) -> None:
    STORE_COUNTERS[key] += amount


class KernelStore:
    """One on-disk store rooted at a directory (see module docstring).

    ``load``/``store`` report status strings instead of raising: every
    failure mode maps onto a degradation the caller already supports
    (rebuild, or stay memory-only).
    """

    def __init__(self, root, max_bytes: Optional[int] = None,
                 lock_timeout_s: Optional[float] = None) -> None:
        self.root = Path(root)
        self._max_bytes = max_bytes
        self._lock_timeout_s = lock_timeout_s

    # -- paths ------------------------------------------------------------
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def corrupt_dir(self) -> Path:
        return self.root / "corrupt"

    def _locks_dir(self) -> Path:
        return self.root / "locks"

    def entry_path(self, name: str) -> Path:
        shard = hashlib.sha256(name.encode()).hexdigest()[:2]
        return self.objects_dir() / shard / f"{name}.entry"

    def _resolve_max_bytes(self) -> Optional[int]:
        if self._max_bytes is not None:
            return self._max_bytes
        return env_int(MAX_BYTES_ENV, None)

    def _resolve_lock_timeout(self) -> float:
        if self._lock_timeout_s is not None:
            return self._lock_timeout_s
        return env_float(LOCK_TIMEOUT_ENV, _DEFAULT_LOCK_TIMEOUT_S)

    # -- load -------------------------------------------------------------
    def load(self, name: str,
             count: bool = True) -> Tuple[str, Optional[Any]]:
        """Read one entry.

        Returns ``(status, payload)`` with status one of ``"hit"``
        (payload decoded), ``"miss"`` (honest absence), ``"io"``
        (filesystem error — the entry may exist but is unreadable right
        now), or ``"corrupt"`` (container/codec violation; the file has
        been quarantined into ``corrupt/``).  ``count=False`` suppresses
        counter updates for double-checked reads under a build lock.
        """
        path = self.entry_path(name)
        injected = faults.fires("store.read")
        try:
            if injected == "io":
                raise OSError("injected store.read io fault")
            blob = path.read_bytes()
        except FileNotFoundError:
            if count:
                _count("store_misses")
            return "miss", None
        except OSError:
            if count:
                _count("store_io_errors")
            return "io", None
        try:
            if injected == "corrupt":
                raise StoreFormatError("injected store.read corruption")
            manifest, npz = unpack_entry(blob)
            payload = decode_payload(manifest, npz)
        except StoreFormatError:
            self.quarantine(name)
            if count:
                _count("store_corrupt")
            return "corrupt", None
        if count:
            _count("store_hits")
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass
        return "hit", payload

    def quarantine(self, name: str) -> None:
        """Move an entry into ``corrupt/`` (atomic, never raises).

        Quarantining rather than deleting keeps the evidence for
        inspection while guaranteeing the bad bytes are never read
        again; the next compile republishes a fresh entry.
        """
        path = self.entry_path(name)
        target_dir = self.corrupt_dir()
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            if target.exists():
                target = target_dir / (path.name + _next_tmp_suffix())
            os.replace(path, target)
            _count("store_quarantined")
        except OSError:
            return

    # -- store ------------------------------------------------------------
    def store(self, name: str, payload: Any) -> bool:
        """Atomically publish one entry; False = not persisted.

        Encode failures (payload outside the whitelist) and filesystem
        errors both leave the store exactly as it was — no partial
        entry, no leaked temp file.
        """
        try:
            manifest, npz = encode_payload(payload)
        except UnencodablePayload:
            return False
        blob = pack_entry(manifest, npz)
        path = self.entry_path(name)
        tmp = path.parent / (path.name + _next_tmp_suffix())
        try:
            if faults.fires("store.write") == "io":
                raise OSError("injected store.write io fault")
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except OSError:
            _count("store_write_failures")
            return False
        finally:
            # os.replace consumed the tmp on success; anything left
            # behind here is the failure-path residue.
            try:
                tmp.unlink()
            except OSError:
                pass
        _count("store_writes")
        max_bytes = self._resolve_max_bytes()
        if max_bytes is not None:
            self.gc(max_bytes)
        return True

    # -- cross-process build lock -----------------------------------------
    @contextmanager
    def build_lock(self, name: str) -> Iterator[bool]:
        """Advisory per-entry lock; yields whether it was acquired.

        Not acquiring (timeout, platform without fcntl, injected fault)
        only costs duplicated compilation — the atomic publish keeps
        the store consistent regardless of who wins.
        """
        if faults.fires("store.lock") == "timeout":
            _count("store_lock_timeouts")
            yield False
            return
        if not _HAVE_FCNTL:
            yield False
            return
        lock_path = self._locks_dir() / f"{name}.lock"
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(lock_path, "a+b")
        except OSError:
            yield False
            return
        acquired = False
        try:
            deadline = time.monotonic() + self._resolve_lock_timeout()
            delay = 0.001
            while True:
                try:
                    fcntl.flock(handle.fileno(),
                                fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        _count("store_lock_timeouts")
                        break
                    time.sleep(delay)
                    delay = min(delay * 2, 0.05)
            yield acquired
        finally:
            if acquired:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
            handle.close()

    # -- garbage collection ------------------------------------------------
    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries over the size cap.

        Also sweeps crash litter: temp files older than five minutes.
        Returns the number of entries evicted.
        """
        objects = self.objects_dir()
        if not objects.is_dir():
            return 0
        entries: List[Tuple[float, int, Path]] = []
        total = 0
        now = time.time()
        for path in objects.glob("*/*"):
            try:
                stat = path.stat()
            except OSError:
                continue
            if ".tmp-" in path.name:
                if now - stat.st_mtime > _TMP_MAX_AGE_S:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                continue
            if path.name.endswith(".entry"):
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if max_bytes is None:
            max_bytes = self._resolve_max_bytes()
        if max_bytes is None:
            return 0
        evicted = 0
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            _count("store_evictions")
        return evicted
