"""Error taxonomy of the compile/simulate service.

Every failure a client can observe maps to one structured error code,
and each code states its retry semantics explicitly — clients never
have to parse message text to decide what to do next:

=================  =========================================  =========
Code               Meaning                                    Retryable
=================  =========================================  =========
``BUSY``           admission queue full; the response carries yes
                   ``retry_after_s``
``TIMEOUT``        the request's deadline expired (queued or  no
                   mid-execution — execution is cancelled
                   cooperatively at the next stage boundary)
``WORKER_CRASH``   a worker died running the request and the  yes
                   requeue budget is exhausted
``SHUTTING_DOWN``  the server is draining; no new admissions  elsewhere
``BAD_REQUEST``    malformed spec (unknown kernel kind, bad   no
                   shapes, undecodable arrays)
``INTERNAL``       unexpected server-side failure             no
=================  =========================================  =========

On the wire an error response is ``{"status": "error", "code": ...,
"message": ..., "retry_after_s": ...}``; client-side each code raises
the matching exception below, all rooted at :class:`ServiceError`.
"""

from __future__ import annotations

from typing import Optional

BUSY = "BUSY"
TIMEOUT = "TIMEOUT"
WORKER_CRASH = "WORKER_CRASH"
SHUTTING_DOWN = "SHUTTING_DOWN"
BAD_REQUEST = "BAD_REQUEST"
INTERNAL = "INTERNAL"

#: Codes a client may retry against the *same* server (BUSY after the
#: advertised delay; WORKER_CRASH is surfaced only once the server's
#: own requeue budget is spent, so retrying re-enters the ladder).
RETRYABLE_CODES = frozenset({BUSY, WORKER_CRASH})


class ServiceError(RuntimeError):
    """Base of every structured service failure."""

    code = INTERNAL

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceBusy(ServiceError):
    """Admission queue full; retry after ``retry_after_s``."""

    code = BUSY


class ServiceTimeout(ServiceError):
    """The request deadline expired before a result was produced."""

    code = TIMEOUT


class WorkerCrashed(ServiceError):
    """The worker executing the request died; requeue budget spent."""

    code = WORKER_CRASH


class ServiceShuttingDown(ServiceError):
    """The server is draining and admits no new requests."""

    code = SHUTTING_DOWN


class BadRequest(ServiceError):
    """The request spec is malformed; retrying cannot help."""

    code = BAD_REQUEST


class InternalServiceError(ServiceError):
    """Unexpected server-side failure."""

    code = INTERNAL


class ProtocolError(RuntimeError):
    """The peer violated the length-prefixed JSON framing."""


_BY_CODE = {
    cls.code: cls
    for cls in (ServiceBusy, ServiceTimeout, WorkerCrashed,
                ServiceShuttingDown, BadRequest, InternalServiceError)
}


def error_from_code(code: str, message: str,
                    retry_after_s: Optional[float] = None) -> ServiceError:
    """Rebuild the typed exception for a wire error response."""
    cls = _BY_CODE.get(code, InternalServiceError)
    error = cls(message, retry_after_s=retry_after_s)
    if cls is InternalServiceError and code not in _BY_CODE:
        error.args = (f"[{code}] {message}",)
    return error
