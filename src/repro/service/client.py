"""Client library for the compile/simulate service.

:class:`ServiceClient` wraps the socket protocol in a synchronous API
and owns the client half of the robustness ladder:

* **Typed errors** — wire error codes become the matching
  :class:`~repro.service.errors.ServiceError` subclass.
* **Retries** — ``BUSY`` (after the server's advertised
  ``retry_after_s``), ``WORKER_CRASH``, and connection-level failures
  (resets, torn frames — including injected ``service.rpc:io`` faults)
  are retried up to ``max_attempts`` times.
* **Seeded backoff** — retry delays come from a
  :class:`BackoffSchedule`: deterministic per ``(seed, site)`` exactly
  like the fault streams in :mod:`repro.faults`, so chaos runs are
  reproducible end to end and tests can assert the exact schedule.
* **Idempotent request keys** — each submit carries a stable
  ``request_id`` across its retries; if the first attempt executed but
  the response was lost, the retry hits the server's idempotency cache
  instead of re-executing.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..retry import BackoffSchedule, retryable
from ..soc import PerfCounters
from . import errors, protocol

#: Transport-level failures where the request may not have executed:
#: always worth a retry (the idempotent request_id makes it safe).
_TRANSIENT_WIRE = (OSError, errors.ProtocolError)


class ServiceClient:
    """Synchronous client for one :class:`ServiceServer` address."""

    def __init__(self, address: str, seed: int = 0,
                 max_attempts: int = 5,
                 connect_timeout_s: float = 5.0,
                 response_timeout_s: Optional[float] = 60.0,
                 sleep=time.sleep) -> None:
        self.address = address
        self.seed = seed
        self.max_attempts = max(1, max_attempts)
        self.connect_timeout_s = connect_timeout_s
        #: Per-attempt cap on waiting for a response frame.  A lost
        #: response (e.g. an injected ``service.rpc:io`` fault on the
        #: server's send) would otherwise block recv() forever.  The
        #: timed-out retry resends the same ``request_id``: if the
        #: request is still executing it coalesces onto it, if it
        #: completed it hits the idempotency cache — never a second
        #: execution.
        self.response_timeout_s = response_timeout_s
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None

    # -- connection management --------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout_s)
            sock.connect(self.address)
            sock.settimeout(None)
            self._sock = sock
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- RPC core ----------------------------------------------------------
    def _roundtrip(self, message: dict,
                   timeout_s: Optional[float] = None) -> dict:
        """One request/response exchange; raises ``OSError`` (including
        ``socket.timeout``) or :class:`~repro.service.errors.ProtocolError`
        on wire failure."""
        sock = self._connect()
        try:
            sock.settimeout(timeout_s if timeout_s is not None
                            else self.response_timeout_s)
            protocol.send_message(sock, message)
            reply = protocol.recv_message(sock)
        except (OSError, errors.ProtocolError):
            self._drop_connection()
            raise
        else:
            sock.settimeout(None)
        if reply is None:
            self._drop_connection()
            raise errors.ProtocolError("server closed the connection")
        return reply

    def _call(self, message: dict, site: str) -> dict:
        """Roundtrip with the retry ladder (see module docstring)."""
        backoff = BackoffSchedule(self.seed, site)
        last_error: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            try:
                reply = self._roundtrip(message)
            except _TRANSIENT_WIRE as exc:
                last_error = exc
                if attempt + 1 < self.max_attempts:
                    self._sleep(backoff.next_delay())
                continue
            if reply.get("status") == "ok":
                return reply
            code = reply.get("code", errors.INTERNAL)
            error = errors.error_from_code(
                code, reply.get("message", ""),
                reply.get("retry_after_s"))
            if not retryable(error, code=code,
                             retryable_codes=errors.RETRYABLE_CODES) \
                    or attempt + 1 >= self.max_attempts:
                raise error
            last_error = error
            delay = backoff.next_delay()
            if error.retry_after_s is not None:
                # BUSY: honor the server's estimate, but keep the
                # seeded jittered component so herds still spread out.
                delay += error.retry_after_s
            self._sleep(delay)
        if isinstance(last_error, errors.ServiceError):
            raise last_error
        raise errors.InternalServiceError(
            f"no response after {self.max_attempts} attempts: "
            f"{last_error!r}")

    # -- public API --------------------------------------------------------
    def submit(self, spec: Dict[str, Any],
               deadline_s: Optional[float] = None,
               request_id: Optional[str] = None) -> dict:
        """Submit one raw spec; returns the full ``ok`` response dict.

        The ``request_id`` is generated once and reused across retries
        so a lost-response retry is idempotent on the server.
        """
        message: Dict[str, Any] = {
            "op": "submit",
            "request_id": request_id or uuid.uuid4().hex,
            "spec": spec,
        }
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        return self._call(message, site="submit")

    def matmul(self, a: np.ndarray, b: np.ndarray, *, size: int,
               version: int, flow: str = "Ns",
               permutation: Optional[Tuple[str, ...]] = None,
               specialized: bool = True, cpu_tiling: bool = True,
               accel_size: Optional[Tuple[int, int, int]] = None,
               deadline_s: Optional[float] = None,
               ) -> Tuple[PerfCounters, np.ndarray]:
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise errors.BadRequest(
                f"matmul shapes {a.shape} x {b.shape} do not chain")
        spec: Dict[str, Any] = {
            "kind": "matmul", "m": int(m), "n": int(n), "k": int(k),
            "size": size, "version": version, "flow": flow,
            "specialized": specialized, "cpu_tiling": cpu_tiling,
            "inputs": [a, b],
        }
        if permutation is not None:
            spec["permutation"] = list(permutation)
        if accel_size is not None:
            spec["accel_size"] = list(accel_size)
        reply = self.submit(spec, deadline_s=deadline_s)
        return reply["counters"], reply["output"]

    def conv(self, image: np.ndarray, weights: np.ndarray, *,
             stride: int = 1, specialized: bool = True,
             max_slice: Optional[int] = None,
             deadline_s: Optional[float] = None,
             ) -> Tuple[PerfCounters, np.ndarray]:
        batch, in_ch, in_hw, in_hw2 = image.shape
        out_ch, in_ch2, f_hw, f_hw2 = weights.shape
        if in_hw != in_hw2 or f_hw != f_hw2 or in_ch != in_ch2:
            raise errors.BadRequest(
                f"conv shapes {image.shape} x {weights.shape} "
                "do not chain")
        spec: Dict[str, Any] = {
            "kind": "conv", "batch": int(batch), "in_ch": int(in_ch),
            "in_hw": int(in_hw), "out_ch": int(out_ch),
            "f_hw": int(f_hw), "stride": stride,
            "specialized": specialized,
            "inputs": [image, weights],
        }
        if max_slice is not None:
            spec["max_slice"] = max_slice
        reply = self.submit(spec, deadline_s=deadline_s)
        return reply["counters"], reply["output"]

    def warmup(self, specs: Sequence[Dict[str, Any]],
               request_id: Optional[str] = None) -> list:
        """Prebuild the cold-path artifacts for ``specs`` on the server.

        ``specs`` use the same vocabulary as :meth:`submit` minus the
        ``inputs`` (the server synthesizes deterministic placeholders —
        plans are keyed by shape and configuration, never input
        values).  Returns one ``{"ok": ...}`` summary per spec; a
        failed spec reports its error there instead of failing the
        whole warmup.  Issue this once at deploy time so first-request
        tails hit a warm store.
        """
        message: Dict[str, Any] = {
            "op": "warmup",
            "request_id": request_id or uuid.uuid4().hex,
            "specs": list(specs),
        }
        return self._call(message, site="warmup")["results"]

    def health(self) -> dict:
        return self._call({"op": "health"}, site="health")["health"]

    def stats(self) -> dict:
        reply = self._call({"op": "stats"}, site="stats")
        return {"health": reply["health"],
                "diagnostics": reply["diagnostics"]}
