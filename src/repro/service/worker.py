"""Worker-side execution of compile/simulate requests.

:func:`run_request` is the *only* execution path: the server's pool
workers call it, and "direct in-process execution" (the stress tests'
bit-identity baseline) is literally the same function — so a result
served over the socket can only differ from a local run if the wire
codec breaks, which the protocol tests pin.

Each worker process runs :func:`worker_main` over one duplex pipe:
``run`` jobs carry a decoded spec plus per-request degradation flags
(store / native seams pre-disabled when the server's circuit breakers
are open), replies carry the result plus a diagnostics *delta* since
the previous report (the parent merges deltas exactly as
``run_model_jobs`` does, so ``diagnostics()`` keeps counting work done
in service workers).  A ``shutdown`` job yields a final ``bye`` reply
and a clean exit — that is the graceful-drain handshake.

The ``service.worker:crash`` fault site fires at the top of each job
and terminates the process with ``os._exit`` — the hardest failure a
worker can produce short of SIGKILL — so the parent's crash-detection,
deterministic-restart, and requeue ladder is chaos-testable.
"""

from __future__ import annotations

import contextlib
import os
import time
import traceback
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import faults
from ..soc import PerfCounters, make_pynq_z2
from . import errors

#: Exit code of an injected worker crash (tests assert on it).
CRASH_EXIT_CODE = 17


class DeadlineExceeded(errors.ServiceTimeout):
    """Cooperative cancellation: the request's deadline passed."""


def _check_deadline(deadline: Optional[float], stage: str) -> None:
    """Cancellation checkpoint between pipeline stages.

    Deadlines are absolute wall-clock (``time.time()``) so client,
    server, and worker — separate processes — agree on them.
    """
    if deadline is not None and time.time() >= deadline:
        raise DeadlineExceeded(
            f"deadline expired before {stage} (cooperative cancellation)"
        )


def _require(spec: Dict[str, Any], name: str, kind=int):
    value = spec.get(name)
    if isinstance(value, bool) or not isinstance(value, kind):
        raise errors.BadRequest(
            f"spec field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _input_arrays(spec: Dict[str, Any], shapes, dtype) -> list:
    arrays = spec.get("inputs")
    if not isinstance(arrays, (list, tuple)) or len(arrays) != len(shapes):
        raise errors.BadRequest(
            f"spec needs exactly {len(shapes)} input arrays"
        )
    checked = []
    for index, (array, shape) in enumerate(zip(arrays, shapes)):
        if not isinstance(array, np.ndarray):
            raise errors.BadRequest(f"input {index} is not an array")
        if tuple(array.shape) != tuple(shape):
            raise errors.BadRequest(
                f"input {index} has shape {tuple(array.shape)}, "
                f"expected {tuple(shape)}"
            )
        checked.append(np.ascontiguousarray(array.astype(dtype, copy=False)))
    return checked


def run_request(spec: Dict[str, Any],
                deadline: Optional[float] = None
                ) -> Tuple[PerfCounters, np.ndarray]:
    """Execute one request spec; returns ``(counters, output)``.

    ``spec`` is the decoded request: ``kind`` (``"matmul"`` /
    ``"conv"``), the kernel shape, the accelerator configuration
    (``version``/``size``/``flow``/``accel_size``), the lowering knobs
    (``permutation``/``cpu_tiling``/``specialized``), and ``inputs``.
    A fresh board is built per request, so results are deterministic
    and independent of whatever the worker ran before — the property
    the bit-identity acceptance test leans on.
    """
    from ..experiments.harness import (
        compile_conv_kernel,
        compile_matmul_kernel,
    )

    kind = spec.get("kind")
    _check_deadline(deadline, "compile")
    if kind == "matmul":
        m = _require(spec, "m")
        n = _require(spec, "n")
        k = _require(spec, "k")
        permutation = spec.get("permutation")
        hw, kernel = compile_matmul_kernel(
            m, n, k, _require(spec, "size"), _require(spec, "version"),
            _require(spec, "flow", str),
            specialized=bool(spec.get("specialized", True)),
            cpu_tiling=bool(spec.get("cpu_tiling", True)),
            accel_size=tuple(spec["accel_size"])
            if spec.get("accel_size") else None,
            permutation=tuple(permutation) if permutation else None,
        )
        a, b = _input_arrays(spec, [(m, k), (k, n)], np.int32)
        output = np.zeros((m, n), np.int32)
        arrays = (a, b, output)
    elif kind == "conv":
        batch = _require(spec, "batch")
        in_ch = _require(spec, "in_ch")
        in_hw = _require(spec, "in_hw")
        out_ch = _require(spec, "out_ch")
        f_hw = _require(spec, "f_hw")
        stride = int(spec.get("stride", 1))
        if f_hw > in_hw or stride < 1:
            raise errors.BadRequest("conv filter/stride out of range")
        out_hw = (in_hw - f_hw) // stride + 1
        hw, kernel = compile_conv_kernel(
            batch, in_ch, in_hw, out_ch, f_hw, stride,
            specialized=bool(spec.get("specialized", True)),
            max_slice=spec.get("max_slice"),
        )
        image, weights = _input_arrays(
            spec,
            [(batch, in_ch, in_hw, in_hw), (out_ch, in_ch, f_hw, f_hw)],
            np.int32,
        )
        output = np.zeros((batch, out_ch, out_hw, out_hw), np.int32)
        arrays = (image, weights, output)
    else:
        raise errors.BadRequest(f"unknown kernel kind {kind!r}")

    _check_deadline(deadline, "simulation")
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    counters = kernel.run(board, *arrays)
    return counters, output


# -- the worker process -----------------------------------------------------

@contextlib.contextmanager
def _seam_overrides(disable_store: bool, disable_native: bool):
    """Apply the server's breaker verdicts for one request.

    An open store breaker routes the request through the memory-only
    compile path (``suspend_disk_store``); an open native breaker
    forces the pure-Python kernels (``suspend_native``).  Both are
    existing degradation rungs — bit-identical, just different latency.
    """
    from ..compiler import suspend_disk_store
    from ..soc._native import suspend_native

    with contextlib.ExitStack() as stack:
        if disable_store:
            stack.enter_context(suspend_disk_store())
        if disable_native:
            stack.enter_context(suspend_native())
        yield


def _store_failures(store_counters: Dict[str, int]) -> int:
    return store_counters.get("store_io_errors", 0) \
        + store_counters.get("store_write_failures", 0)


def worker_main(conn, worker_index: int) -> None:
    """Job loop of one pool worker (runs in a forked child)."""
    from ..execution.model_plan import snapshot_diagnostics
    from ..soc._native import native_status

    last_snapshot = snapshot_diagnostics()
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing left to report to
        op = job.get("op")
        if op == "shutdown":
            from ..execution.model_plan import _diagnostics_delta

            snapshot = snapshot_diagnostics()
            try:
                conn.send({"op": "bye", "worker": worker_index,
                           "delta": _diagnostics_delta(snapshot,
                                                       last_snapshot)})
            except (BrokenPipeError, OSError):
                pass
            break
        if op != "run":
            continue
        if faults.fires("service.worker") == "crash":
            # The chaos profile's hard worker death: skip every Python
            # cleanup layer so the parent sees exactly what a segfault
            # or OOM kill would produce.
            os._exit(CRASH_EXIT_CODE)
        reply: Dict[str, Any] = {"op": "result", "worker": worker_index,
                                 "ok": False}
        store_before = None
        try:
            from ..store import STORE_COUNTERS

            store_before = dict(STORE_COUNTERS)
            with _seam_overrides(job.get("disable_store", False),
                                 job.get("disable_native", False)):
                counters, output = run_request(job["spec"],
                                               job.get("deadline"))
            reply.update(ok=True, counters=counters, output=output)
        except errors.ServiceError as exc:
            reply.update(code=exc.code, message=str(exc))
        except Exception:
            reply.update(code=errors.INTERNAL,
                         message=traceback.format_exc(limit=8))
        # Seam evidence for the breakers: only meaningful for seams
        # that were actually enabled this request.
        if store_before is not None:
            from ..store import STORE_COUNTERS

            reply["store_failures"] = \
                _store_failures(STORE_COUNTERS) \
                - _store_failures(store_before)
        reply["native_ok"] = native_status()["status"] not in (
            "compile-failed", "load-failed", "fault-injected",
        )
        from ..execution.model_plan import _diagnostics_delta

        snapshot = snapshot_diagnostics()
        reply["delta"] = _diagnostics_delta(snapshot, last_snapshot)
        last_snapshot = snapshot
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
