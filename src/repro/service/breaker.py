"""Circuit breakers for the service's two fallible infrastructure seams.

The execution pipeline already degrades gracefully *per call* (a store
I/O error falls back to a redundant compile, a native-compile failure
to the Python kernels).  A breaker adds the cross-request memory real
serving systems need: after ``threshold`` consecutive failures of a
seam the breaker *opens* and subsequent requests run with that seam
pre-disabled — the known-good degradation rung — instead of paying the
failure latency every time.  After ``cooldown_s`` the breaker goes
*half-open* and exactly one probe request re-enables the seam; its
outcome closes the breaker or re-opens it for another cooldown.

Because every rung is bit-identical by the PR 6 guarantees, a breaker
can only ever change *latency*, never results — which is what makes it
safe to trip on probabilistic evidence.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One seam's breaker; thread-safe, monotonic-clock based."""

    def __init__(self, name: str, threshold: int = 3,
                 cooldown_s: float = 1.0) -> None:
        self.name = name
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trips = 0

    # -- dispatch-side ----------------------------------------------------
    def allow(self) -> Dict[str, bool]:
        """Decide one request's use of the seam.

        Returns ``{"enabled": ..., "probe": ...}``: ``enabled`` is
        whether the request should use the seam (False = run on the
        degradation rung), ``probe`` marks the single half-open trial
        request whose outcome will close or re-open the breaker.
        """
        with self._lock:
            if self._state == CLOSED:
                return {"enabled": True, "probe": False}
            if self._state == OPEN and \
                    time.monotonic() - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                self._probe_in_flight = False
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return {"enabled": True, "probe": True}
            return {"enabled": False, "probe": False}

    # -- outcome-side -----------------------------------------------------
    def record(self, ok: bool, probe: bool = False) -> None:
        """Feed one request's seam outcome back into the state machine.

        Outcomes of requests that ran with the seam disabled must not
        be reported — they carry no evidence about the seam.
        """
        with self._lock:
            if probe:
                self._probe_in_flight = False
                if ok:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                else:
                    self._state = OPEN
                    self._opened_at = time.monotonic()
                    self._trips += 1
                return
            if ok:
                self._consecutive_failures = 0
                return
            self._consecutive_failures += 1
            if self._state == CLOSED \
                    and self._consecutive_failures >= self.threshold:
                self._state = OPEN
                self._opened_at = time.monotonic()
                self._trips += 1

    # -- observability ----------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            if self._state == OPEN and \
                    time.monotonic() - self._opened_at >= self.cooldown_s:
                return HALF_OPEN
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }
