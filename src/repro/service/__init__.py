"""Multi-tenant compile/simulate service (server + client).

The service turns the in-process experiment pipeline into a long-lived
shared resource: one :class:`~repro.service.server.ServiceServer`
owns a pool of forked workers sharing the kernel store, and any number
of :class:`~repro.service.client.ServiceClient` processes submit
matmul/conv requests over a Unix socket, getting back ``PerfCounters``
and outputs bit-identical to a local run.  See the submodule
docstrings for the robustness ladder each layer contributes.

Run a standalone server with ``python -m repro.service``.
"""

from .breaker import CircuitBreaker
from .client import BackoffSchedule, ServiceClient
from .errors import (
    BadRequest,
    InternalServiceError,
    ProtocolError,
    RETRYABLE_CODES,
    ServiceBusy,
    ServiceError,
    ServiceShuttingDown,
    ServiceTimeout,
    WorkerCrashed,
)
from .server import (
    SERVICE_COUNTERS,
    ServiceServer,
    reset_service_counters,
    service_counters,
)
from .worker import run_request

__all__ = [
    "BackoffSchedule",
    "BadRequest",
    "CircuitBreaker",
    "InternalServiceError",
    "ProtocolError",
    "RETRYABLE_CODES",
    "SERVICE_COUNTERS",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceShuttingDown",
    "ServiceTimeout",
    "WorkerCrashed",
    "reset_service_counters",
    "run_request",
    "service_counters",
]
