"""Length-prefixed JSON wire protocol of the compile/simulate service.

Frames are ``<4-byte big-endian length><UTF-8 JSON body>``.  JSON keeps
the protocol stdlib-only and language-agnostic; the two non-JSON value
kinds a request/response needs ride in tagged envelopes:

* ``{"__nd__": {"dtype": ..., "shape": [...], "data": <base64>}}`` —
  a C-contiguous :class:`numpy.ndarray` (raw little-endian bytes).
* ``{"__perf__": {field: value, ...}}`` — a
  :class:`~repro.soc.perf.PerfCounters` bundle.  Python's JSON float
  serialization is ``repr``-based and round-trips exactly, so counters
  survive the wire bit-identical — the service's acceptance bar.

There is no pickle anywhere on the socket (mirroring the kernel-store
container): a hostile peer can at worst produce a
:class:`~repro.service.errors.ProtocolError` or a ``BAD_REQUEST``.

The ``service.rpc:io`` fault site (:mod:`repro.faults`) fires inside
:func:`send_message`/:func:`recv_message` and turns into the exact
failure the retry ladder absorbs: a connection reset mid-frame.
"""

from __future__ import annotations

import base64
import hashlib
import json
import socket
import struct
from typing import Any, Optional, Tuple

import numpy as np

from .. import faults
from ..soc import PerfCounters
from .errors import ProtocolError

#: Frame header: one unsigned 32-bit big-endian body length.
_HEADER = struct.Struct(">I")

#: Upper bound on a frame body; anything larger is a protocol
#: violation, not a legitimate kernel request.
MAX_FRAME_BYTES = 256 * 1024 * 1024


# -- value codec ------------------------------------------------------------

def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {"__nd__": {
            "dtype": data.dtype.str,
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }}
    if isinstance(value, PerfCounters):
        return {"__perf__": {
            name: _encode_value(field)
            for name, field in vars(value).items()
        }}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__nd__"}:
            spec = value["__nd__"]
            try:
                dtype = np.dtype(spec["dtype"])
                if dtype.hasobject:
                    raise ProtocolError("object-dtype array on the wire")
                raw = base64.b64decode(spec["data"])
                array = np.frombuffer(raw, dtype=dtype)
                return array.reshape([int(n) for n in spec["shape"]]).copy()
            except ProtocolError:
                raise
            except Exception as exc:
                raise ProtocolError(f"bad array envelope: {exc}") from None
        if set(value) == {"__perf__"}:
            counters = PerfCounters()
            fields = vars(counters)
            for name, item in value["__perf__"].items():
                if name not in fields:
                    raise ProtocolError(
                        f"unknown PerfCounters field {name!r}"
                    )
                setattr(counters, name, _decode_value(item))
            return counters
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


#: Public names for the JSON value codec.  The tuning journal persists
#: PerfCounters through the same envelopes the wire uses: Python's JSON
#: float serialization is repr-based and round-trips exactly, so a
#: result replayed from the journal is bit-identical to the freshly
#: computed one — the property the resume acceptance test pins.
encode_value = _encode_value
decode_value = _decode_value


def encode_message(message: dict) -> bytes:
    body = json.dumps(_encode_value(message),
                      separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds cap")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame body is not a JSON object")
    return _decode_value(message)


# -- socket framing ---------------------------------------------------------

def _injected_io() -> None:
    if faults.fires("service.rpc") == "io":
        raise ConnectionResetError("injected service.rpc io fault")


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one frame; raises ``OSError`` on a broken connection."""
    _injected_io()
    sock.sendall(encode_message(message))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None  # orderly EOF
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on orderly EOF before a header.

    EOF *inside* a frame is a :class:`ProtocolError` (torn write), and
    injected ``service.rpc:io`` faults surface as connection resets —
    both land on the client's retry rung.
    """
    _injected_io()
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced {length}-byte frame")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


# -- request identity -------------------------------------------------------

def canonical_spec_digest(spec: dict) -> str:
    """Deterministic digest of a request spec, inputs included.

    Used for single-flight coalescing: two in-flight requests with
    equal digests are the same deterministic computation, so one
    execution serves both.  Array data is hashed raw (dtype/shape
    prefixed) rather than base64-encoded for speed.
    """
    hasher = hashlib.sha256()

    def feed(value: Any) -> None:
        if isinstance(value, np.ndarray):
            data = np.ascontiguousarray(value)
            hasher.update(f"nd:{data.dtype.str}:{data.shape}".encode())
            hasher.update(data.tobytes())
        elif isinstance(value, dict):
            hasher.update(b"{")
            for key in sorted(value):
                hasher.update(repr(key).encode())
                feed(value[key])
            hasher.update(b"}")
        elif isinstance(value, (list, tuple)):
            hasher.update(b"[")
            for item in value:
                feed(item)
            hasher.update(b"]")
        else:
            hasher.update(repr(value).encode())

    feed(spec)
    return hasher.hexdigest()
