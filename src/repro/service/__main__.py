"""Standalone service runner: ``python -m repro.service``.

Starts a :class:`~repro.service.server.ServiceServer` on the given
(or a fresh) socket path, prints a one-line JSON readiness record to
stdout (``{"socket": ...}``) so harnesses can wait for it, then blocks
until SIGTERM/SIGINT triggers a graceful drain.  The drain summary
(final counters, breaker states, merged diagnostics) is printed as a
JSON object on exit — the CI smoke leg asserts on it.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a standalone compile/simulate service.",
    )
    parser.add_argument("--socket", default=None,
                        help="Unix socket path (default: fresh tempdir)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: "
                             "REPRO_SERVICE_WORKERS)")
    parser.add_argument("--queue-max", type=int, default=None,
                        help="admission queue bound (default: "
                             "REPRO_SERVICE_QUEUE_MAX)")
    parser.add_argument("--timeout-s", type=float, default=None,
                        help="default request deadline (default: "
                             "REPRO_SERVICE_TIMEOUT_S)")
    args = parser.parse_args(argv)

    from .server import ServiceServer

    server = ServiceServer(socket_path=args.socket, workers=args.workers,
                           queue_max=args.queue_max,
                           timeout_s=args.timeout_s).start()
    print(json.dumps({"socket": server.address,
                      "workers": server.workers}), flush=True)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()

    summary = server.drain()
    from ..execution import diagnostics

    summary["diagnostics"] = diagnostics()
    print(json.dumps(summary, default=str), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
