"""The multi-tenant compile/simulate server.

One long-lived process owns a listener socket, a bounded admission
queue, and a pool of forked worker processes sharing the on-disk
:class:`~repro.store.KernelStore` (``REPRO_KERNEL_CACHE_DIR``).
Clients submit kernel requests (:mod:`repro.service.protocol`) and get
back ``PerfCounters`` + outputs bit-identical to a local run.

The robustness ladder, top to bottom:

* **Deadlines** — every request carries one (``deadline_s``, default
  ``REPRO_SERVICE_TIMEOUT_S``).  Expired-while-queued requests are shed
  without touching a worker; expired-while-executing requests get a
  ``TIMEOUT`` response immediately while the worker cancels
  cooperatively at its next stage boundary.  A worker that blows
  through the cooperative grace window is killed and restarted.
* **Backpressure** — the admission queue is bounded
  (``REPRO_SERVICE_QUEUE_MAX``); an overflowing submit is answered
  with a structured ``BUSY`` + ``retry_after_s`` instead of stalling
  the socket, so load sheds at the edge.
* **Single-flight coalescing** — identical in-flight requests (same
  spec digest, inputs included) execute once; followers receive the
  leader's response.  The computation is deterministic, so this is
  observationally identical and strictly cheaper.
* **Idempotency** — completed ``request_id``s are remembered (LRU);
  a client retrying because a *response* was lost gets the cached
  result instead of a re-execution.
* **Circuit breakers** — consecutive store-I/O or native-compile
  failures open a breaker (:mod:`repro.service.breaker`); requests
  then run with that seam pre-disabled (memory-only compile / Python
  kernels — PR 6's bit-identical rungs) until a half-open probe heals
  it.
* **Crash recovery** — a worker death (including injected
  ``service.worker:crash`` faults) is detected on its pipe, the worker
  is restarted deterministically, and the request is requeued at the
  front of the queue; past the requeue budget the client gets
  ``WORKER_CRASH``.
* **Graceful drain** — :meth:`ServiceServer.drain` (SIGTERM in the
  ``python -m repro.service`` runner) stops admissions, finishes every
  in-flight request, collects each worker's final diagnostics delta,
  and merges them into :func:`repro.execution.diagnostics` exactly as
  ``run_model_jobs`` merges pool workers.

``health``/``stats`` RPCs expose queue depth, breaker states, fault
counters, and the full diagnostics bundle for observability.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import socket
import tempfile
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from .. import faults
from ..envutil import env_float, env_int
from ..execution.model_plan import merge_worker_diagnostics
from . import errors, protocol
from .breaker import CircuitBreaker
from .worker import run_request, worker_main

#: Env knobs (see README switch matrix).
WORKERS_ENV = "REPRO_SERVICE_WORKERS"
QUEUE_MAX_ENV = "REPRO_SERVICE_QUEUE_MAX"
TIMEOUT_ENV = "REPRO_SERVICE_TIMEOUT_S"
BREAKER_THRESHOLD_ENV = "REPRO_SERVICE_BREAKER_THRESHOLD"
BREAKER_COOLDOWN_ENV = "REPRO_SERVICE_BREAKER_COOLDOWN_S"

_DEFAULT_QUEUE_MAX = 32
_DEFAULT_TIMEOUT_S = 60.0
_DEFAULT_BREAKER_THRESHOLD = 3
_DEFAULT_BREAKER_COOLDOWN_S = 1.0

#: Grace period for cooperative cancellation: how long after a
#: deadline expiry the dispatcher waits for the worker to abort at a
#: stage boundary before killing and restarting it.
_KILL_GRACE_S = 10.0

#: Times a request is requeued after worker crashes before the client
#: sees WORKER_CRASH (so a single unlucky crash never fails a request).
_MAX_ATTEMPTS = 3

#: Completed request_id -> response LRU (idempotent retries).
_IDEMPOTENCY_LRU = 64

#: Process-wide service event counters, surfaced via
#: ``repro.execution.diagnostics()["service"]`` and the health RPC.
SERVICE_COUNTERS: Dict[str, int] = {
    "service_requests": 0,        # submits admitted into the queue
    "service_ok": 0,              # successful responses
    "service_errors": 0,          # error responses (all codes)
    "service_coalesced": 0,       # submits served by an in-flight leader
    "service_idempotent_hits": 0, # submits served from the response LRU
    "service_shed_busy": 0,       # submits answered BUSY at admission
    "service_timeouts": 0,        # deadline expiries (queued + executing)
    "service_worker_crashes": 0,  # worker deaths observed
    "service_requeues": 0,        # requests requeued after a crash
    "service_worker_restarts": 0, # workers restarted (crash or hang)
    "service_workers_merged": 0,  # drain-time worker deltas merged
    "service_rpc_errors": 0,      # connection-level failures observed
    "service_warmups": 0,         # warmup RPCs accepted (plan prebuilds)
}

_COUNTER_LOCK = threading.Lock()


def _count(key: str, amount: int = 1) -> None:
    with _COUNTER_LOCK:
        SERVICE_COUNTERS[key] += amount


def service_counters() -> Dict[str, int]:
    with _COUNTER_LOCK:
        return dict(SERVICE_COUNTERS)


def reset_service_counters() -> None:
    with _COUNTER_LOCK:
        for key in SERVICE_COUNTERS:
            SERVICE_COUNTERS[key] = 0


class _Connection:
    """One accepted client socket plus its write lock.

    Reader thread and dispatcher threads both write responses; the
    lock keeps frames whole.
    """

    __slots__ = ("sock", "lock")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()

    def respond(self, message: dict) -> bool:
        try:
            with self.lock:
                protocol.send_message(self.sock, message)
            return True
        except (OSError, errors.ProtocolError):
            _count("service_rpc_errors")
            return False


class _Pending:
    """One admitted request: the leader plus coalesced followers."""

    __slots__ = ("spec", "digest", "deadline", "attempts", "waiters",
                 "responded")

    def __init__(self, spec: dict, digest: str, deadline: float) -> None:
        self.spec = spec
        self.digest = digest
        self.deadline = deadline
        self.attempts = 0
        #: [(connection, request_id)] — leader first.
        self.waiters: List[Tuple[_Connection, str]] = []
        self.responded = False


class _WorkerHandle:
    """One forked pool worker and its duplex pipe."""

    def __init__(self, index: int, context) -> None:
        self.index = index
        self._context = context
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=worker_main, args=(child_conn, index), daemon=True,
        )
        self.process.start()
        child_conn.close()

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):
            pass
        self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass


class ServiceServer:
    """The long-lived compile/simulate service (see module docstring).

    Construct, :meth:`start`, hand :attr:`address` to clients, and
    :meth:`drain` when done.  All knobs fall back to ``REPRO_SERVICE_*``
    environment variables, then to defaults.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 workers: Optional[int] = None,
                 queue_max: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 breaker_threshold: Optional[int] = None,
                 breaker_cooldown_s: Optional[float] = None) -> None:
        self.socket_path = socket_path
        self.workers = workers if workers is not None else env_int(
            WORKERS_ENV, max(1, min(4, os.cpu_count() or 1)), minimum=1)
        self.queue_max = queue_max if queue_max is not None else env_int(
            QUEUE_MAX_ENV, _DEFAULT_QUEUE_MAX, minimum=1)
        self.timeout_s = timeout_s if timeout_s is not None else env_float(
            TIMEOUT_ENV, _DEFAULT_TIMEOUT_S, minimum=0.001)
        threshold = breaker_threshold if breaker_threshold is not None \
            else env_int(BREAKER_THRESHOLD_ENV,
                         _DEFAULT_BREAKER_THRESHOLD, minimum=1)
        cooldown = breaker_cooldown_s if breaker_cooldown_s is not None \
            else env_float(BREAKER_COOLDOWN_ENV,
                           _DEFAULT_BREAKER_COOLDOWN_S, minimum=0.0)
        self.store_breaker = CircuitBreaker("store", threshold, cooldown)
        self.native_breaker = CircuitBreaker("native", threshold, cooldown)

        self._cond = threading.Condition()
        self._queue: "collections.deque[_Pending]" = collections.deque()
        self._inflight: Dict[str, _Pending] = {}
        self._completed: "collections.OrderedDict[str, dict]" = \
            collections.OrderedDict()
        self._executing = 0
        self._draining = False
        self._stopping = False
        self._stopped = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._handles: List[Optional[_WorkerHandle]] = []
        self._tmpdir: Optional[str] = None
        self._fork_ok = \
            "fork" in multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context("fork") \
            if self._fork_ok else None

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> str:
        if self.socket_path is None:
            raise RuntimeError("server not started")
        return self.socket_path

    def start(self) -> "ServiceServer":
        if self.socket_path is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-service-")
            self.socket_path = os.path.join(self._tmpdir, "service.sock")
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(128)
        if self._fork_ok:
            # Prewarm the native fast path once: forked workers inherit
            # the compiled library instead of re-probing the C compiler
            # (same trick as run_model_jobs).
            from ..soc._native import native_lib

            native_lib()
            self._handles = [_WorkerHandle(i, self._context)
                             for i in range(self.workers)]
        else:
            self._handles = [None] * self.workers
        for index in range(self.workers):
            thread = threading.Thread(target=self._dispatch_loop,
                                      args=(index,), daemon=True,
                                      name=f"service-dispatch-{index}")
            thread.start()
            self._threads.append(thread)
        acceptor = threading.Thread(target=self._accept_loop, daemon=True,
                                    name="service-accept")
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def drain(self, timeout_s: float = 60.0) -> dict:
        """Graceful shutdown: finish in-flight work, merge worker deltas.

        Returns a summary dict (final service counters + queue state).
        Idempotent; safe to call from a signal handler's main thread.
        """
        with self._cond:
            already = self._stopped
            self._draining = True
            self._cond.notify_all()
        self._close_listener()
        if already:
            return self._summary()
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while (self._queue or self._executing) \
                    and time.monotonic() < deadline:
                self._cond.wait(timeout=0.1)
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5)
        # Dispatchers are parked; the pipes are ours now.  The shutdown
        # handshake collects each worker's final diagnostics delta.
        for handle in self._handles:
            if handle is None:
                continue
            delta = None
            try:
                handle.conn.send({"op": "shutdown"})
                if handle.conn.poll(5):
                    reply = handle.conn.recv()
                    if isinstance(reply, dict) and reply.get("op") == "bye":
                        delta = reply.get("delta")
            except (OSError, EOFError, BrokenPipeError):
                pass
            if delta:
                merge_worker_diagnostics(delta, count_worker=True)
                _count("service_workers_merged")
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.kill()
            else:
                try:
                    handle.conn.close()
                except OSError:
                    pass
        with self._cond:
            self._stopped = True
        return self._summary()

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def _summary(self) -> dict:
        with self._cond:
            queued, executing = len(self._queue), self._executing
        return {
            "counters": service_counters(),
            "queued": queued,
            "executing": executing,
            "breakers": {"store": self.store_breaker.snapshot(),
                         "native": self.native_breaker.snapshot()},
        }

    # -- accept / read -----------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: draining
            connection = _Connection(sock)
            thread = threading.Thread(target=self._read_loop,
                                      args=(connection,), daemon=True)
            thread.start()

    def _read_loop(self, connection: _Connection) -> None:
        try:
            while True:
                try:
                    message = protocol.recv_message(connection.sock)
                except (errors.ProtocolError, OSError):
                    _count("service_rpc_errors")
                    return
                if message is None:
                    return
                self._handle_message(connection, message)
        finally:
            try:
                connection.sock.close()
            except OSError:
                pass

    def _handle_message(self, connection: _Connection,
                        message: dict) -> None:
        op = message.get("op")
        request_id = message.get("request_id") or uuid.uuid4().hex
        if op == "health":
            connection.respond({"request_id": request_id, "status": "ok",
                                "health": self.health()})
        elif op == "stats":
            from ..execution import diagnostics

            connection.respond({"request_id": request_id, "status": "ok",
                                "health": self.health(),
                                "diagnostics": diagnostics()})
        elif op == "submit":
            self._handle_submit(connection, request_id, message)
        elif op == "warmup":
            self._handle_warmup(connection, request_id, message)
        else:
            self._respond_error(connection, request_id,
                                errors.BAD_REQUEST,
                                f"unknown op {op!r}")

    # -- warmup ------------------------------------------------------------
    def _handle_warmup(self, connection: _Connection, request_id: str,
                       message: dict) -> None:
        """Prebuild the cold-path artifacts for a list of specs.

        Fans the specs onto the plan-prebuild pool
        (:func:`repro.execution.prebuild.prebuild_plans`); each build
        persists its kernel/trace/MetricsPlan into the shared store, so
        later ``submit`` requests for the same shapes are warm hits in
        the request workers.  Runs inline on this connection's reader
        thread — it blocks only this client, never the dispatchers —
        and per-spec failures come back as data, not an error reply.
        """
        from ..execution.prebuild import prebuild_plans

        specs = message.get("specs")
        if not isinstance(specs, (list, tuple)) \
                or not all(isinstance(spec, dict) for spec in specs):
            self._respond_error(connection, request_id,
                                errors.BAD_REQUEST,
                                "warmup needs a list of spec dicts")
            return
        with self._cond:
            draining = self._draining
        if draining:
            self._respond_error(connection, request_id,
                                errors.SHUTTING_DOWN, "draining")
            return
        _count("service_warmups")
        results = prebuild_plans(specs)
        connection.respond({"request_id": request_id, "status": "ok",
                            "results": results})

    # -- admission ---------------------------------------------------------
    def _handle_submit(self, connection: _Connection, request_id: str,
                       message: dict) -> None:
        spec = message.get("spec")
        if not isinstance(spec, dict):
            self._respond_error(connection, request_id,
                                errors.BAD_REQUEST, "missing spec")
            return
        deadline_s = message.get("deadline_s")
        if deadline_s is None:
            deadline_s = self.timeout_s
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            self._respond_error(connection, request_id,
                                errors.BAD_REQUEST,
                                f"bad deadline_s {deadline_s!r}")
            return
        digest = protocol.canonical_spec_digest(spec)
        # Decide under the lock, respond outside it: a slow client
        # socket must never stall dispatchers waiting on the condition.
        cached = None
        verdict = None
        retry_after = None
        with self._cond:
            cached = self._completed.get(request_id)
            if cached is not None:
                self._completed.move_to_end(request_id)
                _count("service_idempotent_hits")
            elif self._draining:
                verdict = errors.SHUTTING_DOWN
            elif digest in self._inflight:
                self._inflight[digest].waiters.append(
                    (connection, request_id))
                _count("service_coalesced")
                return
            else:
                depth = len(self._queue)
                if depth >= self.queue_max \
                        or faults.fires("service.queue") == "full":
                    verdict = errors.BUSY
                    retry_after = round(
                        0.05 * (1.0 + depth / max(1, self.workers)), 3)
                    _count("service_shed_busy")
                else:
                    pending = _Pending(spec, digest,
                                       time.time() + float(deadline_s))
                    pending.waiters.append((connection, request_id))
                    self._inflight[digest] = pending
                    self._queue.append(pending)
                    _count("service_requests")
                    self._cond.notify()
                    return
        if cached is not None:
            connection.respond({**cached, "request_id": request_id,
                                "idempotent": True})
        elif verdict == errors.SHUTTING_DOWN:
            self._respond_error(connection, request_id,
                                errors.SHUTTING_DOWN,
                                "server is draining")
        elif verdict == errors.BUSY:
            self._respond_error(
                connection, request_id, errors.BUSY,
                "admission queue full",
                retry_after_s=retry_after)

    # -- responses ---------------------------------------------------------
    def _respond_error(self, connection: _Connection, request_id: str,
                       code: str, message_text: str,
                       retry_after_s: Optional[float] = None) -> None:
        _count("service_errors")
        payload: Dict[str, Any] = {"request_id": request_id,
                                   "status": "error", "code": code,
                                   "message": message_text}
        if retry_after_s is not None:
            payload["retry_after_s"] = retry_after_s
        connection.respond(payload)

    def _finish(self, pending: _Pending, payload: dict,
                cache: bool = True) -> None:
        """Respond to the leader and every coalesced follower."""
        with self._cond:
            if self._inflight.get(pending.digest) is pending:
                del self._inflight[pending.digest]
            if pending.responded:
                return
            pending.responded = True
            waiters = list(pending.waiters)
            if cache:
                for _, request_id in waiters:
                    self._completed[request_id] = payload
                while len(self._completed) > _IDEMPOTENCY_LRU:
                    self._completed.popitem(last=False)
        ok = payload.get("status") == "ok"
        _count("service_ok" if ok else "service_errors", len(waiters))
        for connection, request_id in waiters:
            connection.respond({**payload, "request_id": request_id})

    # -- dispatch ----------------------------------------------------------
    def _next_pending(self) -> Optional[_Pending]:
        with self._cond:
            while True:
                if self._stopping:
                    return None
                if self._queue:
                    pending = self._queue.popleft()
                    self._executing += 1
                    return pending
                self._cond.wait(timeout=0.5)

    def _done_executing(self) -> None:
        with self._cond:
            self._executing -= 1
            self._cond.notify_all()

    def _requeue_front(self, pending: _Pending) -> None:
        with self._cond:
            self._queue.appendleft(pending)
            self._cond.notify()

    def _dispatch_loop(self, index: int) -> None:
        while True:
            pending = self._next_pending()
            if pending is None:
                return
            try:
                self._dispatch_one(index, pending)
            finally:
                self._done_executing()

    def _dispatch_one(self, index: int, pending: _Pending) -> None:
        if time.time() >= pending.deadline:
            _count("service_timeouts")
            self._finish(pending, {
                "status": "error", "code": errors.TIMEOUT,
                "message": "deadline expired while queued",
            }, cache=False)
            return
        pending.attempts += 1
        store_verdict = self.store_breaker.allow()
        native_verdict = self.native_breaker.allow()
        job = {
            "op": "run", "spec": pending.spec,
            "deadline": pending.deadline,
            "disable_store": not store_verdict["enabled"],
            "disable_native": not native_verdict["enabled"],
        }
        if self._handles[index] is None and self._fork_ok:
            # Deterministic restart point: a fresh worker at the same
            # slot, forked from the same parent image.
            self._handles[index] = _WorkerHandle(index, self._context)
            _count("service_worker_restarts")
        reply = self._run_job(index, job, pending)
        if reply is None:
            # Worker crashed mid-request: restart the slot and requeue
            # (or fail) the request.
            _count("service_worker_crashes")
            handle = self._handles[index]
            if handle is not None:
                handle.kill()
                self._handles[index] = None
            if self._fork_ok and not self._stopping:
                # Restart eagerly, not at the next dispatch: the pool
                # keeps its capacity, and a crash on a slot's *last*
                # job doesn't leave the slot dead at drain time (its
                # replacement's delta still gets merged).
                self._handles[index] = _WorkerHandle(index, self._context)
                _count("service_worker_restarts")
            if pending.responded:
                return
            if pending.attempts < _MAX_ATTEMPTS:
                _count("service_requeues")
                self._requeue_front(pending)
                return
            self._finish(pending, {
                "status": "error", "code": errors.WORKER_CRASH,
                "message": f"worker died {pending.attempts} times "
                           "running this request",
            }, cache=False)
            return
        # Breaker evidence: only seams that were actually enabled for
        # this request carry information about the seam's health.
        if store_verdict["enabled"]:
            self.store_breaker.record(
                reply.get("store_failures", 0) == 0,
                probe=store_verdict["probe"])
        if native_verdict["enabled"]:
            self.native_breaker.record(bool(reply.get("native_ok", True)),
                                       probe=native_verdict["probe"])
        delta = reply.get("delta")
        if delta:
            merge_worker_diagnostics(delta, count_worker=False)
        if reply.get("ok"):
            self._finish(pending, {
                "status": "ok",
                "counters": reply.get("counters"),
                "output": reply.get("output"),
                "worker": reply.get("worker", index),
            })
        else:
            code = reply.get("code", errors.INTERNAL)
            if code == errors.TIMEOUT:
                _count("service_timeouts")
            self._finish(pending, {
                "status": "error", "code": code,
                "message": reply.get("message", "worker error"),
            }, cache=False)

    def _run_job(self, index: int, job: dict,
                 pending: _Pending) -> Optional[dict]:
        """Execute one job on the slot's worker; None = worker crashed.

        Handles the deadline-while-executing case: the waiters get a
        TIMEOUT response the moment the deadline passes, then the
        worker gets a cooperative-cancellation grace window before the
        slot is recycled.
        """
        handle = self._handles[index]
        if handle is None:
            return self._run_inline(job)
        try:
            handle.conn.send(job)
        except (OSError, BrokenPipeError):
            return None
        timed_out = False
        while True:
            remaining = pending.deadline - time.time()
            if not timed_out and remaining <= 0:
                _count("service_timeouts")
                self._finish(pending, {
                    "status": "error", "code": errors.TIMEOUT,
                    "message": "deadline expired during execution "
                               "(cooperative cancellation)",
                }, cache=False)
                timed_out = True
            wait = _KILL_GRACE_S if timed_out else max(0.01, remaining)
            try:
                if handle.conn.poll(wait):
                    reply = handle.conn.recv()
                    if not isinstance(reply, dict):
                        return None
                    return reply
            except (OSError, EOFError):
                return None
            if not handle.alive():
                return None
            if timed_out:
                # The worker ignored its cooperative checkpoints for a
                # whole grace window: recycle the slot.
                return None

    def _run_inline(self, job: dict) -> dict:
        """No-fork platforms: run the job in this thread (ladder rung).

        Counters advance directly in this process, so no delta is
        reported (merging one would double-count).
        """
        from ..soc._native import native_status
        from .worker import _seam_overrides

        reply: Dict[str, Any] = {"op": "result", "worker": -1, "ok": False,
                                 "store_failures": 0}
        try:
            with _seam_overrides(job.get("disable_store", False),
                                 job.get("disable_native", False)):
                counters, output = run_request(job["spec"],
                                               job.get("deadline"))
            reply.update(ok=True, counters=counters, output=output)
        except errors.ServiceError as exc:
            reply.update(code=exc.code, message=str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            reply.update(code=errors.INTERNAL, message=repr(exc))
        reply["native_ok"] = native_status()["status"] not in (
            "compile-failed", "load-failed", "fault-injected")
        return reply

    # -- observability -----------------------------------------------------
    def health(self) -> dict:
        with self._cond:
            queued, executing = len(self._queue), self._executing
            draining = self._draining
        return {
            "status": "draining" if draining else "ok",
            "queue_depth": queued,
            "queue_max": self.queue_max,
            "executing": executing,
            "workers": self.workers,
            "breakers": {"store": self.store_breaker.snapshot(),
                         "native": self.native_breaker.snapshot()},
            "counters": service_counters(),
            "faults": faults.fault_counters(),
        }
