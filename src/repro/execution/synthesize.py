"""Ahead-of-time trace synthesis: schedule side table → DriverTrace.

:func:`~repro.execution.trace.record_trace` discovers a kernel's
schedule by *executing* the emitted driver once against a shadow
runtime — one Python call per event, millions of events for the large
benchmark kernels.  But the driver is a fully static loop nest: every
event, operand offset, and staged byte is a pure function of the loop
bounds the emitter already wrote into its schedule side table.  This
module exploits that: :func:`synthesize_trace` expands the side table
directly into the exact :class:`DriverTrace` the recorder would have
built — same event stream, same tile classes, same side tables, same
scatter-disjointness flags — using vectorized numpy affine-index
arithmetic over the whole iteration space instead of a per-tile shadow
run.

The synthesizer is an abstract interpreter over the side table.  Every
SSA value in the emitted driver is represented either as a Python
scalar (loop-invariant) or as an int64 ndarray over the enclosing
iteration space: loop induction variables are ``lower + step*arange``
placed on their own broadcast axis, ``arith`` entries combine them
elementwise, and subview offsets become affine index arrays.  Event
*positions* in the flattened stream form the same lattice — a constant
prefix plus ``iv_index * body_len`` per enclosing loop — so every
global table is assembled with array sorts and scatters.

Anything the synthesizer cannot prove — data-dependent loop trip
counts, non-affine values, structurally divergent flushes, schedules
from an older emitter — raises :class:`SynthesisUnsupported` and the
caller falls back to the recording path, so synthesis is always an
optimization, never a semantics change.  ``REPRO_TRACE_CHECK=1``
additionally records every synthesized kernel and diffs the two traces
table-by-table (:func:`diff_traces`), failing loudly on any mismatch.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import faults
from .trace import (
    DriverTrace,
    K_CALL,
    K_COPY,
    K_FLUSH,
    K_INIT,
    K_LOOP,
    K_RECV,
    K_RWAIT,
    K_SUB,
    K_WORD,
    STAGE_TIMINGS,
    TraceUnsupported,
    _TileClass,
    add_stage_time,
    _scatter_is_disjoint,
)

#: Env kill-switch: set REPRO_NO_SYNTH=1 to force recording-based
#: tracing (REPRO_NO_TRACE=1 disables tracing altogether).
SYNTH_KILL_SWITCH = "REPRO_NO_SYNTH"

#: Env debug switch: set REPRO_TRACE_CHECK=1 to record every
#: synthesized kernel as well and fail loudly if the traces differ.
CROSS_CHECK_SWITCH = "REPRO_TRACE_CHECK"

#: Schedules expanding past this many events fall back to recording
#: rather than materializing multi-GB position tables.
_MAX_EVENTS = 1 << 26


def synthesis_enabled() -> bool:
    return os.environ.get(SYNTH_KILL_SWITCH, "") != "1"


def cross_check_requested() -> bool:
    return os.environ.get(CROSS_CHECK_SWITCH, "") == "1"


class SynthesisUnsupported(TraceUnsupported):
    """The schedule contains a construct synthesis cannot prove."""


class TraceMismatch(RuntimeError):
    """Synthesized and recorded traces disagree (cross-check mode)."""


class _Ref:
    """Shape-only memref value: the synthesizer's _ShadowRef analogue.

    ``offset`` is a scalar or an int64 ndarray over the enclosing
    iteration space (one element offset per loop iteration).
    """

    __slots__ = ("arg", "offset", "sizes", "strides", "itemsize")

    def __init__(self, arg, offset, sizes, strides, itemsize):
        self.arg = arg
        self.offset = offset
        self.sizes = sizes
        self.strides = strides
        self.itemsize = itemsize

    def num_elements(self) -> int:
        total = 1
        for size in self.sizes:
            total *= size
        return total


class _Frame:
    """One active loop: its broadcast axis, trip count, and body length."""

    __slots__ = ("axis", "trips", "rank", "body_len")

    def __init__(self, axis: int, trips: int, rank: int):
        self.axis = axis
        self.trips = trips
        self.rank = rank
        self.body_len = 0  # events per iteration, filled after the body

    def index_array(self) -> np.ndarray:
        shape = [1] * self.rank
        shape[self.axis] = self.trips
        return np.arange(self.trips, dtype=np.int64).reshape(shape)


class _Site:
    """One call statement: its event template and per-iteration values."""

    __slots__ = ("op", "template", "prefix", "chain", "payload", "pos")

    def __init__(self, op, template, prefix, chain, payload):
        self.op = op
        self.template = template
        self.prefix = prefix        # constant part of the event position
        self.chain = chain          # enclosing _Frame tuple
        self.payload = payload      # op-specific values (scalar or array)
        self.pos = None             # global event positions, filled late


_WORD_OPS = ("send_literal", "send_dim", "send_idx")
_MISSING = object()


def _nest_depth(body: list) -> int:
    depth = 0
    for entry in body:
        if entry.get("op") == "for":
            depth = max(depth, 1 + _nest_depth(entry.get("body", ())))
    return depth


class _Synthesizer:
    def __init__(self, table: dict, arg_specs):
        self.table = table
        self.arg_specs = arg_specs
        self.rank = _nest_depth(table.get("body", ()))
        self.env: Dict[str, object] = {}
        self.sites: List[_Site] = []
        self.initialized = False
        self.input_size = 0
        self.output_size = 0
        self.init_params: Optional[Tuple[int, int, int]] = None
        constants = table.get("constants")
        args = table.get("args")
        if constants is None or args is None:
            raise SynthesisUnsupported("schedule table lacks operand info")
        self.env.update(constants)
        if len(args) != len(arg_specs):
            raise SynthesisUnsupported("argument arity mismatch")
        for i, name in enumerate(args):
            sizes, strides, itemsize, _dtype = arg_specs[i]
            self.env[name] = _Ref(i, 0, tuple(sizes), tuple(strides),
                                  int(itemsize))

    # -- value plumbing ---------------------------------------------------
    def _value(self, name):
        value = self.env.get(name, _MISSING)
        if value is _MISSING:
            raise SynthesisUnsupported(f"undefined value {name!r}")
        if isinstance(value, _Ref):
            raise SynthesisUnsupported(f"memref {name!r} used as a scalar")
        return value

    def _ref(self, name) -> _Ref:
        value = self.env.get(name, _MISSING)
        if not isinstance(value, _Ref):
            raise SynthesisUnsupported(f"{name!r} is not a memref value")
        return value

    def _scalar(self, name) -> int:
        value = self._value(name)
        if isinstance(value, np.ndarray):
            raise SynthesisUnsupported(f"{name!r} varies across iterations")
        if not isinstance(value, (int, np.integer)):
            raise SynthesisUnsupported(f"{name!r} is not an integer")
        return int(value)

    def _flat(self, value, chain) -> np.ndarray:
        """Materialize one value over a site's full iteration space."""
        shape = tuple(f.trips for f in chain) \
            + (1,) * (self.rank - len(chain))
        arr = np.broadcast_to(np.asarray(value, dtype=np.int64), shape)
        return arr.ravel()

    # -- schedule walk ----------------------------------------------------
    def _walk(self, body: list, chain: Tuple[_Frame, ...],
              base: int) -> int:
        """Evaluate one body; returns its event count per iteration."""
        local = 0
        for entry in body:
            op = entry.get("op")
            if op == "for":
                local += self._walk_for(entry, chain, base + local)
            elif op == "arith":
                self._do_arith(entry)
            elif op == "subview":
                self._do_subview(entry)
            elif op == "dim":
                self._do_dim(entry)
            elif op == "loop_iteration":
                local += self._site(op, (K_LOOP,), chain, base + local, {})
            elif op == "subview_setup":
                local += self._site(op, (K_SUB,), chain, base + local, {})
            elif op == "dma_init":
                local += self._do_init(entry, chain, base + local)
            elif op in _WORD_OPS:
                local += self._do_word(entry, chain, base + local)
            elif op == "send_memref":
                local += self._do_send(entry, chain, base + local)
            elif op == "flush_send":
                local += self._do_flush(entry, chain, base + local)
            elif op == "recv_memref":
                local += self._do_recv(entry, chain, base + local)
            else:
                raise SynthesisUnsupported(f"unknown schedule op {op!r}")
        return local

    def _site(self, op, template, chain, prefix, payload) -> int:
        self.sites.append(_Site(op, template, prefix, chain, payload))
        return len(template)

    def _walk_for(self, entry, chain, base) -> int:
        names = entry.get("args")
        if not names or len(names) != 3:
            raise SynthesisUnsupported("loop bounds missing from schedule")
        lower = self._value(names[0])
        upper = self._value(names[1])
        step = self._value(names[2])
        trips = self._trip_count(lower, upper, step)
        if trips == 0:
            return 0
        # Bound the iteration space *before* materializing any array
        # over it (every loop body records at least its loop_iteration
        # event, so cells is a lower bound on total events): schedules
        # past the cap fall back to recording instead of allocating
        # multi-GB value tables during the walk.
        cells = trips
        for frame in chain:
            cells *= frame.trips
        if cells > _MAX_EVENTS:
            raise SynthesisUnsupported("schedule expansion too large")
        if isinstance(step, np.ndarray):  # uniform, proven by _trip_count
            step = step.reshape(-1)[0]
        frame = _Frame(len(chain), trips, self.rank)
        self.env[entry["iv"]] = lower + int(step) * frame.index_array()
        frame.body_len = self._walk(entry.get("body", ()),
                                    chain + (frame,), base)
        return trips * frame.body_len

    def _trip_count(self, lower, upper, step) -> int:
        if isinstance(step, np.ndarray):
            if step.size == 0 or (step != step.reshape(-1)[0]).any():
                raise SynthesisUnsupported("loop step varies")
            step = step.reshape(-1)[0]
        if not isinstance(step, (int, np.integer)):
            raise SynthesisUnsupported("non-integer loop step")
        step = int(step)
        if step == 0:
            raise SynthesisUnsupported("zero loop step")
        for bound in (lower, upper):
            if isinstance(bound, np.ndarray):
                if bound.dtype.kind not in "iu":
                    raise SynthesisUnsupported("non-integer loop bound")
            elif not isinstance(bound, (int, np.integer)):
                raise SynthesisUnsupported("non-integer loop bound")
        diff = upper - lower
        trips = -((-diff) // step)
        if isinstance(trips, np.ndarray):
            if trips.size == 0:
                return 0
            first = int(trips.reshape(-1)[0])
            if (trips != first).any():
                raise SynthesisUnsupported(
                    "loop trip count varies across iterations"
                )
            trips = first
        return max(0, int(trips))

    # -- pure host-side computation entries -------------------------------
    def _do_arith(self, entry) -> None:
        fn = entry.get("fn")
        lhs = self._value(entry["args"][0])
        rhs = self._value(entry["args"][1])
        if fn == "+":
            value = lhs + rhs
        elif fn == "-":
            value = lhs - rhs
        elif fn == "*":
            value = lhs * rhs
        elif fn == "min":
            if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
                value = np.minimum(lhs, rhs)
            else:
                value = min(lhs, rhs)
        else:
            raise SynthesisUnsupported(f"unknown arith fn {fn!r}")
        self.env[entry["result"]] = value

    def _do_subview(self, entry) -> None:
        source = self._ref(entry["ref"])
        offsets = [self._value(name) for name in entry["offsets"]]
        sizes = tuple(int(s) for s in entry["sizes"])
        if len(offsets) != len(source.sizes) \
                or len(sizes) != len(source.sizes):
            raise SynthesisUnsupported("subview rank mismatch")
        new_offset = source.offset
        for off, size, full, stride in zip(offsets, sizes, source.sizes,
                                           source.strides):
            if np.any(np.less(off, 0)) or np.any(np.greater(
                    np.add(off, size), full)):
                raise SynthesisUnsupported("subview out of bounds")
            new_offset = new_offset + off * stride
        self.env[entry["result"]] = _Ref(
            source.arg, new_offset, sizes, source.strides, source.itemsize
        )

    def _do_dim(self, entry) -> None:
        source = self._ref(entry["ref"])
        try:
            self.env[entry["result"]] = source.sizes[int(entry["index"])]
        except IndexError:
            raise SynthesisUnsupported("memref.dim index out of range")

    # -- runtime-call entries ---------------------------------------------
    def _check_init(self) -> None:
        if not self.initialized:
            raise SynthesisUnsupported("library call before dma_init")

    def _do_init(self, entry, chain, prefix) -> int:
        if self.initialized:
            raise SynthesisUnsupported("dma_init called twice")
        if chain:
            raise SynthesisUnsupported("dma_init inside a loop")
        values = [self._scalar(name) for name in entry["args"]]
        if len(values) != 5:
            raise SynthesisUnsupported("malformed dma_init")
        self.initialized = True
        self.input_size = values[2]
        self.output_size = values[4]
        self.init_params = (values[0], self.input_size, self.output_size)
        return self._site("dma_init", (K_INIT,), chain, prefix, {})

    def _check_word(self, offset) -> None:
        self._check_init()
        if np.any(np.remainder(offset, 4)):
            raise SynthesisUnsupported("misaligned staged word")
        if np.any(np.greater(np.add(offset, 4), self.input_size)):
            raise SynthesisUnsupported("staged word beyond input region")

    def _do_word(self, entry, chain, prefix) -> int:
        op = entry["op"]
        offset = self._value(entry["offset"])
        if op == "send_literal" or op == "send_idx":
            value = self._value(entry["value"])
        else:  # send_dim
            ref = self._ref(entry["ref"])
            try:
                value = ref.sizes[self._scalar(entry["dim"])]
            except IndexError:
                raise SynthesisUnsupported("send_dim index out of range")
        self._check_word(offset)
        self.env[entry["result"]] = offset + 4
        return self._site(op, (K_CALL, K_WORD), chain, prefix,
                          {"value": value, "offset": offset})

    def _do_send(self, entry, chain, prefix) -> int:
        self._check_init()
        ref = self._ref(entry["ref"])
        offset = self._value(entry["offset"])
        if ref.itemsize % 4 or np.any(np.remainder(offset, 4)):
            raise SynthesisUnsupported("unstageable tile")
        num_bytes = ref.num_elements() * ref.itemsize
        if np.any(np.greater(np.add(offset, num_bytes), self.input_size)):
            raise SynthesisUnsupported("staged tile beyond input region")
        self.env[entry["result"]] = offset + num_bytes
        key = (ref.arg, ref.sizes, ref.strides)
        return self._site("send_memref", (K_CALL, K_COPY), chain, prefix,
                          {"key": key, "starts": ref.offset,
                           "offset": offset})

    def _do_flush(self, entry, chain, prefix) -> int:
        self._check_init()
        offset = self._value(entry["offset"])
        self.env[entry["result"]] = 0
        if isinstance(offset, np.ndarray):
            nonzero = offset != 0
            if not nonzero.any():
                return 0
            if not nonzero.all():
                raise SynthesisUnsupported(
                    "flush alternates between empty and staged batches"
                )
        elif offset == 0:
            return 0  # a no-op in AxiRuntime: no cost, no boundary
        return self._site("flush_send", (K_FLUSH,), chain, prefix,
                          {"bytes": offset})

    def _do_recv(self, entry, chain, prefix) -> int:
        self._check_init()
        ref = self._ref(entry["ref"])
        offset = self._value(entry["offset"])
        if ref.itemsize % 4 or np.any(np.remainder(offset, 4)):
            raise SynthesisUnsupported("unstageable receive tile")
        num_bytes = ref.num_elements() * ref.itemsize
        if np.any(np.greater(np.add(offset, num_bytes), self.output_size)):
            raise SynthesisUnsupported("receive beyond output region")
        accumulate = bool(entry.get("accumulate", False))
        key = (ref.arg, ref.sizes, ref.strides, accumulate)
        return self._site("recv_memref",
                          (K_RWAIT, K_CALL, K_RECV, K_COPY), chain, prefix,
                          {"key": key, "starts": ref.offset,
                           "offset": offset})

    # -- assembly ---------------------------------------------------------
    def _positions(self, site: _Site) -> np.ndarray:
        pos = site.prefix
        for frame in site.chain:
            pos = pos + frame.index_array() * frame.body_len
        return self._flat(pos, site.chain)

    def build(self) -> DriverTrace:
        total = self._walk(self.table.get("body", ()), (), 0)
        if self.init_params is None:
            raise SynthesisUnsupported(
                "driver never initialized the DMA engine"
            )
        if total > _MAX_EVENTS:
            raise SynthesisUnsupported("schedule expansion too large")
        trace = DriverTrace(self.arg_specs)
        trace.init_params = self.init_params
        kinds = np.empty(total, dtype=np.int8)
        for site in self.sites:
            site.pos = self._positions(site)
            for j, kind in enumerate(site.template):
                kinds[site.pos + j] = kind
        trace.kinds = kinds
        trace.num_events = total

        empty = np.empty(0, dtype=np.int64)
        self._build_words(trace, empty)
        send_groups = self._grouped("send_memref")
        recv_groups = self._grouped("recv_memref")
        self._build_sends(trace, send_groups, empty)
        self._build_recvs(trace, recv_groups, empty)
        self._build_flushes(trace, empty)
        self._build_staged(trace, send_groups)
        self._check_read_after_write(trace)
        trace.recv_disjoint = [
            _scatter_is_disjoint(tile_class)
            for tile_class in trace.recv_classes
        ]
        return trace

    def _build_words(self, trace, empty) -> None:
        sites = [s for s in self.sites if s.op in _WORD_OPS]
        if not sites:
            trace.word_pos = empty
            trace.word_offsets = empty
            trace.word_values = empty
            return
        pos = np.concatenate([s.pos + 1 for s in sites])
        offsets = np.concatenate(
            [self._flat(s.payload["offset"], s.chain) for s in sites]
        )
        values = np.concatenate(
            [self._flat(s.payload["value"], s.chain) for s in sites]
        ) & 0xFFFFFFFF
        order = np.argsort(pos)
        trace.word_pos = pos[order]
        trace.word_offsets = offsets[order]
        trace.word_values = values[order]

    def _grouped(self, op: str) -> list:
        """Tile classes for one op, ordered by first event occurrence.

        Returns ``[(key, pos, starts, region_offsets), ...]`` with the
        per-class rows sorted by event position — the same class-id and
        row order ``_compile_events`` produces.
        """
        groups: Dict[Tuple, List] = {}
        for site in (s for s in self.sites if s.op == op):
            entry = groups.setdefault(site.payload["key"], ([], [], []))
            entry[0].append(site.pos)
            entry[1].append(self._flat(site.payload["starts"], site.chain))
            entry[2].append(self._flat(site.payload["offset"], site.chain))
        compiled = []
        for key, (pos_parts, start_parts, region_parts) in groups.items():
            pos = np.concatenate(pos_parts)
            order = np.argsort(pos)
            compiled.append((key, pos[order],
                             np.concatenate(start_parts)[order],
                             np.concatenate(region_parts)[order]))
        compiled.sort(key=lambda item: int(item[1][0]))
        return compiled

    def _build_sends(self, trace, groups, empty) -> None:
        all_pos = np.sort(np.concatenate([g[1] for g in groups])) \
            if groups else empty
        for (arg, sizes, strides), pos, starts, regions in groups:
            tile_class = _TileClass(arg, sizes, strides,
                                    self.arg_specs[arg][2])
            tile_class.starts = starts
            tile_class.region_offsets = regions
            tile_class.event_pos = pos + 1
            tile_class.order = np.searchsorted(all_pos, pos)
            trace.send_classes.append(tile_class)

    def _build_recvs(self, trace, groups, empty) -> None:
        total = sum(len(g[1]) for g in groups)
        all_pos = np.sort(np.concatenate([g[1] for g in groups])) \
            if groups else empty
        recv_pos = np.empty(total, dtype=np.int64)
        recv_bytes = np.empty(total, dtype=np.int64)
        class_of = np.empty(total, dtype=np.int64)
        index_of = np.empty(total, dtype=np.int64)
        sizes_of = []
        for class_id, (key, pos, starts, regions) in enumerate(groups):
            arg, sizes, strides, accumulate = key
            itemsize = self.arg_specs[arg][2]
            tile_class = _TileClass(arg, sizes, strides, itemsize,
                                    accumulate)
            tile_class.starts = starts
            tile_class.region_offsets = regions
            tile_class.event_pos = pos + 3
            ordinals = np.searchsorted(all_pos, pos)
            tile_class.order = ordinals
            recv_pos[ordinals] = pos + 2
            recv_bytes[ordinals] = tile_class.num_elements() * itemsize
            class_of[ordinals] = class_id
            index_of[ordinals] = np.arange(pos.size, dtype=np.int64)
            sizes_of.append(sizes)
            trace.recv_classes.append(tile_class)
        trace.recv_refs = list(zip(class_of.tolist(), index_of.tolist()))
        trace.recv_sizes = [sizes_of[c] for c in class_of.tolist()]
        trace.recv_pos = recv_pos
        trace.recv_bytes = recv_bytes

    def _build_flushes(self, trace, empty) -> None:
        sites = [s for s in self.sites if s.op == "flush_send"]
        if not sites:
            trace.flush_pos = empty
            trace.flush_bytes = empty
            return
        pos = np.concatenate([s.pos for s in sites])
        flush_bytes = np.concatenate(
            [self._flat(s.payload["bytes"], s.chain) for s in sites]
        )
        order = np.argsort(pos)
        trace.flush_pos = pos[order]
        trace.flush_bytes = flush_bytes[order]

    def _build_staged(self, trace, send_groups) -> None:
        """The interleaved word/tile stream the decoder consumes."""
        word_sites = [s for s in self.sites if s.op in _WORD_OPS]
        parts = [s.pos for s in word_sites] + [g[1] for g in send_groups]
        empty = np.empty(0, dtype=np.int64)
        if not parts:
            trace.staged_is_word = np.empty(0, dtype=np.uint8)
            trace.staged_values = empty
            trace.staged_indices = empty
            trace.staged_widths = empty
            trace.flush_item_counts = [0] * len(trace.flush_pos)
            return
        # The four parallel item arrays are built part-by-part (pure
        # numpy), then merged into global event order with a single
        # argsort permutation.
        is_word_parts, value_parts, index_parts, width_parts = [], [], [], []
        for site in word_sites:
            values = (self._flat(site.payload["value"], site.chain)
                      & 0xFFFFFFFF)
            n = values.size
            is_word_parts.append(np.ones(n, dtype=np.uint8))
            value_parts.append(values.astype(np.int64, copy=False))
            index_parts.append(np.zeros(n, dtype=np.int64))
            width_parts.append(np.ones(n, dtype=np.int64))
        for class_id, (key, pos, _starts, _regions) in \
                enumerate(send_groups):
            tile_class = trace.send_classes[class_id]
            words = tile_class.num_elements() * tile_class.itemsize // 4
            n = pos.size
            is_word_parts.append(np.zeros(n, dtype=np.uint8))
            value_parts.append(np.full(n, class_id, dtype=np.int64))
            index_parts.append(np.arange(n, dtype=np.int64))
            width_parts.append(np.full(n, words, dtype=np.int64))
        all_pos = np.concatenate(parts)
        order = np.argsort(all_pos)
        trace.staged_is_word = np.concatenate(is_word_parts)[order]
        trace.staged_values = np.concatenate(value_parts)[order]
        trace.staged_indices = np.concatenate(index_parts)[order]
        trace.staged_widths = np.concatenate(width_parts)[order]
        trace.flush_item_counts = np.searchsorted(
            all_pos[order], trace.flush_pos
        ).tolist()

    def _check_read_after_write(self, trace) -> None:
        # Mirrors _compile_events' read-after-write hazard guard.
        first_recv: Dict[int, int] = {}
        for tile_class in trace.recv_classes:
            if tile_class.event_pos.size:
                pos = int(tile_class.event_pos.min())
                arg = tile_class.arg
                first_recv[arg] = min(first_recv.get(arg, pos), pos)
        for tile_class in trace.send_classes:
            if tile_class.event_pos.size and tile_class.arg in first_recv \
                    and int(tile_class.event_pos.max()) \
                    > first_recv[tile_class.arg]:
                raise SynthesisUnsupported(
                    "argument is sent after being received "
                    "(read-after-write)"
                )


def synthesize_trace(schedule_table: Optional[dict],
                     arg_specs) -> DriverTrace:
    """Expand the emitter's schedule side table into a DriverTrace.

    Raises :class:`SynthesisUnsupported` when the schedule cannot be
    proven static/affine; callers fall back to :func:`record_trace`.
    """
    start = time.perf_counter()
    try:
        if faults.fires("synth") == "fail":
            raise SynthesisUnsupported("injected synthesis fault")
        if not schedule_table:
            raise SynthesisUnsupported("no schedule side table")
        try:
            return _Synthesizer(schedule_table, arg_specs).build()
        except SynthesisUnsupported:
            raise
        except (KeyError, IndexError, TypeError, ValueError,
                OverflowError, AttributeError) as exc:
            raise SynthesisUnsupported(
                f"schedule not synthesizable: {exc!r}"
            ) from exc
    finally:
        add_stage_time("trace_synth_s", time.perf_counter() - start)


# -- cross-check -----------------------------------------------------------

def diff_traces(synthesized: DriverTrace,
                recorded: DriverTrace) -> List[str]:
    """Table-by-table structural diff; empty means bit-identical."""
    problems: List[str] = []

    def check(name, condition):
        if not condition:
            problems.append(name)

    def check_array(name, left, right):
        check(name, np.array_equal(np.asarray(left), np.asarray(right)))

    check("arg_specs", tuple(synthesized.arg_specs)
          == tuple(recorded.arg_specs))
    check("num_events", synthesized.num_events == recorded.num_events)
    check_array("kinds", synthesized.kinds, recorded.kinds)
    check("init_params", synthesized.init_params == recorded.init_params)
    for name in ("word_pos", "word_offsets", "word_values", "flush_pos",
                 "flush_bytes", "recv_pos", "recv_bytes"):
        check_array(name, getattr(synthesized, name),
                    getattr(recorded, name))
    for side in ("send_classes", "recv_classes"):
        left, right = getattr(synthesized, side), getattr(recorded, side)
        if len(left) != len(right):
            problems.append(f"{side} count")
            continue
        for i, (lc, rc) in enumerate(zip(left, right)):
            check(f"{side}[{i}] geometry",
                  (lc.arg, lc.sizes, lc.strides, lc.itemsize,
                   lc.accumulate)
                  == (rc.arg, rc.sizes, rc.strides, rc.itemsize,
                      rc.accumulate))
            for field in ("starts", "region_offsets", "event_pos",
                          "order"):
                check_array(f"{side}[{i}].{field}",
                            getattr(lc, field), getattr(rc, field))
    for name in ("staged_is_word", "staged_values", "staged_indices",
                 "staged_widths"):
        check_array(name, getattr(synthesized, name),
                    getattr(recorded, name))
    check("flush_item_counts", list(synthesized.flush_item_counts)
          == list(recorded.flush_item_counts))
    check("recv_refs", list(synthesized.recv_refs)
          == list(recorded.recv_refs))
    check("recv_sizes", list(synthesized.recv_sizes)
          == list(recorded.recv_sizes))
    check("recv_disjoint", list(synthesized.recv_disjoint)
          == list(recorded.recv_disjoint))
    return problems
