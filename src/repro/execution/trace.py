"""Driver trace recording: capture a kernel's static schedule once.

The generated host drivers are straight-line loop nests whose ``rt.*``
call sequence is fully determined by the loop bounds — data never
influences control flow.  :class:`TraceRecorder` exploits that: it is a
shadow of :class:`~repro.runtime.AxiRuntime` that executes the emitted
driver once against *shape-only* argument descriptors and records the
complete schedule of driver events (subview offsets, staged tile
geometries, opcode literals, flush/receive boundaries, loop-iteration
markers) into flat numpy side tables.  Subsequent invocations of the
same kernel replay that schedule through
:class:`~repro.execution.replay.ReplayExecutor` as batched numpy,
bit-identical to the per-tile path.

A second, accelerator-specific step (:func:`decode_for_accelerator`)
re-runs the staged word stream through a word-level model of the
accelerator's control unit — the same needs-based completion rule as
:meth:`StreamAccelerator.process_stream` — turning the flush segments
into instruction records: which staged tiles load which operand
buffers, which computes accumulate into which output pushes, and how
many accelerator cycles each flush schedules.

Anything the trace machinery does not understand raises
:class:`TraceUnsupported`; callers fall back to the per-tile path, so
tracing is always an optimization, never a semantics change.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accelerators.base import StreamAccelerator
from ..accelerators.conv import CONV_LITERALS, CONV_OPS_PER_CYCLE, \
    ConvAccelerator
from ..accelerators.matmul import (
    MATMUL_LITERALS,
    MatMulAccelerator,
    VERSION_OPCODES,
    _MICRO_OPS,
)

#: Env kill-switch: set REPRO_NO_TRACE=1 to force per-tile execution.
TRACE_KILL_SWITCH = "REPRO_NO_TRACE"

#: On-disk DriverTrace schema version.  Folded into every kernel-store
#: payload next to the serialized trace: bump it whenever DriverTrace,
#: _TileClass, or DecodedPlan change shape so stale persisted traces
#: are evicted (the kernel entry itself still loads) instead of being
#: replayed with mismatched tables.  (v2: the staged-item stream became
#: four parallel numpy arrays instead of a list of tuples.)
TRACE_SCHEMA_VERSION = 2

#: Wall-clock spent per pipeline stage, cumulative for the process.
#: ``compile_s`` is fed by the compiler; the benchmark harness snapshots
#: this into BENCH_perf.json so future PRs can see where time goes.
STAGE_TIMINGS: Dict[str, float] = {
    "compile_s": 0.0,
    "trace_record_s": 0.0,
    "trace_synth_s": 0.0,
    "manual_record_s": 0.0,
    "replay_s": 0.0,
    # Metrics-plane breakdown (both are *subsets* of replay_s): building
    # a MetricsPlan from scratch vs applying a cached one in O(state).
    "metrics_plan_build_s": 0.0,
    "metrics_plan_apply_s": 0.0,
    # Model-granularity breakdown: fusing/persisting a session's
    # ModelPlan vs serving a fused sub-plan (a subset of replay_s).
    "model_plan_build_s": 0.0,
    "model_plan_apply_s": 0.0,
    # Autotuning sweep breakdown: total sweep wall-clock, journal I/O,
    # and the per-point pipeline stages measured inside the workers.
    "sweep_run_s": 0.0,
    "sweep_journal_s": 0.0,
    "sweep_compile_s": 0.0,
    "sweep_estimate_s": 0.0,
    "sweep_simulate_s": 0.0,
    # Opt-in sweep prewarm: wall-clock spent prebuilding pending
    # points' cold-path artifacts before the measured sweep (the
    # prebuilt work itself lands in compile_s / metrics_plan_build_s
    # etc. via the workers' merged deltas).
    "sweep_prebuild_s": 0.0,
}

#: Guards STAGE_TIMINGS mutation: stage times are accumulated from
#: arbitrary threads (and merged wholesale from pool workers), and
#: float ``+=`` on a dict slot is not atomic.
_TIMINGS_LOCK = threading.Lock()


def _fresh_timings_lock_after_fork() -> None:
    # Forked children (service workers, model-pool workers) must not
    # inherit a lock another parent thread held mid-accumulate.
    global _TIMINGS_LOCK
    _TIMINGS_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_fresh_timings_lock_after_fork)


def add_stage_time(stage: str, seconds: float) -> None:
    """Thread-safely accumulate wall-clock into one pipeline stage."""
    with _TIMINGS_LOCK:
        STAGE_TIMINGS[stage] += seconds


def merge_stage_timings(delta: Dict[str, float]) -> None:
    """Fold a worker's per-stage deltas into this process's totals."""
    with _TIMINGS_LOCK:
        for stage, seconds in delta.items():
            STAGE_TIMINGS[stage] = STAGE_TIMINGS.get(stage, 0.0) + seconds

#: How each kernel's DriverTrace was obtained this process:
#: ``synthesized`` (ahead-of-time from the schedule side table),
#: ``recorded`` (shadow-runtime execution of the emitted driver),
#: ``synth_fallback`` (synthesis was attempted but fell back to
#: recording), ``disk_loaded`` (deserialized from the kernel store),
#: ``manual_recorded`` / ``manual_fallback`` (hand-written baseline
#: bodies: traced, or permanently per-tile because recording/replay
#: failed — a nonzero fallback here means cpp_MANUAL silently left
#: the batched path).
TRACE_COUNTERS: Dict[str, int] = {
    "synthesized": 0,
    "recorded": 0,
    "synth_fallback": 0,
    "disk_loaded": 0,
    "manual_recorded": 0,
    "manual_fallback": 0,
}


def reset_trace_counters() -> None:
    for key in TRACE_COUNTERS:
        TRACE_COUNTERS[key] = 0


def trace_enabled() -> bool:
    return os.environ.get(TRACE_KILL_SWITCH, "") != "1"


class TraceUnsupported(RuntimeError):
    """The driver did something the trace compiler cannot replay."""


# -- event kinds (cost-stream entries, one per charge step) ---------------
K_LOOP = 0      #: rt.loop_iteration
K_SUB = 1       #: rt.subview_setup
K_CALL = 2      #: the per-call overhead charge of a library call
K_WORD = 3      #: stage_word (literal / dim / idx)
K_COPY = 4      #: charge_memref_copy (send or recv side)
K_FLUSH = 5     #: flush_send with a non-empty staged batch
K_RECV = 6      #: the synchronization part of recv_memref
K_INIT = 7      #: dma_init
K_RWAIT = 8     #: pre-receive wait_sends (a no-op for blocking runtimes)


class _ShadowRef:
    """Shape-only stand-in for a MemRefDescriptor during recording."""

    __slots__ = ("arg", "offset", "sizes", "strides", "itemsize")

    def __init__(self, arg: int, offset: int, sizes: Tuple[int, ...],
                 strides: Tuple[int, ...], itemsize: int):
        self.arg = arg
        self.offset = offset
        self.sizes = sizes
        self.strides = strides
        self.itemsize = itemsize

    def subview(self, offsets, sizes) -> "_ShadowRef":
        if len(offsets) != len(self.sizes) or len(sizes) != len(self.sizes):
            raise TraceUnsupported("subview rank mismatch")
        new_offset = self.offset
        for off, size, full, stride in zip(offsets, sizes, self.sizes,
                                           self.strides):
            if off < 0 or off + size > full:
                raise TraceUnsupported("subview out of bounds")
            new_offset += off * stride
        return _ShadowRef(self.arg, new_offset, tuple(sizes), self.strides,
                          self.itemsize)

    def num_bytes(self) -> int:
        total = 1
        for size in self.sizes:
            total *= size
        return total * self.itemsize


class _TileClass:
    """All staged (or received) tiles sharing one geometry and operand."""

    __slots__ = ("arg", "sizes", "strides", "itemsize", "accumulate",
                 "starts", "region_offsets", "event_pos", "order")

    def __init__(self, arg, sizes, strides, itemsize, accumulate=None):
        self.arg = arg
        self.sizes = sizes
        self.strides = strides
        self.itemsize = itemsize
        self.accumulate = accumulate
        self.starts: List[int] = []        # element offsets in the arg
        self.region_offsets: List[int] = []  # byte offsets in the region
        self.event_pos: List[int] = []     # K_COPY positions in the stream
        self.order: List[int] = []         # global send/recv ordinal

    def num_elements(self) -> int:
        total = 1
        for size in self.sizes:
            total *= size
        return total

    def finalize(self) -> None:
        self.starts = np.asarray(self.starts, dtype=np.int64)
        self.region_offsets = np.asarray(self.region_offsets, dtype=np.int64)
        self.event_pos = np.asarray(self.event_pos, dtype=np.int64)
        self.order = np.asarray(self.order, dtype=np.int64)


class DriverTrace:
    """The compiled, runtime-independent schedule of one kernel driver."""

    def __init__(self, arg_specs):
        #: (sizes, strides, itemsize, dtype-name) per function argument.
        self.arg_specs = arg_specs
        self.kinds: np.ndarray = None
        self.num_events = 0
        self.init_params: Optional[Tuple[int, int, int]] = None
        #: Set instead of init_params for preinitialized (manual-driver)
        #: traces: (input_size, output_size) of the live engine.
        self.region_sizes: Optional[Tuple[int, int]] = None
        # Per-class tile tables (send side, then recv side).
        self.send_classes: List[_TileClass] = []
        self.recv_classes: List[_TileClass] = []
        # Scalar staged words.
        self.word_pos: np.ndarray = None
        self.word_offsets: np.ndarray = None
        self.word_values: np.ndarray = None
        # Flush / recv synchronization tables.
        self.flush_pos: np.ndarray = None
        self.flush_bytes: np.ndarray = None
        self.recv_pos: np.ndarray = None
        self.recv_bytes: np.ndarray = None
        self.recv_sizes: List[Tuple[int, ...]] = []  # per recv ordinal
        #: Staged-item stream for the accelerator decoder, as four
        #: parallel arrays: ``staged_is_word`` (1 = scalar word, 0 =
        #: tile), ``staged_values`` (the word value, or the tile's class
        #: id), ``staged_indices`` (the tile's ordinal within its class,
        #: 0 for words), ``staged_widths`` (32-bit words per item).
        #: ``flush_item_counts`` holds the item count visible at each
        #: flush boundary.
        self.staged_is_word: np.ndarray = None
        self.staged_values: np.ndarray = None
        self.staged_indices: np.ndarray = None
        self.staged_widths: np.ndarray = None
        self.flush_item_counts: List[int] = []
        #: recv ordinal -> (class_id, index) for push matching.
        self.recv_refs: List[Tuple[int, int]] = []
        #: Decoded plans per accelerator signature (lazily built).
        self.decoded: Dict[Tuple, object] = {}
        #: Cached MetricsPlans per runtime-config/state fingerprint
        #: (see repro.execution.metrics).  Persisted *separately* from
        #: the trace in the kernel store — its own schema version — so
        #: it is excluded from the trace's pickle state below.
        self.metrics_plans: "OrderedDict" = OrderedDict()
        #: Whether the scatter of each recv class is round-safe (the
        #: flat index sets of distinct tile starts are disjoint).
        self.recv_disjoint: List[bool] = []

    @property
    def num_staged_items(self) -> int:
        return 0 if self.staged_is_word is None else self.staged_is_word.size

    def __getstate__(self):
        state = self.__dict__.copy()
        state["metrics_plans"] = None  # persisted under its own schema
        # component_digest (a lazily computed content hash, see
        # repro.execution.metrics._trace_component_digest) stays in the
        # state on purpose: model/service workers receiving the trace
        # then key the component memo without re-hashing it.
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.metrics_plans = OrderedDict()


class TraceRecorder:
    """Shadow runtime: the same call surface, recording instead of doing.

    Returned offsets replicate :class:`AxiRuntime`'s offset arithmetic
    exactly, so the emitted driver's control/data flow is unchanged.
    """

    def __init__(self, arg_specs,
                 preinitialized: Optional[Tuple[int, int]] = None):
        """``preinitialized=(input_size, output_size)`` records a driver
        body whose ``dma_init`` already happened outside the recorded
        region (the hand-written baselines initialize the engine before
        allocating their memrefs); the resulting trace replays against
        the runtime's live engine instead of installing a fresh one.
        """
        self.arg_specs = arg_specs
        self.events: List[Tuple] = []
        self.preinitialized = preinitialized is not None
        self.initialized = self.preinitialized
        self.input_size = preinitialized[0] if preinitialized else 0
        self.output_size = preinitialized[1] if preinitialized else 0

    def make_args(self) -> List[_ShadowRef]:
        return [
            _ShadowRef(i, 0, tuple(sizes), tuple(strides), itemsize)
            for i, (sizes, strides, itemsize, _dtype)
            in enumerate(self.arg_specs)
        ]

    # -- recorded library calls ------------------------------------------
    def dma_init(self, dma_id, input_address, input_buffer_size,
                 output_address, output_buffer_size) -> None:
        if self.initialized:
            raise TraceUnsupported("dma_init called twice")
        self.initialized = True
        self.input_size = int(input_buffer_size)
        self.output_size = int(output_buffer_size)
        self.events.append(("init", int(dma_id), self.input_size,
                            self.output_size))

    def _word(self, value: int, offset: int) -> int:
        if offset % 4:
            raise TraceUnsupported("misaligned staged word")
        if offset + 4 > self.input_size:
            raise TraceUnsupported("staged word beyond input region")
        self.events.append(("word", int(value) & 0xFFFFFFFF, int(offset)))
        return offset + 4

    def send_literal(self, literal, offset):
        self._check_init()
        return self._word(literal, offset)

    def send_dim(self, desc, dim, offset):
        self._check_init()
        return self._word(desc.sizes[dim], offset)

    def send_idx(self, value, offset):
        self._check_init()
        return self._word(int(value), offset)

    def send_memref(self, desc, offset):
        self._check_init()
        if not isinstance(desc, _ShadowRef):
            raise TraceUnsupported("send of a non-argument memref")
        if offset % 4 or desc.itemsize % 4:
            raise TraceUnsupported("unstageable tile")
        num_bytes = desc.num_bytes()
        if offset + num_bytes > self.input_size:
            raise TraceUnsupported("staged tile beyond input region")
        self.events.append(("send", desc.arg, desc.offset, desc.sizes,
                            desc.strides, int(offset)))
        return offset + num_bytes

    def flush_send(self, offset):
        self._check_init()
        self.events.append(("flush", int(offset)))
        return 0

    def recv_memref(self, desc, offset, accumulate=False):
        self._check_init()
        if not isinstance(desc, _ShadowRef):
            raise TraceUnsupported("recv into a non-argument memref")
        if offset % 4 or desc.itemsize % 4:
            raise TraceUnsupported("unstageable receive tile")
        if offset + desc.num_bytes() > self.output_size:
            raise TraceUnsupported("receive beyond output region")
        self.events.append(("recv", desc.arg, desc.offset, desc.sizes,
                            desc.strides, int(offset), bool(accumulate)))

    def loop_iteration(self):
        self.events.append(("loop",))

    def subview_setup(self):
        self.events.append(("sub",))

    def _check_init(self) -> None:
        if not self.initialized:
            raise TraceUnsupported("library call before dma_init")

    # Anything else the driver might call on the runtime is unsupported:
    # attribute errors propagate and the caller falls back to per-tile.


def record_trace(entry_point, arg_specs,
                 expected_events: Optional[int] = None,
                 preinitialized: Optional[Tuple[int, int]] = None,
                 stage: str = "trace_record_s") -> DriverTrace:
    """Run ``entry_point`` once against the recorder; compile the events.

    ``expected_events`` (from the emitter's schedule side table) cross-
    checks that the recording expanded the whole static loop nest.
    ``stage`` names the STAGE_TIMINGS bucket charged (the hand-written
    baselines record under ``manual_record_s``).
    """
    start = time.perf_counter()
    try:
        recorder = TraceRecorder(arg_specs, preinitialized=preinitialized)
        entry_point(recorder, *recorder.make_args())
        if expected_events is not None \
                and len(recorder.events) != expected_events:
            raise TraceUnsupported(
                f"recorded {len(recorder.events)} events, schedule table "
                f"predicts {expected_events}"
            )
        trace = _compile_events(recorder, arg_specs)
    finally:
        add_stage_time(stage, time.perf_counter() - start)
    return trace


def _compile_events(recorder: TraceRecorder, arg_specs) -> DriverTrace:
    """Flatten recorded events into the cost stream + side tables."""
    trace = DriverTrace(arg_specs)
    kinds: List[int] = []
    send_lookup: Dict[Tuple, int] = {}
    recv_lookup: Dict[Tuple, int] = {}
    word_pos: List[int] = []
    word_offsets: List[int] = []
    word_values: List[int] = []
    flush_pos: List[int] = []
    flush_bytes: List[int] = []
    recv_pos: List[int] = []
    recv_bytes: List[int] = []
    send_ordinal = 0
    recv_ordinal = 0
    staged_w: List[int] = []     # 1 = word, 0 = tile
    staged_v: List[int] = []     # word value / tile class id
    staged_i: List[int] = []     # tile ordinal within its class
    staged_n: List[int] = []     # 32-bit words per item

    for event in recorder.events:
        tag = event[0]
        if tag == "loop":
            kinds.append(K_LOOP)
        elif tag == "sub":
            kinds.append(K_SUB)
        elif tag == "word":
            _, value, offset = event
            kinds.append(K_CALL)
            word_pos.append(len(kinds))
            word_offsets.append(offset)
            word_values.append(value)
            kinds.append(K_WORD)
            staged_w.append(1)
            staged_v.append(value)
            staged_i.append(0)
            staged_n.append(1)
        elif tag == "send":
            _, arg, start, sizes, strides, offset = event
            key = (arg, sizes, strides)
            class_id = send_lookup.get(key)
            if class_id is None:
                class_id = len(trace.send_classes)
                send_lookup[key] = class_id
                trace.send_classes.append(_TileClass(
                    arg, sizes, strides, arg_specs[arg][2]
                ))
            tile_class = trace.send_classes[class_id]
            index = len(tile_class.starts)
            kinds.append(K_CALL)
            tile_class.starts.append(start)
            tile_class.region_offsets.append(offset)
            tile_class.event_pos.append(len(kinds))
            tile_class.order.append(send_ordinal)
            send_ordinal += 1
            kinds.append(K_COPY)
            words = tile_class.num_elements() * tile_class.itemsize // 4
            staged_w.append(0)
            staged_v.append(class_id)
            staged_i.append(index)
            staged_n.append(words)
        elif tag == "flush":
            _, offset = event
            if offset == 0:
                continue  # a no-op in AxiRuntime: no cost, no boundary
            flush_pos.append(len(kinds))
            flush_bytes.append(offset)
            kinds.append(K_FLUSH)
            trace.flush_item_counts.append(len(staged_w))
        elif tag == "recv":
            _, arg, start, sizes, strides, offset, accumulate = event
            key = (arg, sizes, strides, accumulate)
            class_id = recv_lookup.get(key)
            if class_id is None:
                class_id = len(trace.recv_classes)
                recv_lookup[key] = class_id
                trace.recv_classes.append(_TileClass(
                    arg, sizes, strides, arg_specs[arg][2], accumulate
                ))
            tile_class = trace.recv_classes[class_id]
            index = len(tile_class.starts)
            kinds.append(K_RWAIT)
            kinds.append(K_CALL)
            recv_pos.append(len(kinds))
            recv_bytes.append(tile_class.num_elements()
                              * tile_class.itemsize)
            kinds.append(K_RECV)
            tile_class.starts.append(start)
            tile_class.region_offsets.append(offset)
            tile_class.event_pos.append(len(kinds))
            tile_class.order.append(recv_ordinal)
            trace.recv_refs.append((class_id, index))
            trace.recv_sizes.append(sizes)
            recv_ordinal += 1
            kinds.append(K_COPY)
        elif tag == "init":
            _, dma_id, in_size, out_size = event
            trace.init_params = (dma_id, in_size, out_size)
            kinds.append(K_INIT)
        else:  # pragma: no cover - recorder only emits the tags above
            raise TraceUnsupported(f"unknown event {tag!r}")

    if trace.init_params is None and not recorder.preinitialized:
        raise TraceUnsupported("driver never initialized the DMA engine")
    if trace.init_params is None:
        # Preinitialized body: the replay reuses the runtime's live
        # engine, but the staged-size bounds were still enforced above.
        trace.region_sizes = (recorder.input_size, recorder.output_size)
    # Read-after-write hazard: the replay gathers all staged tile data
    # up front, so a driver that re-sends data it received earlier in
    # the same run (an argument acting as both accelerator input and
    # output, receive before send) cannot be replayed from a snapshot.
    first_recv: Dict[int, int] = {}
    for tile_class in trace.recv_classes:
        if tile_class.event_pos:
            pos = min(tile_class.event_pos)
            arg = tile_class.arg
            first_recv[arg] = min(first_recv.get(arg, pos), pos)
    for tile_class in trace.send_classes:
        if tile_class.event_pos and tile_class.arg in first_recv \
                and max(tile_class.event_pos) > first_recv[tile_class.arg]:
            raise TraceUnsupported(
                "argument is sent after being received (read-after-write)"
            )
    trace.kinds = np.asarray(kinds, dtype=np.int8)
    trace.num_events = len(kinds)
    trace.staged_is_word = np.asarray(staged_w, dtype=np.uint8)
    trace.staged_values = np.asarray(staged_v, dtype=np.int64)
    trace.staged_indices = np.asarray(staged_i, dtype=np.int64)
    trace.staged_widths = np.asarray(staged_n, dtype=np.int64)
    trace.word_pos = np.asarray(word_pos, dtype=np.int64)
    trace.word_offsets = np.asarray(word_offsets, dtype=np.int64)
    trace.word_values = np.asarray(word_values, dtype=np.int64)
    trace.flush_pos = np.asarray(flush_pos, dtype=np.int64)
    trace.flush_bytes = np.asarray(flush_bytes, dtype=np.int64)
    trace.recv_pos = np.asarray(recv_pos, dtype=np.int64)
    trace.recv_bytes = np.asarray(recv_bytes, dtype=np.int64)
    for tile_class in trace.send_classes + trace.recv_classes:
        tile_class.finalize()
    trace.recv_disjoint = [
        _scatter_is_disjoint(tile_class) for tile_class in trace.recv_classes
    ]
    return trace


def _scatter_is_disjoint(tile_class: _TileClass) -> bool:
    """True when distinct tile starts address disjoint element sets.

    Receives whose tiles overlap across *different* subview offsets
    cannot be scattered in vectorized rounds; the replay executor falls
    back to a sequential per-tile scatter for those classes.
    """
    starts = np.unique(tile_class.starts)
    if starts.size <= 1:
        return True
    if starts.size * tile_class.num_elements() > (1 << 24):
        return False  # don't spend memory proving it; stay sequential
    indices = _tile_indices(starts, tile_class.sizes,
                            tile_class.strides).reshape(-1)
    # Bitset membership beats a sort-based unique: one linear pass over
    # a bool array bounded by the touched index range.  Sparse tiles in
    # a huge argument would make that range-sized array explode, so
    # those fall back to the sort (the count guard above only bounds
    # the index COUNT, not the range).
    base = int(indices.min())
    span = int(indices.max()) - base + 1
    if span > (1 << 26):
        return np.unique(indices).size == indices.size
    seen = np.zeros(span, dtype=bool)
    seen[indices - base] = True
    return int(np.count_nonzero(seen)) == indices.size


def _tile_indices(starts: np.ndarray, sizes, strides) -> np.ndarray:
    """Flat element indices of each tile: shape (T, *sizes)."""
    rank = len(sizes)
    idx = starts.reshape((-1,) + (1,) * rank)
    for axis, (size, stride) in enumerate(zip(sizes, strides)):
        shape = [1] * (rank + 1)
        shape[axis + 1] = size
        idx = idx + (np.arange(size, dtype=np.int64) * stride).reshape(shape)
    return idx


# -- accelerator decoding ---------------------------------------------------

class DecodedPlan:
    """Instruction-level view of one trace for one accelerator config."""

    def __init__(self):
        #: "matmul" pushes the *sum* of its pending tile products;
        #: "conv" pushes the *stack* of its pending window dot-products.
        self.kind = "matmul"
        #: Accelerator cycles scheduled at each flush (ordered float
        #: sums, replicating ``process_stream``'s accumulation), and the
        #: number of instructions retired per flush.
        self.flush_cycles: List[float] = []
        self.flush_instructions: List[int] = []
        # Compute records (matmul: tile product; conv: window dot).
        self.compute_a: List[int] = []      # packed (class, idx) or -1
        self.compute_b: List[int] = []
        self.compute_geom: List[Tuple[int, int, int]] = []
        self.compute_push: List[int] = []   # push ordinal, -1 = dropped
        self.push_counts: List[int] = []
        self.push_flush: List[int] = []
        # Final accelerator state.
        self.final_config: Tuple = ()
        self.final_a: int = -1
        self.final_b: int = -1
        self.out_words_per_push: List[int] = []

    @staticmethod
    def pack(class_id: int, index: int) -> int:
        return (class_id << 40) | index


def decode_key(accelerator: StreamAccelerator) -> Tuple:
    """The accelerator-configuration key a decoded plan is cached under.

    Also folded into MetricsPlan fingerprints: the decoded plan's
    accelerator cycle charges are part of the metrics plane.
    """
    if type(accelerator) is MatMulAccelerator:
        return ("matmul", accelerator.size, accelerator.version,
                str(accelerator.dtype))
    if type(accelerator) is ConvAccelerator:
        return ("conv", accelerator.max_ic, accelerator.max_fhw,
                accelerator.max_slice, str(accelerator.dtype))
    raise TraceUnsupported(
        f"no trace decoder for {type(accelerator).__name__}"
    )


def decode_for_accelerator(trace: DriverTrace,
                           accelerator: StreamAccelerator) -> DecodedPlan:
    """Build (or fetch) the instruction plan for one accelerator config."""
    key = decode_key(accelerator)
    if key not in trace.decoded:
        if key[0] == "matmul":
            trace.decoded[key] = _decode_matmul(trace, accelerator)
        else:
            trace.decoded[key] = _decode_conv(trace, accelerator)
    plan = trace.decoded[key]
    if isinstance(plan, TraceUnsupported):
        raise plan
    return plan


class _ItemQueue:
    """The staged-word stream as the accelerator's state machine sees it.

    The trace's staged-item arrays are unpacked once into parallel
    lists plus a word prefix sum, so the decoders' per-item steps are
    plain list reads — ``available_words`` is ``cum[limit] - cum[head]``,
    no incremental bookkeeping — which matters because the fallback
    decoders are per-item Python loops over streams that reach hundreds
    of thousands of items.  (The common case never builds one: the C
    decoders in :mod:`repro.soc._native` read the arrays directly.)
    """

    __slots__ = ("n", "is_word", "values", "indices", "widths", "cum",
                 "head", "limit", "visible")

    def __init__(self, trace: "DriverTrace"):
        self.n = trace.num_staged_items
        self.is_word = [bool(w) for w in trace.staged_is_word.tolist()]
        #: word value for word items, class id for tile items.
        self.values = trace.staged_values.tolist()
        self.indices = trace.staged_indices.tolist()
        self.widths = trace.staged_widths.tolist()
        self.cum = [0] + np.cumsum(trace.staged_widths).tolist()
        self.head = 0
        self.limit = 0          # items visible so far (flush boundary)
        self.visible = 0        # words visible so far

    def reveal(self, limit: int) -> None:
        self.limit = limit
        self.visible = self.cum[limit]

    @property
    def available_words(self) -> int:
        return self.visible - self.cum[self.head]

    def peek_opcode(self) -> Optional[int]:
        if self.head >= self.limit:
            return None
        if not self.is_word[self.head]:
            raise TraceUnsupported("tile data where an opcode was expected")
        return self.values[self.head]

    def pop_opcode(self) -> None:
        self.head += 1

    def pop_words(self, count: int) -> List[int]:
        values = []
        while len(values) < count:
            if self.head >= self.limit:
                raise TraceUnsupported("instruction data missing")
            if not self.is_word[self.head]:
                raise TraceUnsupported("tile data where words were expected")
            values.append(self.values[self.head])
            self.head += 1
        return values

    def pop_tile(self, words: int) -> Tuple[int, int]:
        head = self.head
        if head >= self.limit:
            raise TraceUnsupported("instruction tile missing")
        if self.is_word[head] or self.widths[head] != words:
            raise TraceUnsupported("staged data does not match tile shape")
        self.head = head + 1
        return self.values[head], self.indices[head]


def _stream_arrays(trace: DriverTrace):
    """Contiguous stream arrays + word prefix sum for the C decoders."""
    is_word = np.ascontiguousarray(trace.staged_is_word)
    values = np.ascontiguousarray(trace.staged_values)
    indices = np.ascontiguousarray(trace.staged_indices)
    cum = np.zeros(trace.num_staged_items + 1, dtype=np.int64)
    np.cumsum(trace.staged_widths, out=cum[1:])
    limits = np.ascontiguousarray(
        np.asarray(trace.flush_item_counts, dtype=np.int64)
    )
    return is_word, values, indices, cum, limits


_MICRO_CODES = {"load_a": 0, "load_b": 1, "compute": 2, "push_c": 3,
                "configure": 4, "reset": 5}


def _native_decode_matmul(trace: DriverTrace,
                          accel: MatMulAccelerator) -> Optional[DecodedPlan]:
    """C fast path for the matmul stream decoder (None = use Python)."""
    from ..soc import _native  # late bind: tests patch native_lib

    lib = _native.native_lib()
    if lib is None:
        return None
    import ctypes

    is_word, values, indices, cum, limits = _stream_arrays(trace)
    names = VERSION_OPCODES[accel.version]
    literals = np.asarray([MATMUL_LITERALS[n] for n in names],
                          dtype=np.int64)
    progs = [[_MICRO_CODES[p] for p in _MICRO_OPS[n]] for n in names]
    prog_off = np.zeros(len(progs) + 1, dtype=np.int64)
    np.cumsum([len(p) for p in progs], out=prog_off[1:])
    prog = np.asarray([c for p in progs for c in p], dtype=np.int64)

    n_items = trace.num_staged_items
    cap = max(n_items, 1)
    comp_a = np.empty(cap, dtype=np.int64)
    comp_b = np.empty(cap, dtype=np.int64)
    comp_m = np.empty(cap, dtype=np.int64)
    comp_n = np.empty(cap, dtype=np.int64)
    comp_k = np.empty(cap, dtype=np.int64)
    comp_push = np.empty(cap, dtype=np.int64)
    push_counts = np.empty(cap, dtype=np.int64)
    push_flush = np.empty(cap, dtype=np.int64)
    out_words = np.empty(cap, dtype=np.int64)
    flush_cycles = np.zeros(limits.size, dtype=np.float64)
    flush_instr = np.zeros(limits.size, dtype=np.int64)
    final_state = np.zeros(5, dtype=np.int64)
    counts = np.zeros(2, dtype=np.int64)

    i64p = ctypes.POINTER(ctypes.c_int64)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    f64p = ctypes.POINTER(ctypes.c_double)
    error = lib.decode_matmul_stream(
        is_word.ctypes.data_as(u8p), values.ctypes.data_as(i64p),
        indices.ctypes.data_as(i64p), cum.ctypes.data_as(i64p), n_items,
        limits.ctypes.data_as(i64p), limits.size,
        literals.ctypes.data_as(i64p), prog_off.ctypes.data_as(i64p),
        prog.ctypes.data_as(i64p), literals.size,
        accel.size_quantum, accel.buffer_capacity,
        float(accel.ops_per_cycle), accel.size,
        comp_a.ctypes.data_as(i64p), comp_b.ctypes.data_as(i64p),
        comp_m.ctypes.data_as(i64p), comp_n.ctypes.data_as(i64p),
        comp_k.ctypes.data_as(i64p), comp_push.ctypes.data_as(i64p),
        push_counts.ctypes.data_as(i64p), push_flush.ctypes.data_as(i64p),
        out_words.ctypes.data_as(i64p),
        flush_cycles.ctypes.data_as(f64p), flush_instr.ctypes.data_as(i64p),
        final_state.ctypes.data_as(i64p), counts.ctypes.data_as(i64p),
    )
    if error:
        return None
    n_comp, n_push = int(counts[0]), int(counts[1])
    plan = DecodedPlan()
    plan.flush_cycles = flush_cycles
    plan.flush_instructions = flush_instr
    plan.compute_a = comp_a[:n_comp].copy()
    plan.compute_b = comp_b[:n_comp].copy()
    plan.compute_geom = np.stack(
        [comp_m[:n_comp], comp_n[:n_comp], comp_k[:n_comp]], axis=1
    ) if n_comp else np.zeros((0, 3), dtype=np.int64)
    plan.compute_push = comp_push[:n_comp].copy()
    plan.push_counts = push_counts[:n_push].copy()
    plan.push_flush = push_flush[:n_push].copy()
    plan.out_words_per_push = out_words[:n_push].copy()
    plan.final_config = (int(final_state[0]), int(final_state[1]),
                         int(final_state[2]))
    plan.final_a = int(final_state[3])
    plan.final_b = int(final_state[4])
    _match_pushes_to_recvs(trace, plan)
    return plan


def _native_decode_conv(trace: DriverTrace,
                        accel: ConvAccelerator) -> Optional[DecodedPlan]:
    """C fast path for the conv stream decoder (None = use Python)."""
    from ..soc import _native

    lib = _native.native_lib()
    if lib is None:
        return None
    import ctypes

    is_word, values, indices, cum, limits = _stream_arrays(trace)
    n_items = trace.num_staged_items
    cap = max(n_items, 1)
    comp_a = np.empty(cap, dtype=np.int64)
    comp_b = np.empty(cap, dtype=np.int64)
    comp_k = np.empty(cap, dtype=np.int64)
    comp_push = np.empty(cap, dtype=np.int64)
    push_counts = np.empty(cap, dtype=np.int64)
    push_flush = np.empty(cap, dtype=np.int64)
    out_words = np.empty(cap, dtype=np.int64)
    flush_cycles = np.zeros(limits.size, dtype=np.float64)
    flush_instr = np.zeros(limits.size, dtype=np.int64)
    final_state = np.zeros(3, dtype=np.int64)
    counts = np.zeros(2, dtype=np.int64)

    i64p = ctypes.POINTER(ctypes.c_int64)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    f64p = ctypes.POINTER(ctypes.c_double)
    error = lib.decode_conv_stream(
        is_word.ctypes.data_as(u8p), values.ctypes.data_as(i64p),
        indices.ctypes.data_as(i64p), cum.ctypes.data_as(i64p), n_items,
        limits.ctypes.data_as(i64p), limits.size,
        CONV_LITERALS["sIcO"], CONV_LITERALS["sF"], CONV_LITERALS["rO"],
        CONV_LITERALS["cfg_fsize"], CONV_LITERALS["cfg_ic"],
        accel.max_ic, accel.max_fhw, accel.max_slice,
        float(CONV_OPS_PER_CYCLE),
        comp_a.ctypes.data_as(i64p), comp_b.ctypes.data_as(i64p),
        comp_k.ctypes.data_as(i64p), comp_push.ctypes.data_as(i64p),
        push_counts.ctypes.data_as(i64p), push_flush.ctypes.data_as(i64p),
        out_words.ctypes.data_as(i64p),
        flush_cycles.ctypes.data_as(f64p), flush_instr.ctypes.data_as(i64p),
        final_state.ctypes.data_as(i64p), counts.ctypes.data_as(i64p),
    )
    if error:
        return None
    n_comp, n_push = int(counts[0]), int(counts[1])
    plan = DecodedPlan()
    plan.kind = "conv"
    plan.flush_cycles = flush_cycles
    plan.flush_instructions = flush_instr
    plan.compute_a = comp_a[:n_comp].copy()
    plan.compute_b = comp_b[:n_comp].copy()
    geom = np.ones((n_comp, 3), dtype=np.int64)
    geom[:, 2] = comp_k[:n_comp]
    plan.compute_geom = geom
    plan.compute_push = comp_push[:n_comp].copy()
    plan.push_counts = push_counts[:n_push].copy()
    plan.push_flush = push_flush[:n_push].copy()
    plan.out_words_per_push = out_words[:n_push].copy()
    plan.final_config = (int(final_state[0]), int(final_state[1]))
    plan.final_b = int(final_state[2])
    _match_pushes_to_recvs(trace, plan)
    return plan


def _decode_matmul(trace: DriverTrace,
                   accel: MatMulAccelerator) -> DecodedPlan:
    try:
        plan = _native_decode_matmul(trace, accel)
        if plan is not None:
            return plan
        return _decode_matmul_inner(trace, accel)
    except TraceUnsupported as exc:
        return exc


def _decode_matmul_inner(trace: DriverTrace,
                         accel: MatMulAccelerator) -> DecodedPlan:
    plan = DecodedPlan()
    literal_to_name = {
        MATMUL_LITERALS[name]: name for name in VERSION_OPCODES[accel.version]
    }
    tile_m = tile_n = tile_k = accel.size
    quantum = accel.size_quantum
    capacity = accel.buffer_capacity
    ops_per_cycle = accel.ops_per_cycle
    a_src = b_src = -1
    pending: List[int] = []     # compute ordinals since last push/reset
    queue = _ItemQueue(trace)

    def refresh_needs() -> Dict[int, int]:
        needs: Dict[int, int] = {}
        for literal, name in literal_to_name.items():
            total = 0
            for primitive in _MICRO_OPS[name]:
                if primitive == "load_a":
                    total += tile_m * tile_k
                elif primitive == "load_b":
                    total += tile_k * tile_n
                elif primitive == "configure":
                    total += 3
            needs[literal] = total
        return needs

    needs_map = refresh_needs()

    for flush_index, item_limit in enumerate(trace.flush_item_counts):
        queue.reveal(item_limit)
        cycles = 0.0
        instructions = 0
        while True:
            literal = queue.peek_opcode()
            if literal is None:
                break
            name = literal_to_name.get(literal)
            if name is None:
                raise TraceUnsupported(f"unknown opcode {literal:#x}")
            if queue.available_words - 1 < needs_map[literal]:
                break  # partial instruction waits for the next burst
            queue.pop_opcode()
            opcode_cycles = 0.0
            for primitive in _MICRO_OPS[name]:
                if primitive == "load_a":
                    class_id, index = queue.pop_tile(tile_m * tile_k)
                    a_src = DecodedPlan.pack(class_id, index)
                    opcode_cycles += 0.0
                elif primitive == "load_b":
                    class_id, index = queue.pop_tile(tile_k * tile_n)
                    b_src = DecodedPlan.pack(class_id, index)
                    opcode_cycles += 0.0
                elif primitive == "compute":
                    macs = tile_m * tile_n * tile_k
                    pending.append(len(plan.compute_a))
                    plan.compute_a.append(a_src)
                    plan.compute_b.append(b_src)
                    plan.compute_geom.append((tile_m, tile_n, tile_k))
                    plan.compute_push.append(-1)
                    opcode_cycles += 2.0 * macs / ops_per_cycle
                elif primitive == "push_c":
                    push = len(plan.push_counts)
                    for ordinal in pending:
                        plan.compute_push[ordinal] = push
                    plan.push_counts.append(len(pending))
                    plan.push_flush.append(flush_index)
                    plan.out_words_per_push.append(tile_m * tile_n)
                    pending = []
                    opcode_cycles += 0.0
                elif primitive == "configure":
                    tile_m, tile_n, tile_k = queue.pop_words(3)
                    for value in (tile_m, tile_n, tile_k):
                        if value <= 0 or value % quantum:
                            raise TraceUnsupported("invalid cfg tile size")
                    for elements in (tile_m * tile_k, tile_k * tile_n,
                                     tile_m * tile_n):
                        if elements > capacity:
                            raise TraceUnsupported("cfg exceeds capacity")
                    a_src = b_src = -1
                    pending = []
                    needs_map = refresh_needs()
                    opcode_cycles += 0.0
                elif primitive == "reset":
                    a_src = b_src = -1
                    pending = []
                    opcode_cycles += 0.0
            cycles += opcode_cycles
            instructions += 1
        plan.flush_cycles.append(cycles)
        plan.flush_instructions.append(instructions)

    if queue.head != trace.num_staged_items:
        raise TraceUnsupported("staged data left unconsumed in the stream")
    if pending:
        raise TraceUnsupported("computes left unreceived at driver exit")
    _match_pushes_to_recvs(trace, plan)
    plan.final_config = (tile_m, tile_n, tile_k)
    plan.final_a = a_src
    plan.final_b = b_src
    return plan


def _decode_conv(trace: DriverTrace, accel: ConvAccelerator) -> DecodedPlan:
    try:
        plan = _native_decode_conv(trace, accel)
        if plan is not None:
            return plan
        return _decode_conv_inner(trace, accel)
    except TraceUnsupported as exc:
        return exc


def _decode_conv_inner(trace: DriverTrace,
                       accel: ConvAccelerator) -> DecodedPlan:
    plan = DecodedPlan()
    plan.kind = "conv"
    # Decoding assumes the constructor-default configuration; the replay
    # executor validates the live instance against it on every run.
    ic, fhw = 1, 1
    filter_src = -1
    filter_words = 1  # the reset-state filter is a single zero element
    pending: List[int] = []
    queue = _ItemQueue(trace)
    lit_sico = CONV_LITERALS["sIcO"]
    lit_sf = CONV_LITERALS["sF"]
    lit_ro = CONV_LITERALS["rO"]
    lit_fsize = CONV_LITERALS["cfg_fsize"]
    lit_ic = CONV_LITERALS["cfg_ic"]

    for flush_index, item_limit in enumerate(trace.flush_item_counts):
        queue.reveal(item_limit)
        cycles = 0.0
        instructions = 0
        while True:
            literal = queue.peek_opcode()
            if literal is None:
                break
            window = ic * fhw * fhw
            needs = {lit_sico: window, lit_sf: window, lit_ro: 0,
                     lit_fsize: 1, lit_ic: 1}.get(literal)
            if needs is None:
                raise TraceUnsupported(f"unknown opcode {literal:#x}")
            if queue.available_words - 1 < needs:
                break
            queue.pop_opcode()
            if literal == lit_fsize:
                value = queue.pop_words(1)[0]
                if not 1 <= value <= accel.max_fhw:
                    raise TraceUnsupported("filter size out of range")
                fhw = value
            elif literal == lit_ic:
                value = queue.pop_words(1)[0]
                if not 1 <= value <= accel.max_ic:
                    raise TraceUnsupported("iC out of range")
                ic = value
            elif literal == lit_sf:
                class_id, index = queue.pop_tile(window)
                filter_src = DecodedPlan.pack(class_id, index)
                filter_words = window
                pending = []
            elif literal == lit_sico:
                if len(pending) >= accel.max_slice:
                    raise TraceUnsupported("output slice buffer overflow")
                if filter_words != window:
                    raise TraceUnsupported("window/filter geometry mismatch")
                class_id, index = queue.pop_tile(window)
                pending.append(len(plan.compute_a))
                plan.compute_a.append(DecodedPlan.pack(class_id, index))
                plan.compute_b.append(filter_src)
                plan.compute_geom.append((1, 1, window))
                plan.compute_push.append(-1)
                cycles += 2.0 * window / CONV_OPS_PER_CYCLE
            elif literal == lit_ro:
                if not pending:
                    raise TraceUnsupported("rO with an empty slice buffer")
                push = len(plan.push_counts)
                for ordinal in pending:
                    plan.compute_push[ordinal] = push
                plan.push_counts.append(len(pending))
                plan.push_flush.append(flush_index)
                plan.out_words_per_push.append(len(pending))
                pending = []
            instructions += 1
        plan.flush_cycles.append(cycles)
        plan.flush_instructions.append(instructions)

    if queue.head != trace.num_staged_items:
        raise TraceUnsupported("staged data left unconsumed in the stream")
    if pending:
        raise TraceUnsupported("windows left unreceived at driver exit")
    _match_pushes_to_recvs(trace, plan)
    plan.final_config = (ic, fhw)
    plan.final_b = filter_src
    return plan


def _match_pushes_to_recvs(trace: DriverTrace, plan: DecodedPlan) -> None:
    """Receives pop pushed outputs in FIFO order; sizes must line up."""
    n = len(trace.recv_refs)
    if len(plan.out_words_per_push) != n:
        raise TraceUnsupported("push/receive count mismatch")
    if n == 0:
        return
    class_ids = np.fromiter((c for c, _ in trace.recv_refs),
                            dtype=np.int64, count=n)
    class_words = np.asarray(
        [tc.num_elements() * tc.itemsize // 4
         for tc in trace.recv_classes], dtype=np.int64,
    )
    out_words = np.asarray(plan.out_words_per_push, dtype=np.int64)
    if (out_words != class_words[class_ids]).any():
        raise TraceUnsupported("push/receive size mismatch")
    # FIFO discipline: each push must precede its receive in time.
    push_flush = np.asarray(plan.push_flush, dtype=np.int64)
    if (trace.flush_pos[push_flush] > trace.recv_pos).any():
        raise TraceUnsupported("receive precedes its pushed output")
