"""Trace replay: execute a recorded driver schedule as batched numpy.

Given a :class:`~repro.execution.trace.DriverTrace` and the decoded
instruction plan for the attached accelerator, :class:`ReplayExecutor`
reproduces one kernel invocation exactly — bit-identical
:class:`PerfCounters`, output arrays, and board/accelerator state —
split into two explicit planes:

* the **data plane** (:meth:`_gather` → :meth:`_compute_functional` →
  :meth:`_scatter_receives`, plus the staging-region payload writes):
  pure numpy over the tile payloads.  All staged tiles of a class are
  bulk-gathered with one strided fancy-index; all accelerator tile
  products of a flow segment run as one batched matmul (with the
  guarded exact-float64 shortcut for integer data, which is
  modular-arithmetic-identical to the per-tile path); received tiles
  are scattered back in duplicate-free vectorized rounds that preserve
  accumulate order.  This plane runs on every invocation — it is the
  only part that touches input data.

* the **metrics plane** (:mod:`repro.execution.metrics`): every
  performance-model quantity — per-event copy/cache charges, the exact
  sequential clock/stall timeline, cache LRU end-state, DMA/accelerator
  statistics, and the staging regions' last-writer maps.  It is a pure
  function of the trace and the runtime configuration, so it is
  evaluated once per ``(trace, fingerprint)`` into a cached,
  serializable :class:`~repro.execution.metrics.MetricsPlan` and applied
  in O(state) on subsequent invocations.  First-time (cold) builds are
  themselves incremental and shared: a ``plan_source`` supplied by a
  :class:`~repro.execution.model_plan.ModelSession` threads the
  session's resumable LRU characterization into each build, expensive
  build sub-products are memoized across builds with matching trace
  content, and :func:`~repro.execution.prebuild.prebuild_plans` can
  pay the whole cold path up front on a worker pool.  Wherever the
  build runs, its seconds land in ``metrics_plan_build_s`` — pool
  workers report stage-timing deltas that merge back into the parent,
  so the accounting is placement-independent.

Any assumption violation raises :class:`ReplayUnsupported`; the caller
falls back to per-tile execution.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from .. import faults
from ..accelerators.conv import ConvAccelerator
from ..accelerators.matmul import MatMulAccelerator
from ..numerics import float64_exact_bound, max_abs
from ..soc.dma_engine import DmaEngine
from . import metrics
from .trace import (
    DecodedPlan,
    DriverTrace,
    STAGE_TIMINGS,
    TraceUnsupported,
    add_stage_time,
    _tile_indices,
    decode_for_accelerator,
    decode_key,
)

ReplayUnsupported = TraceUnsupported

#: Upper bound on elements materialized per batched compute block.
_BLOCK_ELEMENTS = 1 << 23


def replay_kernel(trace: DriverTrace, board, rt, descriptors,
                  double_buffered: bool, plan_source=None) -> None:
    """Execute one invocation of a traced kernel against ``board``.

    ``plan_source`` optionally overrides how the metrics plane is
    obtained — ``(executor, decode_key) -> MetricsPlan`` — and is how a
    :class:`~repro.execution.model_plan.ModelSession` serves fused
    per-step sub-plans; ``None`` uses the per-kernel
    :func:`~repro.execution.metrics.obtain_plan` path.
    """
    start = time.perf_counter()
    try:
        # Fault hook: fires before any board/descriptor mutation, so
        # the per-tile fallback starts from an untouched state.
        if faults.fires("replay") == "fail":
            raise ReplayUnsupported("injected replay fault")
        accelerator = board.accelerator
        if accelerator is None:
            raise ReplayUnsupported("no accelerator attached")
        plan = decode_for_accelerator(trace, accelerator)
        executor = ReplayExecutor(trace, plan, board, rt, descriptors,
                                  double_buffered, plan_source)
        executor.execute()
    finally:
        add_stage_time("replay_s", time.perf_counter() - start)


class _PushRows:
    """Lazy ``push_data``: ordinal -> row view of its receive buffer.

    Push payloads live in per-receive-class row matrices; only the
    rarely-taken fallback paths (sequential scatters, uneven push runs,
    region winners) need per-ordinal views, so they are materialized on
    demand instead of building tens of thousands up front.
    """

    __slots__ = ("buffers", "cls", "row")

    def __init__(self, buffers, cls, row):
        self.buffers = buffers
        self.cls = cls
        self.row = row

    def __getitem__(self, ordinal: int) -> np.ndarray:
        return self.buffers[int(self.cls[ordinal])][int(self.row[ordinal])]


class ReplayExecutor:
    def __init__(self, trace: DriverTrace, plan: DecodedPlan, board, rt,
                 descriptors, double_buffered: bool, plan_source=None):
        self.trace = trace
        self.plan = plan
        self.board = board
        self.rt = rt
        self.descriptors = descriptors
        self.double_buffered = double_buffered
        self.plan_source = plan_source
        self.engine: Optional[DmaEngine] = None
        #: Per-class full flat-index arrays, memoized for the replay's
        #: lifetime: operand tiles are re-gathered across many compute
        #: blocks and the strided index lattice is identical each time.
        self._index_cache: Dict = {}
        self._validate()

    # -- validation -------------------------------------------------------
    def _validate(self) -> None:
        trace, board = self.trace, self.board
        if len(self.descriptors) != len(trace.arg_specs):
            raise ReplayUnsupported("argument arity changed")
        for desc, (sizes, strides, itemsize, dtype) in zip(
            self.descriptors, trace.arg_specs
        ):
            if (desc.sizes != sizes or desc.strides != strides
                    or desc.itemsize != itemsize
                    or str(desc.dtype) != dtype):
                raise ReplayUnsupported("argument shape changed")
        if board.caches.line_size < 8:
            raise ReplayUnsupported("sub-word cache lines")
        if trace.init_params is None:
            # Preinitialized (manual-driver) trace: the live engine the
            # replay will reuse must exist and match the recorded
            # region geometry.  Checked here — before any mutation —
            # so execute()'s fallback guarantee holds.
            engine = self.rt.dma
            if engine is None:
                raise ReplayUnsupported("runtime engine not initialized")
            if (engine.input_region.size, engine.output_region.size) \
                    != trace.region_sizes:
                raise ReplayUnsupported("engine region sizes changed")
        accel = board.accelerator
        if len(accel.in_fifo) or len(accel.out_fifo):
            raise ReplayUnsupported("accelerator streams not drained")
        accel_dtype = str(accel.dtype)
        for tile_class in trace.send_classes + trace.recv_classes:
            if trace.arg_specs[tile_class.arg][3] != accel_dtype:
                raise ReplayUnsupported("tile dtype differs from stream "
                                        "dtype")
        if type(accel) is MatMulAccelerator:
            if (accel.tile_m, accel.tile_n, accel.tile_k) != (
                accel.size, accel.size, accel.size
            ):
                raise ReplayUnsupported("accelerator not in default config")
        elif type(accel) is ConvAccelerator:
            if accel.ic != 1 or accel.fhw != 1 or accel._slice:
                raise ReplayUnsupported("accelerator not in default config")

    # -- top level --------------------------------------------------------
    def execute(self) -> None:
        # The functional compute runs first: it is the only stage that
        # can still raise ReplayUnsupported, and it mutates nothing, so
        # a fallback to per-tile execution stays bit-identical.
        push_data = self._compute_functional()
        self._install_engine()
        # Metrics plane: cached per (trace, runtime-config/state
        # fingerprint), rebuilt from scratch on a miss — or served from
        # a fused ModelPlan when a session supplied a plan_source.
        source = self.plan_source or metrics.obtain_plan
        mplan = source(self, decode_key(self.board.accelerator))
        # Input-region reconstruction must read the argument arrays
        # before receives land in them: the recording guard guarantees
        # every send precedes the first receive of its argument, so the
        # pre-scatter arrays hold exactly the at-send-time values.
        self._apply_input_region(mplan)
        self._scatter_receives(push_data)
        metrics.apply_plan(self, mplan)
        self._apply_output_region(mplan, push_data)
        self._finalize_accelerator(self.board.accelerator)

    def _install_engine(self) -> None:
        if self.trace.init_params is None:
            # Preinitialized (manual-driver) trace: dma_init already ran
            # for real before the recorded body, so replay against the
            # runtime's live engine (validated by _validate) instead of
            # installing a fresh one.
            self.engine = self.rt.dma
            return
        dma_id, in_size, out_size = self.trace.init_params
        board = self.board
        self.engine = DmaEngine(dma_id, in_size, out_size, board.memory,
                                board.timing)
        board.install_dma(self.engine)
        self.rt.dma = self.engine

    # -- functional execution (data plane) --------------------------------
    def _class_table(self, class_id: int, is_recv: bool = False):
        """Memoized (inverse, unique-tile flat indices) of one class.

        Tile sweeps re-stage the same tiles every outer loop iteration
        (CPU-tiled drivers repeat each operand tile dozens of times), so
        the strided index lattice is built once over the *unique* tile
        starts and composed through ``inverse`` everywhere else.
        """
        key = ("tbl", is_recv, class_id)
        cached = self._index_cache.get(key, False)
        if cached is not False:
            return cached
        tile_class = (self.trace.recv_classes if is_recv
                      else self.trace.send_classes)[class_id]
        uniq, inverse = np.unique(tile_class.starts, return_inverse=True)
        if uniq.size * tile_class.num_elements() > (1 << 24):
            cached = None  # too large to keep around: gather per call
        else:
            desc = self.descriptors[tile_class.arg]
            idx_unique = _tile_indices(desc.offset + uniq,
                                       tile_class.sizes,
                                       tile_class.strides)
            cached = (inverse, idx_unique)
        self._index_cache[key] = cached
        return cached

    def _gather(self, class_id: int, indices: np.ndarray,
                is_recv: bool = False) -> np.ndarray:
        """Tiles (as flat element rows) for a subset of one class."""
        tile_class = (self.trace.recv_classes if is_recv
                      else self.trace.send_classes)[class_id]
        desc = self.descriptors[tile_class.arg]
        if not is_recv:
            vals = self._class_values(class_id)
            if vals is not None:
                inverse, _ = self._class_table(class_id)
                tiles = vals[inverse[indices]]
                return tiles.reshape(len(tiles), -1)
        table = self._class_table(class_id, is_recv)
        if table is not None:
            inverse, idx_unique = table
            tiles = desc.allocated[idx_unique[inverse[indices]]]
            return tiles.reshape(len(tiles), -1)
        starts = desc.offset + tile_class.starts[indices]
        idx = _tile_indices(starts, tile_class.sizes, tile_class.strides)
        tiles = desc.allocated[idx]
        return tiles.reshape(len(starts), -1)

    def _class_values(self, class_id: int,
                      cast=None) -> Optional[np.ndarray]:
        """Unique tiles of a send class as one (tiles, elements) matrix.

        Operand tiles are referenced by many compute blocks (every tile
        of A participates in a whole row of products), so the gather —
        and, for the exact-float compute paths, the f32/f64 conversion —
        is done once per *unique* tile instead of once per reference;
        row lookups compose with the class table's ``inverse``.
        """
        key = ("vals", cast, class_id)
        cached = self._index_cache.get(key, False)
        if cached is not False:
            return cached
        if cast is not None:
            base = self._class_values(class_id)
            vals = None if base is None else base.astype(cast)
        else:
            table = self._class_table(class_id, False)
            if table is None:
                vals = None  # too large to materialize: gather per call
            else:
                _, idx_unique = table
                tile_class = self.trace.send_classes[class_id]
                desc = self.descriptors[tile_class.arg]
                vals = desc.allocated[idx_unique].reshape(
                    idx_unique.shape[0], -1
                )
        self._index_cache[key] = vals
        return vals

    def _class_max(self, class_id: int) -> Optional[int]:
        """max(|values|) over a whole send class (exact Python int)."""
        key = ("max", class_id)
        cached = self._index_cache.get(key, False)
        if cached is not False:
            return cached
        vals = self._class_values(class_id)
        bound = None if vals is None else max_abs(vals)
        self._index_cache[key] = bound
        return bound

    @staticmethod
    def _packed_class(packed: np.ndarray) -> Optional[int]:
        missing = packed < 0
        if missing.all():
            return None  # all-zero operand
        return int(packed[~missing][0] >> 40)

    def _pair_cast(self, packed_a, packed_b, tk):
        """Exact-float election for one integer compute run.

        Every per-product partial sum is bounded by ``tk * max|a| *
        max|b|``; below 2**24 every such integer is exactly
        representable in float32, below 2**53 in float64, so the BLAS
        product is rounding-free and bit-identical to the per-tile
        integer accumulation (and the remaining cases are
        modular-identical through int64).  Uses whole-class maxima, so
        a run whose block maximum is lower may pick a wider type than
        the live engine's per-tile check — all paths are exact or
        modular-identical, so outputs do not change.  Returns the
        numpy cast dtype, ``None`` for the int64 path, or the string
        ``"uncached"`` when a class is too large to keep maxima for.
        """
        ca = self._packed_class(packed_a)
        ma = 0 if ca is None else self._class_max(ca)
        if ma is None:
            return "uncached"
        cb = self._packed_class(packed_b)
        mb = 0 if cb is None else self._class_max(cb)
        if mb is None:
            return "uncached"
        bound = tk * ma * mb
        if bound < 2 ** 24:
            return np.float32
        if bound < 2 ** 53:
            return np.float64
        return None

    def _compute_functional(self) -> List[np.ndarray]:
        """All accelerator outputs, batched per flow segment.

        Push payloads are written straight into per-receive-class
        row matrices (``self._recv_buffers``); ``push_data[ordinal]``
        is a row view, so the scatter stage can apply a whole class
        with zero re-packing.
        """
        plan = self.plan
        n_pushes = len(plan.push_counts)
        push_data: List[Optional[np.ndarray]] = [None] * n_pushes
        self._recv_buffers: Dict[int, np.ndarray] = {}
        if n_pushes and int(np.min(plan.push_counts)) == 0:
            # A push with no contributing computes has no payload the
            # functional batch can reconstruct.
            raise ReplayUnsupported("push with an empty compute set")
        n_computes = len(plan.compute_a)
        if n_computes == 0:
            return push_data
        accel_dtype = self.board.accelerator.dtype
        trace = self.trace
        for class_id, tile_class in enumerate(trace.recv_classes):
            n = len(tile_class.starts)
            if n:
                self._recv_buffers[class_id] = np.empty(
                    (n, tile_class.num_elements()), dtype=accel_dtype
                )
        if getattr(plan, "_push_class", None) is None:
            n_recvs = len(trace.recv_refs)
            plan._push_class = np.fromiter(
                (c for c, _ in trace.recv_refs), dtype=np.int64,
                count=n_recvs,
            )
            plan._push_row = np.fromiter(
                (i for _, i in trace.recv_refs), dtype=np.int64,
                count=n_recvs,
            )
        self._push_class = plan._push_class
        self._push_row = plan._push_row
        push_data = _PushRows(self._recv_buffers, self._push_class,
                              self._push_row)
        comp_a = np.asarray(plan.compute_a, dtype=np.int64)
        comp_b = np.asarray(plan.compute_b, dtype=np.int64)
        geom = np.asarray(plan.compute_geom, dtype=np.int64)
        push_of = np.asarray(plan.compute_push, dtype=np.int64)
        self._push_counts = np.asarray(plan.push_counts, dtype=np.int64)

        # Segment the compute sequence into runs of constant
        # (geometry, operand class) — the generated loop nests produce
        # long such runs — and process each run in bounded blocks.
        a_cls = np.where(comp_a >= 0, comp_a >> 40, -1)
        b_cls = np.where(comp_b >= 0, comp_b >> 40, -1)
        key = np.stack([geom[:, 0], geom[:, 1], geom[:, 2], a_cls, b_cls],
                       axis=1)
        change = np.any(key[1:] != key[:-1], axis=1)
        if plan.kind == "conv":
            # Window dots share one filter per run: split on filter swaps.
            change = change | (comp_b[1:] != comp_b[:-1])
        run_starts = np.r_[0, np.flatnonzero(change) + 1, n_computes]
        for lo, hi in zip(run_starts[:-1], run_starts[1:]):
            self._compute_run(int(lo), int(hi), comp_a, comp_b, geom,
                              push_of, push_data, accel_dtype)
        return push_data

    def _compute_run(self, lo, hi, comp_a, comp_b, geom, push_of,
                     push_data, accel_dtype) -> None:
        plan = self.plan
        tm, tn, tk = (int(v) for v in geom[lo])
        numel_out = tm * tn
        block = max(1, _BLOCK_ELEMENTS // max(tm * tk, tk * tn, numel_out))
        start = lo
        while start < hi:
            # Block boundaries must not split a push's compute run.
            end = min(start + block, hi)
            if end < hi:
                while end > start and push_of[end] >= 0 \
                        and push_of[end] == push_of[end - 1]:
                    end -= 1
                if end == start:  # a single push larger than the block
                    end = start + 1
                    while end < hi and push_of[end] == push_of[start]:
                        end += 1
            products = self._products(start, end, comp_a, comp_b,
                                      tm, tn, tk, accel_dtype)
            self._reduce_pushes(start, end, push_of, products, tm, tn,
                                accel_dtype, push_data)
            start = end

    def _operand(self, packed: np.ndarray, rows: int, shape, dtype,
                 cast=None):
        """Gather one operand side of a compute block (zeros for -1)."""
        missing = packed < 0
        any_missing = bool(missing.any())
        if any_missing and missing.all():
            return np.zeros((rows,) + shape, dtype=cast or dtype)
        if any_missing:
            class_id = int(packed[~missing][0] >> 40)
            index = np.where(missing, 0, packed & ((1 << 40) - 1))
        else:
            class_id = int(packed[0] >> 40)
            index = packed & ((1 << 40) - 1)
        src = self._class_values(class_id, cast=cast)
        if src is not None:
            inverse, _ = self._class_table(class_id)
            tiles = src[inverse[index]].reshape((rows,) + shape)
        else:
            tiles = self._gather(class_id, index).reshape((rows,) + shape)
            if cast is not None:
                tiles = tiles.astype(cast)
        if any_missing:
            tiles[missing] = 0  # fancy indexing returned a fresh array
        return tiles

    def _products(self, start, end, comp_a, comp_b, tm, tn, tk,
                  accel_dtype) -> np.ndarray:
        rows = end - start
        packed_a = comp_a[start:end]
        if self.plan.kind == "conv":
            # One dot product per window against the (shared) filter —
            # replicates ConvAccelerator._send_input_compute's exact
            # int64 arithmetic (exact-float BLAS when provably safe).
            packed_b = comp_b[start:end]
            if (packed_b != packed_b[0]).any():
                raise ReplayUnsupported("filter changes inside a push run")
            cast = self._pair_cast(packed_a, packed_b[:1], tk)
            if cast == "uncached":
                windows = self._operand(packed_a, rows, (1, tk),
                                        accel_dtype).reshape(rows, tk)
                filt = self._operand(packed_b[:1], 1, (1, tk),
                                     accel_dtype).reshape(tk)
                if float64_exact_bound(tk, windows, filt):
                    cast = np.float64
                    windows = windows.astype(cast)
                    filt = filt.astype(cast)
                else:
                    cast = None
            else:
                windows = self._operand(packed_a, rows, (1, tk),
                                        accel_dtype,
                                        cast=cast).reshape(rows, tk)
                filt = self._operand(packed_b[:1], 1, (1, tk), accel_dtype,
                                     cast=cast).reshape(tk)
            if cast is not None:
                values = (windows @ filt).astype(np.int64)
            else:
                values = windows.astype(np.int64) @ filt.astype(np.int64)
            return values.reshape(rows, 1, 1)
        packed_b = comp_b[start:end]
        if accel_dtype.kind != "i":
            a = self._operand(packed_a, rows, (tm, tk), accel_dtype)
            b = self._operand(packed_b, rows, (tk, tn), accel_dtype)
            return a @ b
        # Integer tiles: any exact-or-modular path is bit-identical
        # to the per-tile accumulation (wraparound is mod 2^32
        # regardless of where it happens).
        cast = self._pair_cast(packed_a, packed_b, tk)
        if cast == "uncached":
            a = self._operand(packed_a, rows, (tm, tk), accel_dtype)
            b = self._operand(packed_b, rows, (tk, tn), accel_dtype)
            if float64_exact_bound(tk, a, b):
                return (a.astype(np.float64)
                        @ b.astype(np.float64)).astype(np.int64)
            return a.astype(np.int64) @ b.astype(np.int64)
        a = self._operand(packed_a, rows, (tm, tk), accel_dtype, cast=cast)
        b = self._operand(packed_b, rows, (tk, tn), accel_dtype, cast=cast)
        if cast is not None:
            return (a @ b).astype(np.int64)
        return a.astype(np.int64) @ b.astype(np.int64)

    def _store_push_rows(self, uniq: np.ndarray, flat: np.ndarray,
                         push_data) -> None:
        """Write per-push payload rows into the receive-class buffers.

        When every push of the block lands in one class (the common
        case — a block stays within one flow segment), the whole write
        is a single fancy-index scatter into that class's row matrix.
        """
        classes = self._push_class[uniq]
        if classes.size and (classes == classes[0]).all():
            buffer = self._recv_buffers[int(classes[0])]
            buffer[self._push_row[uniq]] = flat
            return
        for i, p in enumerate(uniq):
            push_data[int(p)][:] = flat[i]

    def _reduce_pushes(self, start, end, push_of, products, tm, tn,
                       accel_dtype, push_data) -> None:
        """Fold a block of products into its pushes, preserving order."""
        plan = self.plan
        segment = push_of[start:end]
        kept = segment >= 0
        if not kept.any():
            return
        if kept.all():
            push_ids = segment
            prods = products
        else:
            push_ids = segment[kept]
            prods = products[kept]
        # Push ordinals are assigned in compute order, so the block's
        # sequence is already sorted: first occurrences mark the runs.
        uniq = push_ids[np.r_[True, push_ids[1:] != push_ids[:-1]]]
        counts = self._push_counts[uniq]
        if plan.kind == "conv":
            # Pushes drain the slice buffer: stack scalars in order.
            if counts.sum() != prods.shape[0]:
                raise ReplayUnsupported("push runs split across blocks")
            flat = prods.reshape(-1)
            if (counts == counts[0]).all():
                rows = flat.reshape(len(uniq), int(counts[0]))
                self._store_push_rows(
                    uniq, rows.astype(accel_dtype, copy=False), push_data
                )
                return
            offsets = np.r_[0, np.cumsum(counts)]
            for i, p in enumerate(uniq):
                values = flat[offsets[i]:offsets[i + 1]]
                push_data[int(p)][:] = np.asarray(values, dtype=accel_dtype)
            return
        if counts.sum() != prods.shape[0]:
            raise ReplayUnsupported("push runs split across blocks")
        if (counts == counts[0]).all():
            c = int(counts[0])
            stacked = prods.reshape(len(uniq), c, tm, tn)
            if accel_dtype.kind == "i":
                summed = stacked.sum(axis=1).astype(accel_dtype)
            else:
                summed = np.zeros((len(uniq), tm, tn), dtype=accel_dtype)
                for j in range(c):
                    summed += stacked[:, j]
            self._store_push_rows(uniq, summed.reshape(len(uniq), -1),
                                  push_data)
        else:
            offsets = np.r_[0, np.cumsum(counts)]
            for i, p in enumerate(uniq):
                chunk = prods[offsets[i]:offsets[i + 1]]
                if accel_dtype.kind == "i":
                    out = chunk.sum(axis=0).astype(accel_dtype)
                else:
                    out = np.zeros((tm, tn), dtype=accel_dtype)
                    for row in chunk:
                        out += row
                push_data[int(p)][:] = out.reshape(-1)

    def _scatter_receives(self, push_data: List[np.ndarray]) -> None:
        trace = self.trace
        # Receive classes are applied class-by-class below, which is
        # only order-safe when at most one class writes an argument;
        # multiple classes on one argument (e.g. store + accumulate
        # receives of the same tiles) replay strictly in event order.
        classes_per_arg: Dict[int, int] = {}
        for tile_class in trace.recv_classes:
            classes_per_arg[tile_class.arg] = \
                classes_per_arg.get(tile_class.arg, 0) + 1
        sequential_args = {arg for arg, count in classes_per_arg.items()
                           if count > 1}
        for ordinal, (class_id, index) in enumerate(
            trace.recv_refs if sequential_args else ()
        ):
            tile_class = trace.recv_classes[class_id]
            if tile_class.arg not in sequential_args:
                continue
            desc = self.descriptors[tile_class.arg]
            start = desc.offset + int(tile_class.starts[index])
            idx = _tile_indices(np.asarray([start], dtype=np.int64),
                                tile_class.sizes,
                                tile_class.strides).reshape(-1)
            data = push_data[ordinal].view(desc.dtype)
            if tile_class.accumulate:
                desc.allocated[idx] += data
            else:
                desc.allocated[idx] = data
        for class_id, tile_class in enumerate(trace.recv_classes):
            if tile_class.arg in sequential_args:
                continue
            desc = self.descriptors[tile_class.arg]
            n = len(tile_class.starts)
            if n == 0:
                continue
            # Buffer rows are already in tile-index order (push payloads
            # land directly in the class matrix, see _compute_functional).
            data = self._recv_buffers[class_id].view(desc.dtype)
            starts = desc.offset + tile_class.starts
            flat = desc.allocated
            accumulate = bool(tile_class.accumulate)
            table = self._class_table(class_id, is_recv=True)
            inverse = idx_unique = None
            if table is not None:
                inverse, idx_unique = table
            if not trace.recv_disjoint[class_id]:
                for i in range(n):
                    if idx_unique is not None:
                        idx = idx_unique[inverse[i]].reshape(-1)
                    else:
                        idx = _tile_indices(starts[i:i + 1],
                                            tile_class.sizes,
                                            tile_class.strides).reshape(-1)
                    if accumulate:
                        flat[idx] += data[i]
                    else:
                        flat[idx] = data[i]
                continue
            # Vectorized rounds: within a round every target is unique,
            # across rounds time order per target is preserved.
            occurrence = _occurrence_counts(tile_class.starts)
            for ro in range(int(occurrence.max()) + 1):
                sel = occurrence == ro
                if idx_unique is not None:
                    idx = idx_unique[inverse[sel]]
                else:
                    idx = _tile_indices(starts[sel], tile_class.sizes,
                                        tile_class.strides)
                rows = data[sel].reshape(idx.shape)
                if accumulate:
                    flat[idx] += rows
                else:
                    flat[idx] = rows

    # -- staging-region payloads (data plane, plan-indexed) ---------------
    def _apply_input_region(self, mplan) -> None:
        """Write the plan's winning input-region words/tiles.

        The winner index maps are schedule-only (computed once at plan
        build); the payload bytes come from the argument arrays here,
        so the rebuilt region matches the per-tile path bit-for-bit.
        """
        engine = self.engine
        if mplan.input_word_dest.size:
            engine.input_words[mplan.input_word_dest] = \
                mplan.input_word_values
        for class_id, tile_idx, dest_pos, src_pos in \
                mplan.input_tile_writes:
            rows = self._gather(class_id, tile_idx)
            words = np.ascontiguousarray(rows).view(np.uint32)
            engine.input_words[dest_pos] = words.reshape(-1)[src_pos]

    def _apply_output_region(self, mplan, push_data) -> None:
        """Write the plan's winning output-region receive payloads."""
        engine = self.engine
        for ordinal, dest_pos, src_pos in mplan.output_writes:
            data = np.ascontiguousarray(push_data[ordinal]).view(np.uint32)
            engine.output_words[dest_pos] = data[src_pos]

    # -- accelerator end-state (data plane: final operand tiles) ----------
    def _one_tile(self, packed: int, dtype) -> Optional[np.ndarray]:
        if packed < 0:
            return None
        class_id, index = packed >> 40, packed & ((1 << 40) - 1)
        return self._gather(
            class_id, np.asarray([index], dtype=np.int64)
        )[0].astype(dtype, copy=False)

    def _finalize_accelerator(self, accel) -> None:
        plan = self.plan
        if plan.kind == "conv":
            accel.ic, accel.fhw = plan.final_config
            accel._refresh_needs()
            last_filter = self._one_tile(plan.final_b, accel.dtype)
            if last_filter is not None:
                accel._filter = last_filter.reshape(-1)
            accel._slice = []
            return
        tm, tn, tk = plan.final_config
        accel.tile_m, accel.tile_n, accel.tile_k = tm, tn, tk
        accel._refresh_needs()
        last_a = self._one_tile(plan.final_a, accel.dtype)
        accel._a = last_a.reshape(tm, tk) if last_a is not None \
            else np.zeros((tm, tk), accel.dtype)
        last_b = self._one_tile(plan.final_b, accel.dtype)
        accel._b = last_b.reshape(tk, tn) if last_b is not None \
            else np.zeros((tk, tn), accel.dtype)
        accel._c = np.zeros((tm, tn), accel.dtype)


def _occurrence_counts(starts: np.ndarray) -> np.ndarray:
    """Per-event occurrence index of its start value, in event order."""
    order = np.argsort(starts, kind="stable")
    sorted_starts = starts[order]
    new_group = np.empty(starts.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_starts[1:], sorted_starts[:-1], out=new_group[1:])
    group_pos = np.flatnonzero(new_group)
    base = np.repeat(group_pos, np.diff(np.r_[group_pos, starts.size]))
    occurrence = np.empty(starts.size, dtype=np.int64)
    occurrence[order] = np.arange(starts.size) - base
    return occurrence
