"""Trace replay: execute a recorded driver schedule as batched numpy.

Given a :class:`~repro.execution.trace.DriverTrace` and the decoded
instruction plan for the attached accelerator, :class:`ReplayExecutor`
reproduces one kernel invocation exactly — bit-identical
:class:`PerfCounters`, output arrays, and board/accelerator state — but
with every per-tile Python step batched:

* **data movement** — all staged tiles of a class are bulk-gathered with
  one strided fancy-index; received tiles are scattered back in
  duplicate-free vectorized rounds that preserve accumulate order;
* **compute** — all accelerator tile products of a flow segment run as
  one batched matmul (with the guarded exact-float64 shortcut for
  integer data, which is modular-arithmetic-identical to the per-tile
  path);
* **cost** — cache traffic for the whole run is classified in one
  offline pass (:class:`~repro.soc.cache.OfflineLruSimulator`), per-event
  base costs come from the memoized copy plans, and a single tight
  timeline loop replays the exact sequence of clock/stall/accelerator
  floating-point operations the per-tile runtime would have performed
  (summation order matters for bit-identity, so that loop is the one
  part that stays sequential — a handful of float operations per event).

Any assumption violation raises :class:`ReplayUnsupported`; the caller
falls back to per-tile execution.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accelerators.conv import ConvAccelerator
from ..accelerators.matmul import MatMulAccelerator
from ..numerics import float64_exact_bound
from ..runtime.copy import CopyKinds, copy_charge_terms, plan_for_geometry
from ..soc._native import native_lib
from ..soc.cache import OfflineLruSimulator
from ..soc.dma_engine import DmaEngine
from .trace import (
    DecodedPlan,
    DriverTrace,
    K_CALL,
    K_COPY,
    K_FLUSH,
    K_INIT,
    K_LOOP,
    K_RECV,
    K_RWAIT,
    K_SUB,
    K_WORD,
    STAGE_TIMINGS,
    TraceUnsupported,
    _tile_indices,
    decode_for_accelerator,
)

ReplayUnsupported = TraceUnsupported

#: Upper bound on elements materialized per batched compute block.
_BLOCK_ELEMENTS = 1 << 23
#: Upper bound on cache-line stream entries classified per chunk.
_LINE_CHUNK = 1 << 24


def replay_kernel(trace: DriverTrace, board, rt, descriptors,
                  double_buffered: bool) -> None:
    """Execute one invocation of a traced kernel against ``board``."""
    start = time.perf_counter()
    try:
        accelerator = board.accelerator
        if accelerator is None:
            raise ReplayUnsupported("no accelerator attached")
        plan = decode_for_accelerator(trace, accelerator)
        executor = ReplayExecutor(trace, plan, board, rt, descriptors,
                                  double_buffered)
        executor.execute()
    finally:
        STAGE_TIMINGS["replay_s"] += time.perf_counter() - start


class ReplayExecutor:
    def __init__(self, trace: DriverTrace, plan: DecodedPlan, board, rt,
                 descriptors, double_buffered: bool):
        self.trace = trace
        self.plan = plan
        self.board = board
        self.rt = rt
        self.descriptors = descriptors
        self.double_buffered = double_buffered
        self.engine: Optional[DmaEngine] = None
        self._validate()

    # -- validation -------------------------------------------------------
    def _validate(self) -> None:
        trace, board = self.trace, self.board
        if len(self.descriptors) != len(trace.arg_specs):
            raise ReplayUnsupported("argument arity changed")
        for desc, (sizes, strides, itemsize, dtype) in zip(
            self.descriptors, trace.arg_specs
        ):
            if (desc.sizes != sizes or desc.strides != strides
                    or desc.itemsize != itemsize
                    or str(desc.dtype) != dtype):
                raise ReplayUnsupported("argument shape changed")
        if board.caches.line_size < 8:
            raise ReplayUnsupported("sub-word cache lines")
        if trace.init_params is None:
            # Preinitialized (manual-driver) trace: the live engine the
            # replay will reuse must exist and match the recorded
            # region geometry.  Checked here — before any mutation —
            # so execute()'s fallback guarantee holds.
            engine = self.rt.dma
            if engine is None:
                raise ReplayUnsupported("runtime engine not initialized")
            if (engine.input_region.size, engine.output_region.size) \
                    != trace.region_sizes:
                raise ReplayUnsupported("engine region sizes changed")
        accel = board.accelerator
        if len(accel.in_fifo) or len(accel.out_fifo):
            raise ReplayUnsupported("accelerator streams not drained")
        accel_dtype = str(accel.dtype)
        for tile_class in trace.send_classes + trace.recv_classes:
            if trace.arg_specs[tile_class.arg][3] != accel_dtype:
                raise ReplayUnsupported("tile dtype differs from stream "
                                        "dtype")
        if type(accel) is MatMulAccelerator:
            if (accel.tile_m, accel.tile_n, accel.tile_k) != (
                accel.size, accel.size, accel.size
            ):
                raise ReplayUnsupported("accelerator not in default config")
        elif type(accel) is ConvAccelerator:
            if accel.ic != 1 or accel.fhw != 1 or accel._slice:
                raise ReplayUnsupported("accelerator not in default config")

    # -- top level --------------------------------------------------------
    def execute(self) -> None:
        # The functional compute runs first: it is the only stage that
        # can still raise ReplayUnsupported, and it mutates nothing, so
        # a fallback to per-tile execution stays bit-identical.
        push_data = self._compute_functional()
        self._install_engine()
        cache_sim, miss_totals = self._charge_cache()
        # Input-region reconstruction must read the argument arrays
        # before receives land in them: the recording guard guarantees
        # every send precedes the first receive of its argument, so the
        # pre-scatter arrays hold exactly the at-send-time values.
        self._finalize_input_region()
        self._scatter_receives(push_data)
        self._run_timeline()
        self._finalize(cache_sim, miss_totals, push_data)

    def _install_engine(self) -> None:
        if self.trace.init_params is None:
            # Preinitialized (manual-driver) trace: dma_init already ran
            # for real before the recorded body, so replay against the
            # runtime's live engine (validated by _validate) instead of
            # installing a fresh one.
            self.engine = self.rt.dma
            return
        dma_id, in_size, out_size = self.trace.init_params
        board = self.board
        self.engine = DmaEngine(dma_id, in_size, out_size, board.memory,
                                board.timing)
        board.install_dma(self.engine)
        self.rt.dma = self.engine

    # -- cost binding -----------------------------------------------------
    def _copy_cost_tables(self):
        """Per-copy-event base costs and line-sequence blocks.

        Returns (counts, per_event setters) where every quantity is
        computed with the same floating-point expressions as
        ``charge_memref_copy`` — per alignment group, via the shared
        memoized copy plans.
        """
        trace = self.trace
        board = self.board
        timing = board.timing
        line = board.caches.line_size
        style = self.rt.copy_style
        region_bases = {False: self.engine.input_region.base,
                        True: self.engine.output_region.base}

        M = trace.num_events
        counts = np.zeros(M, dtype=np.int64)
        counts[trace.word_pos] = 1
        base_c = np.zeros(M)
        base_b = np.zeros(M)
        base_r = np.zeros(M)
        extra_c = np.zeros(M)
        extra_r = np.zeros(M)
        groups = []  # (event_pos, src_lines, dst_lines, plan)

        for is_recv, classes in ((False, trace.send_classes),
                                 (True, trace.recv_classes)):
            region_base = region_bases[is_recv]
            for tile_class in classes:
                desc = self.descriptors[tile_class.arg]
                sizes = tile_class.sizes
                strides = tile_class.strides
                itemsize = tile_class.itemsize
                rank = len(sizes)
                if rank:
                    row_length = sizes[-1]
                    inner_stride = strides[-1]
                else:
                    row_length, inner_stride = 1, 1
                use_fast = style == CopyKinds.SPECIALIZED \
                    and inner_stride == 1
                row_bytes = row_length * itemsize
                span_src = row_bytes if use_fast else \
                    ((row_length - 1) * abs(inner_stride) + 1) * itemsize
                src_start = (desc.base_address
                             + (desc.offset + tile_class.starts) * itemsize)
                dst_start = region_base + tile_class.region_offsets
                src_align = src_start % line
                dst_align = dst_start % line
                align_key = src_align * line + dst_align
                uniq, inverse = np.unique(align_key, return_inverse=True)
                accumulate = bool(tile_class.accumulate)
                for g, key in enumerate(uniq):
                    sel = inverse == g
                    plan = plan_for_geometry(
                        sizes, strides, itemsize, int(key // line),
                        int(key % line), span_src, row_bytes, line,
                    )
                    pos = tile_class.event_pos[sel]
                    counts[pos] = plan.num_lines
                    c0, r0, b0, c_extra, r_extra = copy_charge_terms(
                        plan, style, use_fast, row_length, accumulate,
                        timing,
                    )
                    base_c[pos] = c0
                    base_b[pos] = b0
                    base_r[pos] = r0
                    if accumulate:
                        extra_c[pos] = c_extra
                        extra_r[pos] = r_extra
                    groups.append((pos, src_start[sel] // line,
                                   dst_start[sel] // line, plan))
        return counts, base_c, base_b, base_r, extra_c, extra_r, groups

    def _charge_cache(self):
        """Classify the whole run's cache traffic; per-event penalties."""
        trace = self.trace
        board = self.board
        timing = board.timing
        line = board.caches.line_size
        (counts, base_c, base_b, base_r, extra_c, extra_r,
         groups) = self._copy_cost_tables()
        M = trace.num_events
        boundaries = np.zeros(M + 1, dtype=np.int64)
        np.cumsum(counts, out=boundaries[1:])
        total_lines = int(boundaries[-1])

        word_lines = (self.engine.input_region.base
                      + trace.word_offsets) // line

        sim = OfflineLruSimulator(board.caches)
        l1_hits = np.zeros(M, dtype=np.int64)
        l1_miss = np.zeros(M, dtype=np.int64)
        l2_miss = np.zeros(M, dtype=np.int64)

        # Chunk the global line stream on event boundaries.
        chunk_edges = [0]
        while chunk_edges[-1] < M:
            target = boundaries[chunk_edges[-1]] + _LINE_CHUNK
            nxt = int(np.searchsorted(boundaries, target, side="right")) - 1
            chunk_edges.append(max(nxt, chunk_edges[-1] + 1))
        for e0, e1 in zip(chunk_edges[:-1], chunk_edges[1:]):
            lo, hi = int(boundaries[e0]), int(boundaries[e1])
            if hi == lo:
                continue
            lines = np.empty(hi - lo, dtype=np.int64)
            w_sel = (trace.word_pos >= e0) & (trace.word_pos < e1)
            if w_sel.any():
                lines[boundaries[trace.word_pos[w_sel]] - lo] = \
                    word_lines[w_sel]
            for pos, src_lines, dst_lines, plan in groups:
                sel = (pos >= e0) & (pos < e1)
                if not sel.any():
                    continue
                left = src_lines[sel][:, None] + plan.src_rel[None, :]
                right = dst_lines[sel][:, None] + plan.dst_rel[None, :]
                block = np.hstack([left, right]).take(plan.perm, axis=1)
                idx = (boundaries[pos[sel], None] - lo
                       + np.arange(plan.num_lines, dtype=np.int64)[None, :])
                lines[idx] = block
            event_ids = np.repeat(np.arange(e1 - e0), counts[e0:e1])
            l1_hit_mask, l2_hit_mask = sim.process(lines)
            miss_events = event_ids[~l1_hit_mask]
            span = e1 - e0
            l1_hits[e0:e1] += np.bincount(event_ids[l1_hit_mask],
                                          minlength=span)
            l1_miss[e0:e1] += np.bincount(miss_events, minlength=span)
            l2_miss[e0:e1] += np.bincount(miss_events[~l2_hit_mask],
                                          minlength=span)

        penalty = l1_hits * timing.l1_hit_extra_cycles
        penalty = penalty + l1_miss * timing.l1_miss_penalty_cycles
        penalty = penalty + l2_miss * timing.l2_miss_penalty_cycles

        # Final per-event cycles, with the same add chain as the live
        # charge paths (all quantities are exactly-representable sums,
        # so elementwise evaluation is bit-identical).
        kinds = trace.kinds
        cyc = base_c
        copy_mask = kinds == K_COPY
        cyc = np.where(copy_mask, cyc + extra_c, cyc)
        word_mask = kinds == K_WORD
        cyc[word_mask] = 2.0
        cyc = cyc + penalty
        self._cyc_copy_word = cyc
        self._base_b = base_b
        self._base_r = base_r
        self._extra_r = extra_r
        miss_totals = (int(l1_miss.sum()), int(l2_miss.sum()))
        return sim, miss_totals

    # -- functional execution --------------------------------------------
    def _gather(self, class_id: int, indices: np.ndarray,
                is_recv: bool = False) -> np.ndarray:
        """Tiles (as flat element rows) for a subset of one class."""
        tile_class = (self.trace.recv_classes if is_recv
                      else self.trace.send_classes)[class_id]
        desc = self.descriptors[tile_class.arg]
        starts = desc.offset + tile_class.starts[indices]
        idx = _tile_indices(starts, tile_class.sizes, tile_class.strides)
        tiles = desc.allocated[idx]
        return tiles.reshape(len(starts), -1)

    def _compute_functional(self) -> List[np.ndarray]:
        """All accelerator outputs, batched per flow segment."""
        plan = self.plan
        n_pushes = len(plan.push_counts)
        push_data: List[Optional[np.ndarray]] = [None] * n_pushes
        n_computes = len(plan.compute_a)
        if n_computes == 0:
            return push_data
        accel_dtype = self.board.accelerator.dtype
        comp_a = np.asarray(plan.compute_a, dtype=np.int64)
        comp_b = np.asarray(plan.compute_b, dtype=np.int64)
        geom = np.asarray(plan.compute_geom, dtype=np.int64)
        push_of = np.asarray(plan.compute_push, dtype=np.int64)

        # Segment the compute sequence into runs of constant
        # (geometry, operand class) — the generated loop nests produce
        # long such runs — and process each run in bounded blocks.
        a_cls = np.where(comp_a >= 0, comp_a >> 40, -1)
        b_cls = np.where(comp_b >= 0, comp_b >> 40, -1)
        key = np.stack([geom[:, 0], geom[:, 1], geom[:, 2], a_cls, b_cls],
                       axis=1)
        change = np.any(key[1:] != key[:-1], axis=1)
        if plan.kind == "conv":
            # Window dots share one filter per run: split on filter swaps.
            change = change | (comp_b[1:] != comp_b[:-1])
        run_starts = np.r_[0, np.flatnonzero(change) + 1, n_computes]
        for lo, hi in zip(run_starts[:-1], run_starts[1:]):
            self._compute_run(int(lo), int(hi), comp_a, comp_b, geom,
                              push_of, push_data, accel_dtype)
        return push_data

    def _compute_run(self, lo, hi, comp_a, comp_b, geom, push_of,
                     push_data, accel_dtype) -> None:
        plan = self.plan
        tm, tn, tk = (int(v) for v in geom[lo])
        numel_out = tm * tn
        block = max(1, _BLOCK_ELEMENTS // max(tm * tk, tk * tn, numel_out))
        start = lo
        while start < hi:
            # Block boundaries must not split a push's compute run.
            end = min(start + block, hi)
            if end < hi:
                while end > start and push_of[end] >= 0 \
                        and push_of[end] == push_of[end - 1]:
                    end -= 1
                if end == start:  # a single push larger than the block
                    end = start + 1
                    while end < hi and push_of[end] == push_of[start]:
                        end += 1
            products = self._products(start, end, comp_a, comp_b,
                                      tm, tn, tk, accel_dtype)
            self._reduce_pushes(start, end, push_of, products, tm, tn,
                                accel_dtype, push_data)
            start = end

    def _operand(self, packed: np.ndarray, rows: int, shape, dtype):
        """Gather one operand side of a compute block (zeros for -1)."""
        numel = shape[0] * shape[1]
        missing = packed < 0
        if missing.all():
            return np.zeros((rows,) + shape, dtype=dtype)
        class_id = int(packed[~missing][0] >> 40)
        index = np.where(missing, 0, packed & ((1 << 40) - 1))
        tiles = self._gather(class_id, index).reshape((rows,) + shape)
        if missing.any():
            tiles = tiles.copy()
            tiles[missing] = 0
        return tiles

    def _products(self, start, end, comp_a, comp_b, tm, tn, tk,
                  accel_dtype) -> np.ndarray:
        rows = end - start
        a = self._operand(comp_a[start:end], rows, (tm, tk), accel_dtype)
        if self.plan.kind == "conv":
            # One dot product per window against the (shared) filter —
            # replicates ConvAccelerator._send_input_compute's exact
            # int64 arithmetic (f64 BLAS when provably exact).
            packed_b = comp_b[start:end]
            filt = self._operand(packed_b[:1], 1, (1, tk), accel_dtype)
            if (packed_b != packed_b[0]).any():
                raise ReplayUnsupported("filter changes inside a push run")
            windows = a.reshape(rows, tk)
            filt = filt.reshape(tk)
            if float64_exact_bound(tk, windows, filt):
                values = (windows.astype(np.float64)
                          @ filt.astype(np.float64)).astype(np.int64)
            else:
                values = windows.astype(np.int64) @ filt.astype(np.int64)
            return values.reshape(rows, 1, 1)
        b = self._operand(comp_b[start:end], rows, (tk, tn), accel_dtype)
        if accel_dtype.kind == "i":
            # Integer tiles: any exact-or-modular path is bit-identical
            # to the per-tile accumulation (wraparound is mod 2^32
            # regardless of where it happens).
            if float64_exact_bound(tk, a, b):
                return (a.astype(np.float64)
                        @ b.astype(np.float64)).astype(np.int64)
            return a.astype(np.int64) @ b.astype(np.int64)
        return a @ b

    def _reduce_pushes(self, start, end, push_of, products, tm, tn,
                       accel_dtype, push_data) -> None:
        """Fold a block of products into its pushes, preserving order."""
        plan = self.plan
        segment = push_of[start:end]
        kept = segment >= 0
        if not kept.any():
            return
        push_ids = segment[kept]
        prods = products[kept]
        uniq = np.unique(push_ids)
        if plan.kind == "conv":
            # Pushes drain the slice buffer: stack scalars in order.
            order_counts = np.asarray([plan.push_counts[p] for p in uniq])
            flat = prods.reshape(-1)
            offsets = np.r_[0, np.cumsum(order_counts)]
            for i, p in enumerate(uniq):
                values = flat[offsets[i]:offsets[i + 1]]
                push_data[int(p)] = np.asarray(values, dtype=accel_dtype)
            return
        counts = np.asarray([plan.push_counts[p] for p in uniq])
        if counts.sum() != prods.shape[0]:
            raise ReplayUnsupported("push runs split across blocks")
        if (counts == counts[0]).all():
            c = int(counts[0])
            stacked = prods.reshape(len(uniq), c, tm, tn)
            if accel_dtype.kind == "i":
                summed = stacked.sum(axis=1).astype(accel_dtype)
            else:
                summed = np.zeros((len(uniq), tm, tn), dtype=accel_dtype)
                for j in range(c):
                    summed += stacked[:, j]
            for i, p in enumerate(uniq):
                push_data[int(p)] = summed[i].reshape(-1)
        else:
            offsets = np.r_[0, np.cumsum(counts)]
            for i, p in enumerate(uniq):
                chunk = prods[offsets[i]:offsets[i + 1]]
                if accel_dtype.kind == "i":
                    out = chunk.sum(axis=0).astype(accel_dtype)
                else:
                    out = np.zeros((tm, tn), dtype=accel_dtype)
                    for row in chunk:
                        out += row
                push_data[int(p)] = out.reshape(-1)

    def _scatter_receives(self, push_data: List[np.ndarray]) -> None:
        trace = self.trace
        # Receive classes are applied class-by-class below, which is
        # only order-safe when at most one class writes an argument;
        # multiple classes on one argument (e.g. store + accumulate
        # receives of the same tiles) replay strictly in event order.
        classes_per_arg: Dict[int, int] = {}
        for tile_class in trace.recv_classes:
            classes_per_arg[tile_class.arg] = \
                classes_per_arg.get(tile_class.arg, 0) + 1
        sequential_args = {arg for arg, count in classes_per_arg.items()
                           if count > 1}
        for ordinal, (class_id, index) in enumerate(trace.recv_refs):
            tile_class = trace.recv_classes[class_id]
            if tile_class.arg not in sequential_args:
                continue
            desc = self.descriptors[tile_class.arg]
            start = desc.offset + int(tile_class.starts[index])
            idx = _tile_indices(np.asarray([start], dtype=np.int64),
                                tile_class.sizes,
                                tile_class.strides).reshape(-1)
            data = push_data[ordinal].view(desc.dtype)
            if tile_class.accumulate:
                desc.allocated[idx] += data
            else:
                desc.allocated[idx] = data
        for class_id, tile_class in enumerate(trace.recv_classes):
            if tile_class.arg in sequential_args:
                continue
            desc = self.descriptors[tile_class.arg]
            n = len(tile_class.starts)
            if n == 0:
                continue
            order = tile_class.order
            data = np.empty((n, push_data[int(order[0])].size),
                            dtype=push_data[int(order[0])].dtype)
            for i, ordinal in enumerate(order.tolist()):
                data[i] = push_data[ordinal]
            data = data.view(desc.dtype)
            starts = desc.offset + tile_class.starts
            flat = desc.allocated
            accumulate = bool(tile_class.accumulate)
            if not trace.recv_disjoint[class_id]:
                for i in range(n):
                    idx = _tile_indices(starts[i:i + 1], tile_class.sizes,
                                        tile_class.strides).reshape(-1)
                    if accumulate:
                        flat[idx] += data[i]
                    else:
                        flat[idx] = data[i]
                continue
            # Vectorized rounds: within a round every target is unique,
            # across rounds time order per target is preserved.
            occurrence = _occurrence_counts(tile_class.starts)
            for ro in range(int(occurrence.max()) + 1):
                sel = occurrence == ro
                idx = _tile_indices(starts[sel], tile_class.sizes,
                                    tile_class.strides)
                rows = data[sel].reshape(idx.shape)
                if accumulate:
                    flat[idx] += rows
                else:
                    flat[idx] = rows

    # -- timeline ---------------------------------------------------------
    def _run_timeline(self) -> None:
        trace = self.trace
        board = self.board
        timing = board.timing
        counters = board.counters
        plan = self.plan
        M = trace.num_events

        cyc = self._cyc_copy_word
        br = self._base_b
        rf = self._base_r
        rf2 = self._extra_r
        kinds = trace.kinds
        call_c, call_b = self.rt._call_cost
        init_cycles = timing.dma_init_s * timing.cpu_freq_hz
        sel = kinds == K_LOOP
        cyc[sel] = timing.loop_iteration_cycles
        br[sel] = timing.loop_iteration_branches
        cyc[kinds == K_SUB] = timing.subview_cycles
        sel = kinds == K_CALL
        cyc[sel] = call_c
        br[sel] = call_b
        sel = kinds == K_INIT
        cyc[sel] = init_cycles
        br[sel] = init_cycles / 100.0
        rf[kinds == K_WORD] = 1.0
        sync = np.zeros(M, dtype=np.int8)
        sync[kinds == K_FLUSH] = 1
        sync[kinds == K_RECV] = 2
        if self.double_buffered:
            sync[kinds == K_RWAIT] = 3
        cyc[kinds == K_FLUSH] = 0.0
        cyc[kinds == K_RECV] = 0.0

        taux = np.zeros(M)
        bytes_aux = np.zeros(M, dtype=np.int64)
        acaux = np.zeros(M)
        t_flush = trace.flush_bytes / timing.axi_bytes_per_cycle
        t_flush = t_flush / timing.accel_freq_hz
        t_flush = timing.dma_latency_s + t_flush
        taux[trace.flush_pos] = t_flush
        bytes_aux[trace.flush_pos] = trace.flush_bytes
        acaux[trace.flush_pos] = np.asarray(plan.flush_cycles)
        t_recv = trace.recv_bytes / timing.axi_bytes_per_cycle
        t_recv = t_recv / timing.accel_freq_hz
        t_recv = timing.dma_latency_s + t_recv
        taux[trace.recv_pos] = t_recv
        bytes_aux[trace.recv_pos] = trace.recv_bytes

        f = timing.cpu_freq_hz
        af = timing.accel_freq_hz
        dsc = timing.dma_start_cycles
        dsb = timing.dma_start_branches
        pollp = timing.poll_period_cycles
        pollb = timing.poll_branches
        db = self.double_buffered

        state = [
            counters.cpu_cycles, counters.branch_instructions,
            counters.cache_references, counters.stall_cycles,
            counters.accel_cycles, board.clock, board.accel_ready_at,
            board.dma_busy_until, board.accelerator.total_cycles,
        ]
        lib = native_lib()
        if lib is not None:
            import ctypes

            f64p = ctypes.POINTER(ctypes.c_double)
            state_arr = np.asarray(state)
            sync8 = np.ascontiguousarray(sync)
            lib.timeline_batch(
                sync8.ctypes.data_as(ctypes.POINTER(ctypes.c_int8)),
                np.ascontiguousarray(cyc).ctypes.data_as(f64p),
                np.ascontiguousarray(br).ctypes.data_as(f64p),
                np.ascontiguousarray(rf).ctypes.data_as(f64p),
                np.ascontiguousarray(rf2).ctypes.data_as(f64p),
                taux.ctypes.data_as(f64p),
                acaux.ctypes.data_as(f64p),
                M, int(db), f, af, dsc, dsb, pollp, pollb,
                state_arr.ctypes.data_as(f64p),
            )
            (cpu, branch, refs, stall, accel_ctr, clock, ready, busy,
             accel_total) = state_arr.tolist()
        else:
            (cpu, branch, refs, stall, accel_ctr, clock, ready, busy,
             accel_total) = state
            sync_l = sync.tolist()
            cyc_l = cyc.tolist()
            br_l = br.tolist()
            rf_l = rf.tolist()
            rf2_l = rf2.tolist()
            taux_l = taux.tolist()
            ac_l = acaux.tolist()
            for i in range(M):
                s = sync_l[i]
                if s == 0:
                    c = cyc_l[i]
                    cpu += c
                    branch += br_l[i]
                    refs += rf_l[i]
                    r2 = rf2_l[i]
                    if r2 != 0.0:
                        refs += r2
                    clock += c / f
                elif s == 1:  # flush_send (+process_stream +schedule)
                    cpu += dsc
                    branch += dsb
                    clock += dsc / f
                    t = taux_l[i]
                    ac = ac_l[i]
                    if db:
                        start = clock if clock > busy else busy
                        completion = start + t
                        busy = completion
                        arrival = completion
                    else:
                        if t > 0.0:
                            ts = clock + t
                            if ts > clock:
                                sc = (ts - clock) * f
                                stall += sc
                                branch += (sc / pollp) * pollb
                                clock = ts
                        arrival = clock
                    s2 = ready if ready > arrival else arrival
                    ready = s2 + ac / af
                    accel_ctr += ac
                    accel_total += ac
                elif s == 2:  # recv synchronization
                    cpu += dsc
                    branch += dsb
                    clock += dsc / f
                    if ready > clock:
                        sc = (ready - clock) * f
                        stall += sc
                        branch += (sc / pollp) * pollb
                        clock = ready
                    t = taux_l[i]
                    if t > 0.0:
                        ts = clock + t
                        if ts > clock:
                            sc = (ts - clock) * f
                            stall += sc
                            branch += (sc / pollp) * pollb
                            clock = ts
                else:  # pre-receive wait_sends (double-buffered runtimes)
                    if busy > clock:
                        sc = (busy - clock) * f
                        stall += sc
                        branch += (sc / pollp) * pollb
                        clock = busy

        dma_tx = len(trace.flush_pos) + len(trace.recv_pos)
        counters.cpu_cycles = cpu
        counters.branch_instructions = branch
        counters.cache_references = refs
        counters.stall_cycles = stall
        counters.accel_cycles = accel_ctr
        counters.dma_transactions += dma_tx
        counters.dma_bytes_to_accel += int(trace.flush_bytes.sum())
        counters.dma_bytes_from_accel += int(trace.recv_bytes.sum())
        board.clock = clock
        board.accel_ready_at = ready
        board.dma_busy_until = busy
        board.accelerator.total_cycles = accel_total

    # -- finalization -----------------------------------------------------
    def _finalize(self, cache_sim: OfflineLruSimulator, miss_totals,
                  push_data: List[np.ndarray]) -> None:
        trace, plan = self.trace, self.plan
        board = self.board
        counters = board.counters
        l1_misses, l2_misses = miss_totals
        counters.cache_misses += l1_misses
        counters.l2_references += l1_misses
        counters.l2_misses += l2_misses
        cache_sim.finalize()

        accel = board.accelerator
        accel.instructions_executed += int(sum(plan.flush_instructions))
        accel.in_fifo.total_words_pushed += int(trace.flush_bytes.sum()) // 4
        accel.in_fifo.total_transactions += len(trace.flush_bytes)
        out_words = int(sum(plan.out_words_per_push))
        accel.out_fifo.total_words_pushed += out_words
        accel.out_fifo.total_transactions += len(plan.out_words_per_push)
        engine = self.engine
        engine.transactions += len(trace.flush_bytes) + len(trace.recv_bytes)
        engine.bytes_sent += int(trace.flush_bytes.sum())
        engine.bytes_received += int(trace.recv_bytes.sum())

        self._finalize_accelerator(accel)
        self._finalize_output_region(push_data)

    def _one_tile(self, packed: int, dtype) -> Optional[np.ndarray]:
        if packed < 0:
            return None
        class_id, index = packed >> 40, packed & ((1 << 40) - 1)
        return self._gather(
            class_id, np.asarray([index], dtype=np.int64)
        )[0].astype(dtype, copy=False)

    def _finalize_accelerator(self, accel) -> None:
        plan = self.plan
        if plan.kind == "conv":
            accel.ic, accel.fhw = plan.final_config
            accel._refresh_needs()
            last_filter = self._one_tile(plan.final_b, accel.dtype)
            if last_filter is not None:
                accel._filter = last_filter.reshape(-1)
            accel._slice = []
            return
        tm, tn, tk = plan.final_config
        accel.tile_m, accel.tile_n, accel.tile_k = tm, tn, tk
        accel._refresh_needs()
        last_a = self._one_tile(plan.final_a, accel.dtype)
        accel._a = last_a.reshape(tm, tk) if last_a is not None \
            else np.zeros((tm, tk), accel.dtype)
        last_b = self._one_tile(plan.final_b, accel.dtype)
        accel._b = last_b.reshape(tk, tn) if last_b is not None \
            else np.zeros((tk, tn), accel.dtype)
        accel._c = np.zeros((tm, tn), accel.dtype)

    def _finalize_input_region(self) -> None:
        """Last-writer reconstruction of the DMA input staging region.

        The staged regions are write-before-read per flush, so their
        final contents never influence later runs; they are rebuilt
        (bounded backward scan) for debugging fidelity.
        """
        trace = self.trace

        def input_writes_reversed():
            # The staged-item stream preserves the true interleaving of
            # word and tile writes; walk it from the end.
            word_cursor = len(trace.word_offsets)
            for item in reversed(trace.staged_items):
                if item[0] == "w":
                    word_cursor -= 1
                    value = int(trace.word_values[word_cursor])
                    data = np.asarray([value & 0xFFFFFFFF], dtype=np.uint32)
                    yield int(trace.word_offsets[word_cursor]), 1, data
                else:
                    _, class_id, index, words = item
                    tile_class = trace.send_classes[class_id]
                    tile = self._gather(
                        class_id, np.asarray([index], dtype=np.int64)
                    )[0]
                    yield (int(tile_class.region_offsets[index]), words,
                           np.ascontiguousarray(tile).view(np.uint32))

        input_used = 0
        if trace.word_offsets.size:
            input_used = int(trace.word_offsets.max()) + 4
        for tile_class in trace.send_classes:
            if tile_class.region_offsets.size:
                input_used = max(
                    input_used,
                    int(tile_class.region_offsets.max())
                    + tile_class.num_elements() * tile_class.itemsize,
                )
        self._apply_last_writes(self.engine.input_words,
                                input_writes_reversed(), input_used // 4)

    def _finalize_output_region(self, push_data: List[np.ndarray]) -> None:
        """Last-writer reconstruction of the DMA output region."""
        trace = self.trace

        def output_writes_reversed():
            for ordinal in range(len(trace.recv_refs) - 1, -1, -1):
                class_id, index = trace.recv_refs[ordinal]
                tile_class = trace.recv_classes[class_id]
                data = np.ascontiguousarray(push_data[ordinal]) \
                    .view(np.uint32)
                yield (int(tile_class.region_offsets[index]),
                       int(trace.recv_bytes[ordinal]) // 4, data)

        output_used = 0
        for tile_class in trace.recv_classes:
            if tile_class.region_offsets.size:
                output_used = max(
                    output_used,
                    int(tile_class.region_offsets.max())
                    + tile_class.num_elements() * tile_class.itemsize,
                )
        self._apply_last_writes(self.engine.output_words,
                                output_writes_reversed(), output_used // 4)

    @staticmethod
    def _apply_last_writes(region_words: np.ndarray, writes_reversed,
                           used_words: int) -> None:
        covered = np.zeros(region_words.size, dtype=bool)
        for offset, words, data in writes_reversed:
            start = offset // 4
            sel = ~covered[start:start + words]
            if sel.any():
                region_words[start:start + words][sel] = data[sel]
                covered[start:start + words] = True
                # The staged offsets repeat every loop iteration, so
                # coverage of the used span completes within roughly one
                # loop body's worth of writes.
                if covered[:used_words].all():
                    break


def _occurrence_counts(starts: np.ndarray) -> np.ndarray:
    """Per-event occurrence index of its start value, in event order."""
    order = np.argsort(starts, kind="stable")
    sorted_starts = starts[order]
    new_group = np.empty(starts.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_starts[1:], sorted_starts[:-1], out=new_group[1:])
    group_pos = np.flatnonzero(new_group)
    base = np.repeat(group_pos, np.diff(np.r_[group_pos, starts.size]))
    occurrence = np.empty(starts.size, dtype=np.int64)
    occurrence[order] = np.arange(starts.size) - base
    return occurrence
