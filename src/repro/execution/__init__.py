"""Execution of lowered host IR: interpreter, trace synthesis, replay."""

from .interpreter import Interpreter, interpret_function
from .trace import (
    STAGE_TIMINGS,
    TRACE_COUNTERS,
    TraceRecorder,
    TraceUnsupported,
    record_trace,
    reset_trace_counters,
    trace_enabled,
)
from .synthesize import (
    SynthesisUnsupported,
    TraceMismatch,
    cross_check_requested,
    diff_traces,
    synthesis_enabled,
    synthesize_trace,
)
from .metrics import (
    METRICS_PLAN_COUNTERS,
    METRICS_PLAN_SCHEMA_VERSION,
    MetricsPlan,
    MetricsPlanMismatch,
    metrics_check_requested,
    metrics_plan_enabled,
    reset_metrics_plan_counters,
)
from .model_plan import (
    MODEL_PLAN_COUNTERS,
    MODEL_PLAN_SCHEMA_VERSION,
    ModelPlan,
    ModelPlanMismatch,
    ModelSession,
    merge_worker_diagnostics,
    model_check_requested,
    model_plan_enabled,
    model_workers,
    reset_model_plan_counters,
    reset_model_plans,
    run_model_jobs,
)
from .prebuild import (
    PREBUILD_WORKERS_ENV,
    prebuild_plans,
    prebuild_workers,
)
from .replay import ReplayExecutor, replay_kernel


def diagnostics() -> dict:
    """Where execution time goes and where each kernel's trace came from.

    ``stage_timings`` is cumulative wall-clock per pipeline stage for
    this process; ``trace_sources`` counts how kernels obtained their
    DriverTrace (synthesized / recorded / synth_fallback / disk_loaded)
    — a benchmark run that silently fell back to recording shows up
    here as a nonzero ``recorded`` count.  ``metrics_plan`` counts how
    replays obtained their metrics plane (cached-plan hits, fresh
    builds, kill-switch fallbacks) — a nonzero
    ``metrics_plan_fallback`` means the plan path was bypassed.
    Within the fresh builds, ``plan_incremental_hits`` counts builds
    that resumed a still-valid cross-kernel LRU characterization
    instead of re-exporting the hierarchy (zero under
    ``REPRO_NO_INCREMENTAL_PLAN``), and ``component_memo_hits`` /
    ``component_memo_misses`` count lookups of memoized build
    sub-products (copy-cost tables, line streams, winner maps) shared
    across builds with matching trace content.
    ``model_plan`` counts the model-granularity layer on top: fused
    ModelPlan sessions replayed vs recorded, per-step sub-plan hits,
    divergences, and how many pool workers merged their deltas back.

    All counters include work merged back from replay pool workers
    (see :func:`repro.execution.model_plan.run_model_jobs`) — they are
    totals for the work this process *observed*, not just the work it
    did on its own threads.

    ``store`` counts on-disk kernel-store events — ``store_corrupt`` /
    ``store_quarantined`` are distinct from ``store_misses``, so a
    corrupted cache directory is visible as such rather than as a cold
    cache.  ``faults`` counts injected faults per ``REPRO_FAULTS``
    site, and ``native`` reports why the C fast path is (un)available.
    ``service`` counts compile/simulate-service events in this process
    (admissions, sheds, coalesced submits, worker crashes, drain-time
    worker merges) — nonzero only in a server process.  ``tuning``
    counts autotuning sweep events (points completed / pruned /
    poisoned, journal appends and recovery anomalies, sweep-worker
    crashes and restarts) — nonzero only after a sweep ran.
    """
    # Lazy imports: repro.store and repro.soc._native both import
    # execution machinery, so pulling them in at module scope would be
    # circular.
    from ..faults import fault_counters
    from ..service.server import service_counters
    from ..soc._native import native_status
    from ..store import STORE_COUNTERS
    from ..tuning.counters import tuning_counters

    return {
        "stage_timings": dict(STAGE_TIMINGS),
        "trace_sources": dict(TRACE_COUNTERS),
        "metrics_plan": dict(METRICS_PLAN_COUNTERS),
        "model_plan": dict(MODEL_PLAN_COUNTERS),
        "store": dict(STORE_COUNTERS),
        "tuning": tuning_counters(),
        "faults": fault_counters(),
        "native": native_status(),
        "service": service_counters(),
    }


__all__ = [
    "Interpreter", "interpret_function",
    "STAGE_TIMINGS", "TRACE_COUNTERS", "TraceRecorder", "TraceUnsupported",
    "record_trace", "reset_trace_counters", "trace_enabled",
    "SynthesisUnsupported", "TraceMismatch", "cross_check_requested",
    "diff_traces", "synthesis_enabled", "synthesize_trace",
    "METRICS_PLAN_COUNTERS", "METRICS_PLAN_SCHEMA_VERSION", "MetricsPlan",
    "MetricsPlanMismatch", "metrics_check_requested",
    "metrics_plan_enabled", "reset_metrics_plan_counters",
    "MODEL_PLAN_COUNTERS", "MODEL_PLAN_SCHEMA_VERSION", "ModelPlan",
    "ModelPlanMismatch", "ModelSession", "merge_worker_diagnostics",
    "model_check_requested", "model_plan_enabled", "model_workers",
    "reset_model_plan_counters", "reset_model_plans", "run_model_jobs",
    "PREBUILD_WORKERS_ENV", "prebuild_plans", "prebuild_workers",
    "ReplayExecutor", "replay_kernel",
    "diagnostics",
]
