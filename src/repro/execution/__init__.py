"""Execution of lowered host IR: reference interpreter."""

from .interpreter import Interpreter, interpret_function

__all__ = ["Interpreter", "interpret_function"]
