"""Execution of lowered host IR: interpreter, trace synthesis, replay."""

from .interpreter import Interpreter, interpret_function
from .trace import (
    STAGE_TIMINGS,
    TRACE_COUNTERS,
    TraceRecorder,
    TraceUnsupported,
    record_trace,
    reset_trace_counters,
    trace_enabled,
)
from .synthesize import (
    SynthesisUnsupported,
    TraceMismatch,
    cross_check_requested,
    diff_traces,
    synthesis_enabled,
    synthesize_trace,
)
from .replay import ReplayExecutor, replay_kernel


def diagnostics() -> dict:
    """Where execution time goes and where each kernel's trace came from.

    ``stage_timings`` is cumulative wall-clock per pipeline stage for
    this process; ``trace_sources`` counts how kernels obtained their
    DriverTrace (synthesized / recorded / synth_fallback / disk_loaded)
    — a benchmark run that silently fell back to recording shows up
    here as a nonzero ``recorded`` count.
    """
    return {
        "stage_timings": dict(STAGE_TIMINGS),
        "trace_sources": dict(TRACE_COUNTERS),
    }


__all__ = [
    "Interpreter", "interpret_function",
    "STAGE_TIMINGS", "TRACE_COUNTERS", "TraceRecorder", "TraceUnsupported",
    "record_trace", "reset_trace_counters", "trace_enabled",
    "SynthesisUnsupported", "TraceMismatch", "cross_check_requested",
    "diff_traces", "synthesis_enabled", "synthesize_trace",
    "ReplayExecutor", "replay_kernel",
    "diagnostics",
]
