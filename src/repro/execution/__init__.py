"""Execution of lowered host IR: reference interpreter + trace replay."""

from .interpreter import Interpreter, interpret_function
from .trace import (
    STAGE_TIMINGS,
    TraceRecorder,
    TraceUnsupported,
    record_trace,
    trace_enabled,
)
from .replay import ReplayExecutor, replay_kernel

__all__ = [
    "Interpreter", "interpret_function",
    "STAGE_TIMINGS", "TraceRecorder", "TraceUnsupported",
    "record_trace", "trace_enabled",
    "ReplayExecutor", "replay_kernel",
]
