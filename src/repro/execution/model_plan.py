"""Model-granularity replay: fused metrics plans + a replay worker pool.

The per-kernel pipeline (trace -> decoded plan -> MetricsPlan) treats
every invocation independently: each replay re-fingerprints the full
runtime/board state — including an export of both cache levels' LRU
contents — before it can reuse a cached MetricsPlan.  For the model
figures (fig16's ResNet-18 layer sequence, fig17's TinyBERT matmul
schedule) the invocation sequence itself is static, so this module
lifts the caching to model granularity:

**ModelSession** runs a named sequence of kernel invocations against
one shared board.  Because the board is shared, the cache warm-state
carries between kernels exactly the way ``OfflineLruSimulator`` already
carries it *within* one kernel: each step's metrics plane starts from
the previous step's live LRU contents, so back-to-back layers see a
realistically warm cache instead of the cold-cache-per-kernel
accounting the figure harnesses used to do.  Recording sessions make
that carry *incremental* too: the session owns one
:class:`~repro.execution.metrics.PlanBuildCarrier`, so each first-run
step's characterization resumes from the previous step's warm LRU
end-state (skipping the per-step cache-ways export) and classifies its
whole concatenated copy-event line stream in **one** fused native call
per step instead of one call per line chunk.

**ModelPlan** is the fused artifact a session records: one fingerprint
pinning the board configuration and start state, plus the ordered
per-step ``(config, MetricsPlan)`` pairs.  On the next session with the
same name/fingerprint each step's sub-plan is served by an O(1) config
comparison — no per-step state pickling, hashing, or cache-ways export
— and the stitched timeline of per-step final states is available via
:meth:`ModelPlan.timeline`.  Plans persist in the PR 6
:class:`~repro.store.KernelStore` under ``model-*`` entry names with
their own schema version; a stale schema evicts only the model plan,
never the kernel entries it refers to.

Correctness is inductive: the fingerprint pins the start state, each
recorded sub-plan deterministically reproduces the exact state the
per-kernel path would compute from that state, and any step that falls
off the fused plan (kill switch, injected ``model.plan`` fault, config
divergence) degrades to :func:`repro.execution.metrics.obtain_plan`
for that step — bit-identical by the per-kernel guarantees.

Switches: ``REPRO_NO_MODEL_PLAN=1`` disables recording and replaying of
fused plans (each step takes the per-kernel path); ``REPRO_MODEL_CHECK=1``
rebuilds every fused-step hit from the live metrics plane and raises
:class:`ModelPlanMismatch` on divergence (``REPRO_METRICS_CHECK=1``
implies the same check, so the CI cross-check leg covers fused steps
too); ``REPRO_MODEL_WORKERS=N`` sizes the replay worker pool.

**run_model_jobs** is the worker pool: independent model jobs (the
manual and generated legs of fig16, the two fig17 strategies) fork into
a ``ProcessPoolExecutor`` over the shared sharded store and run
concurrently.  Each worker returns its diagnostics *delta* — stage
timings, trace/metrics/model/store/fault counters, kernel-cache stats —
which the parent merges back under locks, so ``stage_timings()`` and
``diagnostics()`` keep counting work that happened in workers.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import astuple
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..envutil import env_int
from . import metrics
from .trace import TRACE_COUNTERS, add_stage_time, merge_stage_timings

#: Env kill-switch: set REPRO_NO_MODEL_PLAN=1 to run every session step
#: through the per-kernel metrics-plan path.
MODEL_PLAN_KILL_SWITCH = "REPRO_NO_MODEL_PLAN"

#: Cross-check mode: set REPRO_MODEL_CHECK=1 to rebuild every fused-step
#: hit from the live metrics plane and fail loudly on divergence.
MODEL_CHECK_ENV = "REPRO_MODEL_CHECK"

#: Worker-pool size for run_model_jobs (default: min(4, cpu_count)).
MODEL_WORKERS_ENV = "REPRO_MODEL_WORKERS"

#: Set in pool workers so nested run_model_jobs calls stay inline.
_WORKER_FLAG_ENV = "_REPRO_MODEL_POOL_WORKER"

#: On-disk ModelPlan schema version.  Bump whenever the fused payload
#: (step-config encoding, fingerprint recipe, MetricsPlan shape) changes
#: so stale persisted model plans are evicted — the kernel entries the
#: plan's steps were recorded against still load.
MODEL_PLAN_SCHEMA_VERSION = 1

#: How session steps obtained their metrics plane, plus pool activity.
MODEL_PLAN_COUNTERS: Dict[str, int] = {
    "model_plan_hits": 0,        # sessions fully replayed from a fused plan
    "model_plan_misses": 0,      # sessions that recorded a fresh fused plan
    "model_plan_step_hits": 0,   # steps served from a fused sub-plan
    "model_plan_fallback": 0,    # steps forced onto the per-kernel path
    "model_plan_divergence": 0,  # steps that fell off a fused plan
    "model_plan_stale": 0,       # persisted plans evicted (bad schema)
    "model_plan_workers": 0,     # pool workers merged back into the parent
}

#: In-process fused-plan registry, LRU over (name, fingerprint).
_MAX_MEMORY_PLANS = 16
_MODEL_PLANS: "OrderedDict[Tuple[str, str], ModelPlan]" = OrderedDict()
_REGISTRY_LOCK = threading.Lock()

_STORES: Dict[Path, object] = {}
_STORE_LOCK = threading.Lock()


def _fresh_locks_after_fork() -> None:
    # Forked children (service workers, model-pool workers) must not
    # inherit registry/store locks another parent thread held.
    global _REGISTRY_LOCK, _STORE_LOCK
    _REGISTRY_LOCK = threading.Lock()
    _STORE_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_fresh_locks_after_fork)

def model_plan_enabled() -> bool:
    """Fused model plans are on unless killed (theirs or the metrics one)."""
    return os.environ.get(MODEL_PLAN_KILL_SWITCH, "") != "1" \
        and metrics.metrics_plan_enabled()


def model_check_requested() -> bool:
    return os.environ.get(MODEL_CHECK_ENV, "") == "1" \
        or metrics.metrics_check_requested()


def reset_model_plan_counters() -> None:
    for key in MODEL_PLAN_COUNTERS:
        MODEL_PLAN_COUNTERS[key] = 0


def reset_model_plans() -> None:
    """Drop the in-process fused-plan registry (tests)."""
    with _REGISTRY_LOCK:
        _MODEL_PLANS.clear()


class ModelPlanMismatch(RuntimeError):
    """A fused sub-plan diverges from the live metrics plane."""


class ModelPlan:
    """One fused, replayable metrics plane for a whole kernel sequence.

    ``steps`` is the ordered list of ``(config, plan)`` pairs: ``config``
    is the repr of the cheap per-step identity tuple (step key, decode
    key, runtime knobs, descriptor addresses, engine regions, trace
    shape) and ``plan`` the step's :class:`MetricsPlan`.  Everything
    global to the sequence — board timing/cache geometry and the exact
    start state, cache contents included — is pinned once by
    ``fingerprint`` instead of being re-hashed per step.
    """

    __slots__ = ("name", "fingerprint", "steps")

    def __init__(self, name: str, fingerprint: str,
                 steps: List[Tuple[str, "metrics.MetricsPlan"]]) -> None:
        self.name = name
        self.fingerprint = fingerprint
        self.steps = steps

    def __len__(self) -> int:
        return len(self.steps)

    def timeline(self) -> np.ndarray:
        """Stitched (num_steps, 9) matrix of per-step metrics end states.

        Row *i* is step *i*'s ``MetricsPlan.final_state``: the absolute
        counter/clock values after that kernel, so consecutive rows show
        the model's cumulative trajectory.
        """
        if not self.steps:
            return np.zeros((0, 9))
        return np.stack([np.asarray(plan.final_state, dtype=np.float64)
                         for _, plan in self.steps])


# -- fingerprinting ---------------------------------------------------------

def board_fingerprint(board) -> str:
    """Digest of the board configuration and exact start state.

    The per-step configs deliberately exclude board-global inputs; this
    fingerprint pins them once per session: timing model, cache
    geometry, every perf counter, the clock domain state, and the exact
    LRU contents of both cache levels (the warm-state carry's input).
    """
    caches = board.caches
    config = (
        MODEL_PLAN_SCHEMA_VERSION,
        astuple(board.timing),
        (caches.l1.size_bytes, caches.l1.line_size, caches.l1.associativity),
        (caches.l2.size_bytes, caches.l2.line_size, caches.l2.associativity),
        caches.line_size,
    )
    state = (
        astuple(board.counters),
        board.clock, board.accel_ready_at, board.dma_busy_until,
        (caches.l1.hits, caches.l1.misses,
         caches.l2.hits, caches.l2.misses),
    )
    digest = hashlib.sha256(pickle.dumps((config, state), protocol=4))
    digest.update(metrics._cache_digest(caches.l1))
    digest.update(metrics._cache_digest(caches.l2))
    return digest.hexdigest()


def _step_config(step_key, ex, decode_key: Tuple) -> str:
    """The cheap per-step identity: everything plan_fingerprint hashes
    except the board-global config/state the session fingerprint pins.

    A repr string rather than the tuple itself so the comparison is
    exact after a store round-trip (the JSON manifest cannot carry
    arbitrary step-key objects, but their reprs are deterministic).
    """
    engine = ex.engine
    return repr((
        step_key,
        decode_key,
        ex.rt.copy_style,
        ex.rt._call_cost,
        bool(ex.double_buffered),
        tuple((d.base_address, d.offset) for d in ex.descriptors),
        tuple(ex.trace.arg_specs),
        (engine.input_region.base, engine.input_region.size,
         engine.output_region.base, engine.output_region.size),
        ex.trace.init_params is None,
        int(ex.trace.num_events),
    ))


# -- persistence ------------------------------------------------------------

def _resolve_store():
    """The shared KernelStore (same REPRO_KERNEL_CACHE_DIR as kernels)."""
    from ..compiler import KERNEL_CACHE_DIR_ENV, disk_store_suspended
    from ..store import KernelStore

    directory = os.environ.get(KERNEL_CACHE_DIR_ENV)
    if not directory or disk_store_suspended():
        return None
    path = Path(directory)
    with _STORE_LOCK:
        store = _STORES.get(path)
        if store is None:
            store = _STORES[path] = KernelStore(path)
        return store


def _store_entry_name(name: str) -> str:
    """Entry name: ``model-<src digest>-<name digest>``.

    Mirrors KernelCache._entry_name: the source-tree digest prefix lets
    CI prune entries no current source can hit, and the key digest folds
    in the store + model schema versions so bumps can never alias.
    """
    from ..compiler import KERNEL_STORE_VERSION, _source_tree_digest

    source_digest = _source_tree_digest()
    digest = hashlib.sha256(
        repr((KERNEL_STORE_VERSION, MODEL_PLAN_SCHEMA_VERSION,
              source_digest, name)).encode()
    ).hexdigest()
    return f"model-{source_digest[:12]}-{digest}"


def _register_plan(plan: "ModelPlan") -> None:
    with _REGISTRY_LOCK:
        _MODEL_PLANS[(plan.name, plan.fingerprint)] = plan
        while len(_MODEL_PLANS) > _MAX_MEMORY_PLANS:
            _MODEL_PLANS.popitem(last=False)


def _lookup_plan(name: str, fingerprint: str) -> Optional["ModelPlan"]:
    key = (name, fingerprint)
    with _REGISTRY_LOCK:
        plan = _MODEL_PLANS.get(key)
        if plan is not None:
            _MODEL_PLANS.move_to_end(key)
            return plan
    store = _resolve_store()
    if store is None:
        return None
    from ..compiler import KERNEL_STORE_VERSION

    entry = _store_entry_name(name)
    status, payload = store.load(entry)
    if status != "hit":
        return None
    plan = payload.get("plan") if isinstance(payload, dict) else None
    if (not isinstance(payload, dict)
            or payload.get("store_version") != KERNEL_STORE_VERSION
            or payload.get("model_schema") != MODEL_PLAN_SCHEMA_VERSION
            or not isinstance(plan, ModelPlan)):
        # Semantically stale/foreign container: evict just this model
        # plan — the kernel entries its steps point at are untouched.
        store.quarantine(entry)
        MODEL_PLAN_COUNTERS["model_plan_stale"] += 1
        return None
    if plan.fingerprint != fingerprint:
        # Same model name from a different board/start state (not
        # stale): leave the entry for the config that wrote it.
        return None
    plan.steps = [tuple(step) for step in plan.steps]
    _register_plan(plan)
    return plan


def _persist_plan(plan: "ModelPlan") -> None:
    store = _resolve_store()
    if store is None:
        return
    from ..compiler import KERNEL_STORE_VERSION

    store.store(_store_entry_name(plan.name), {
        "store_version": KERNEL_STORE_VERSION,
        "model_schema": MODEL_PLAN_SCHEMA_VERSION,
        "plan": plan,
    })


# -- the session ------------------------------------------------------------

class ModelSession:
    """A named, ordered sequence of kernel invocations on one board.

    Run each generated kernel through :meth:`run` with a deterministic
    ``step_key``; the session threads a ``plan_source`` hook down to the
    replay executor so the step's MetricsPlan comes from the fused
    ModelPlan when one matches (recording a fresh one otherwise), and
    the shared board carries the cache warm-state between steps.  Call
    :meth:`finish` once the sequence is complete to fuse + persist.

    Hand-written (manual-driver) steps don't route through
    ``CompiledKernel.run``; call the driver against ``session.board``
    with ``plan_source=session.plan_source(step_key)`` so its trace
    replay joins the fused plan too (without it the step still gets the
    warm-state carry, just not a fused sub-plan).
    """

    def __init__(self, name: str, board) -> None:
        self.name = name
        self.board = board
        self._fingerprint = board_fingerprint(board)
        self._steps: List[Tuple[str, "metrics.MetricsPlan"]] = []
        self._cursor = 0
        self._plan: Optional[ModelPlan] = None
        self._replaying = False
        self._dirty = False
        self._finished = False
        self._result: Optional[ModelPlan] = None
        # Resumable LRU characterization across recording steps; the
        # kill switch (REPRO_NO_INCREMENTAL_PLAN) is honored inside
        # build_plan so flipping it mid-session degrades cleanly.
        self._carrier = metrics.PlanBuildCarrier(board)
        if model_plan_enabled():
            self._plan = _lookup_plan(name, self._fingerprint)
            self._replaying = self._plan is not None

    # -- step execution ---------------------------------------------------
    def run(self, kernel, *arrays, step_key, runtime=None, trace=None):
        """Execute one step; returns the step's perf-counter delta."""
        if self._finished:
            raise RuntimeError(f"ModelSession {self.name!r} already finished")
        return kernel.run(self.board, *arrays, runtime=runtime, trace=trace,
                          plan_source=self.plan_source(step_key))

    def plan_source(self, step_key) -> Callable:
        """The per-step metrics-plane hook for one ``step_key``.

        Pass the returned callable as the ``plan_source=`` of any replay
        entry point that accepts one (``CompiledKernel.run`` does this
        automatically via :meth:`run`; the manual drivers take it as a
        keyword) to make that invocation a session step.
        """
        def source(ex, decode_key):
            return self._step_plan(step_key, ex, decode_key)
        return source

    def _step_plan(self, step_key, ex, decode_key):
        if not model_plan_enabled() \
                or faults.fires("model.plan") == "fail":
            MODEL_PLAN_COUNTERS["model_plan_fallback"] += 1
            return metrics.obtain_plan(ex, decode_key)
        config = _step_config(step_key, ex, decode_key)
        if self._replaying:
            steps = self._plan.steps
            if self._cursor < len(steps) \
                    and steps[self._cursor][0] == config:
                start = time.perf_counter()
                plan = steps[self._cursor][1]
                self._cursor += 1
                MODEL_PLAN_COUNTERS["model_plan_step_hits"] += 1
                add_stage_time("model_plan_apply_s",
                               time.perf_counter() - start)
                if model_check_requested():
                    problems = metrics.diff_plans(
                        plan, metrics._timed_build(ex)
                    )
                    if problems:
                        raise ModelPlanMismatch(
                            f"fused ModelPlan {self.name!r} step "
                            f"{self._cursor - 1} diverges from the live "
                            "metrics plane on: " + ", ".join(problems)
                        )
                return plan
            # The live sequence fell off the fused plan: keep the
            # matched prefix (it IS the live prefix) and record on.
            MODEL_PLAN_COUNTERS["model_plan_divergence"] += 1
            self._steps = [tuple(step) for step in steps[:self._cursor]]
            self._replaying = False
            self._plan = None
            self._dirty = True
        plan = self._record_build(ex)
        self._steps.append((config, plan))
        self._dirty = True
        return plan

    def _record_build(self, ex) -> "metrics.MetricsPlan":
        """Build one recording step's MetricsPlan, fingerprint-free.

        While recording, the fused fingerprint plus the step config
        already pin every metrics-plane input, so the per-step
        ``plan_fingerprint`` — a pickle + sha256 over the board state
        *including an export of both cache levels' LRU ways* — is pure
        overhead; build directly instead.  The build is the identical
        deterministic computation ``obtain_plan`` runs on a miss, so
        the accounting mirrors it too.

        The session's :class:`~repro.execution.metrics.PlanBuildCarrier`
        rides along: when nothing else touched the board's caches since
        the previous step's build, this build resumes from that step's
        warm LRU end-state instead of re-exporting and re-seeding the
        hierarchy (``plan_incremental_hits`` counts these).  The
        check-mode scratch rebuilds in ``_step_plan`` stay carrier-less
        on purpose — they independently re-derive the same plans, which
        is exactly what makes ``REPRO_METRICS_CHECK=1`` a validation of
        the incremental path.
        """
        if faults.fires("metrics.plan") == "fail":
            metrics.METRICS_PLAN_COUNTERS["metrics_plan_fallback"] += 1
        else:
            metrics.METRICS_PLAN_COUNTERS["metrics_plan_misses"] += 1
        return metrics._timed_build(ex, self._carrier)

    # -- fusion -----------------------------------------------------------
    def finish(self) -> Optional[ModelPlan]:
        """Fuse and persist the recorded plan (idempotent).

        Returns the session's fused ModelPlan: the replayed one on a
        full hit, the freshly recorded one otherwise, or ``None`` when
        nothing was recorded (kill switch, no replayed steps).
        """
        if self._finished:
            return self._result
        self._finished = True
        if self._replaying and not self._dirty:
            if self._cursor:
                MODEL_PLAN_COUNTERS["model_plan_hits"] += 1
            self._result = self._plan
            return self._result
        if not self._steps or not model_plan_enabled():
            return None
        start = time.perf_counter()
        plan = ModelPlan(self.name, self._fingerprint, list(self._steps))
        _register_plan(plan)
        _persist_plan(plan)
        MODEL_PLAN_COUNTERS["model_plan_misses"] += 1
        add_stage_time("model_plan_build_s", time.perf_counter() - start)
        self._result = plan
        return plan


# -- the worker pool --------------------------------------------------------

def model_workers() -> int:
    """Requested pool size: REPRO_MODEL_WORKERS, else min(4, cpus)."""
    default = max(1, min(4, os.cpu_count() or 1))
    return env_int(MODEL_WORKERS_ENV, default, minimum=1)


def snapshot_diagnostics() -> dict:
    """Flat snapshot of every cumulative counter a worker can advance."""
    from ..compiler import default_kernel_cache
    from ..store import STORE_COUNTERS
    from ..tuning.counters import tuning_counters
    from .trace import STAGE_TIMINGS

    cache = default_kernel_cache()
    return {
        "stage_timings": dict(STAGE_TIMINGS),
        "trace": dict(TRACE_COUNTERS),
        "metrics": dict(metrics.METRICS_PLAN_COUNTERS),
        "model": dict(MODEL_PLAN_COUNTERS),
        "store": dict(STORE_COUNTERS),
        "tuning": tuning_counters(),
        "faults": faults.fault_counters(),
        "kernel_cache": {
            "hits": cache.hits, "misses": cache.misses,
            "disk_hits": cache.disk_hits, "disk_misses": cache.disk_misses,
            "disk_corrupt": cache.disk_corrupt,
            "disk_stale": cache.disk_stale,
        },
    }


def _diagnostics_delta(end: dict, base: dict) -> dict:
    return {
        section: {
            key: value - base.get(section, {}).get(key, 0)
            for key, value in counters.items()
            if value - base.get(section, {}).get(key, 0)
        }
        for section, counters in end.items()
    }


def merge_worker_diagnostics(delta: dict, count_worker: bool = True) -> None:
    """Fold one worker's diagnostics delta into this process's totals.

    ``count_worker=False`` merges without advancing the
    ``model_plan_workers`` tally — the service layer reports one delta
    per *request* and counts each worker process exactly once itself.
    """
    from ..compiler import default_kernel_cache
    from ..store import STORE_COUNTERS

    merge_stage_timings(delta.get("stage_timings", {}))
    with _REGISTRY_LOCK:
        for key, value in delta.get("trace", {}).items():
            TRACE_COUNTERS[key] = TRACE_COUNTERS.get(key, 0) + value
        for key, value in delta.get("metrics", {}).items():
            metrics.METRICS_PLAN_COUNTERS[key] = \
                metrics.METRICS_PLAN_COUNTERS.get(key, 0) + value
        for key, value in delta.get("model", {}).items():
            MODEL_PLAN_COUNTERS[key] = \
                MODEL_PLAN_COUNTERS.get(key, 0) + value
        for key, value in delta.get("store", {}).items():
            STORE_COUNTERS[key] = STORE_COUNTERS.get(key, 0) + value
    if delta.get("tuning"):
        from ..tuning.counters import merge_tuning_counters

        merge_tuning_counters(delta["tuning"])
    faults.merge_fault_counters(delta.get("faults", {}))
    default_kernel_cache().merge_stats(delta.get("kernel_cache", {}))
    if count_worker:
        MODEL_PLAN_COUNTERS["model_plan_workers"] += 1


def _init_worker() -> None:
    os.environ[_WORKER_FLAG_ENV] = "1"


def _pool_entry(fn: Callable, args: tuple):
    """Worker-side wrapper: run the job, return (result, counter delta).

    Forked workers inherit the parent's cumulative counters, so the
    delta against the at-entry snapshot is exactly the work this job
    did — the parent merges it and loses nothing to process isolation.
    """
    base = snapshot_diagnostics()
    result = fn(*args)
    return result, _diagnostics_delta(snapshot_diagnostics(), base)


def run_model_jobs(jobs: Sequence[Tuple[Callable, tuple]],
                   workers: Optional[int] = None) -> list:
    """Run independent model jobs, in parallel when the pool allows.

    ``jobs`` is a sequence of ``(callable, args)`` pairs; both must be
    picklable (module-level functions, plain-data args).  Results come
    back in submission order.  Falls back to inline sequential execution
    — bit-identical, the jobs are deterministic — when the pool is
    sized <= 1, fork is unavailable, or we are already inside a worker.

    ``workers`` overrides the REPRO_MODEL_WORKERS sizing — the plan
    prebuilder passes its own REPRO_PLAN_PREBUILD_WORKERS figure here
    so both fan-outs share one pool implementation (and one
    delta-merging discipline) while staying independently tunable.
    """
    jobs = list(jobs)
    if workers is None:
        workers = model_workers()
    workers = min(workers, len(jobs))
    if (workers <= 1 or os.environ.get(_WORKER_FLAG_ENV)
            or "fork" not in multiprocessing.get_all_start_methods()):
        return [fn(*args) for fn, args in jobs]
    # Load the native fast path once in the parent: forked workers
    # inherit the compiled library instead of each re-running the C
    # compiler probe (~0.2s of duplicated subprocess work per worker).
    from ..soc._native import native_lib

    native_lib()
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=context,
                             initializer=_init_worker) as pool:
        futures = [pool.submit(_pool_entry, fn, args) for fn, args in jobs]
        results = []
        for future in futures:
            result, delta = future.result()
            merge_worker_diagnostics(delta)
            results.append(result)
    return results
