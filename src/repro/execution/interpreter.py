"""Reference interpreter for lowered host IR.

Executes ``scf`` / ``arith`` / ``memref`` / ``accel`` (and functional
``linalg``) operations directly against a :class:`~repro.runtime.AxiRuntime`.
The Python emitter (:mod:`repro.codegen`) is the fast path; this
interpreter defines the semantics, and tests assert both agree on
results *and* performance counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..dialects import accel, linalg
from ..ir.attributes import unwrap
from ..ir.core import Block, Operation, Value
from ..runtime import AxiRuntime, MemRefDescriptor


class InterpreterError(RuntimeError):
    pass


class Interpreter:
    """Executes one function body over bound argument values."""

    def __init__(self, runtime: Optional[AxiRuntime] = None,
                 charge_costs: bool = True):
        self.runtime = runtime
        self.charge_costs = charge_costs and runtime is not None
        self.env: Dict[Value, object] = {}

    # -- entry point ---------------------------------------------------------
    def run(self, func_op: Operation, args: Sequence[object]) -> List[object]:
        if func_op.name != "func.func":
            raise InterpreterError(f"expected func.func, got {func_op.name}")
        entry = func_op.regions[0].entry_block
        if len(args) != len(entry.arguments):
            raise InterpreterError(
                f"function takes {len(entry.arguments)} arguments, "
                f"got {len(args)}"
            )
        self.env = dict(zip(entry.arguments, args))
        return self._run_block(entry)

    # -- block / op dispatch ----------------------------------------------
    def _run_block(self, block: Block) -> List[object]:
        for op in block.operations:
            result = self._execute(op)
            if op.name == "func.return":
                return result
        return []

    def _value(self, value: Value):
        try:
            return self.env[value]
        except KeyError:
            raise InterpreterError(f"use of undefined value {value!r}") from None

    #: op name -> handler attribute name, filled on first use.  Loop
    #: bodies re-execute the same few op kinds thousands of times; the
    #: repeated name mangling showed up in profiles.  The handler itself
    #: is still fetched through getattr so subclass overrides and
    #: per-instance patches keep working.
    _handler_names: Dict[str, str] = {}

    def _execute(self, op: Operation):
        attr = self._handler_names.get(op.name)
        if attr is None:
            attr = "_op_" + op.name.replace(".", "_")
            self._handler_names[op.name] = attr
        handler = getattr(self, attr, None)
        if handler is None:
            raise InterpreterError(f"unsupported operation {op.name}")
        return handler(op)

    # -- func -----------------------------------------------------------------
    def _op_func_return(self, op: Operation):
        return [self._value(v) for v in op.operands]

    # -- arith ------------------------------------------------------------
    def _op_arith_constant(self, op: Operation):
        self.env[op.results[0]] = unwrap(op.get_attr("value"))

    def _binary(self, op: Operation, fn):
        lhs = self._value(op.operands[0])
        rhs = self._value(op.operands[1])
        self.env[op.results[0]] = fn(lhs, rhs)

    def _op_arith_addi(self, op):
        self._binary(op, lambda a, b: a + b)

    def _op_arith_subi(self, op):
        self._binary(op, lambda a, b: a - b)

    def _op_arith_muli(self, op):
        self._binary(op, lambda a, b: a * b)

    def _op_arith_minui(self, op):
        self._binary(op, min)

    def _op_arith_addf(self, op):
        self._binary(op, lambda a, b: a + b)

    def _op_arith_subf(self, op):
        self._binary(op, lambda a, b: a - b)

    def _op_arith_mulf(self, op):
        self._binary(op, lambda a, b: a * b)

    # -- scf ------------------------------------------------------------------
    def _op_scf_for(self, op: Operation):
        lower = int(self._value(op.operands[0]))
        upper = int(self._value(op.operands[1]))
        step = int(self._value(op.operands[2]))
        if step <= 0:
            raise InterpreterError(f"scf.for with non-positive step {step}")
        body = op.regions[0].entry_block
        iv = body.arguments[0]
        for value in range(lower, upper, step):
            if self.charge_costs:
                self.runtime.loop_iteration()
            self.env[iv] = value
            self._run_block(body)

    def _op_scf_yield(self, op: Operation):
        return None

    # -- memref -----------------------------------------------------------
    def _op_memref_alloc(self, op: Operation):
        memref_type = op.results[0].type
        dtype = np.float32 if str(memref_type.element_type) == "f32" \
            else np.int32
        array = np.zeros(memref_type.shape, dtype=dtype)
        if self.runtime is not None:
            desc = self.runtime.make_memref(array, "alloc")
        else:
            desc = MemRefDescriptor.from_numpy(array)
        self.env[op.results[0]] = desc

    def _op_memref_subview(self, op: Operation):
        source: MemRefDescriptor = self._value(op.operands[0])
        offsets = [int(self._value(v)) for v in op.operands[1:]]
        sizes = list(unwrap(op.get_attr("static_sizes")))
        if self.charge_costs:
            self.runtime.subview_setup()
        self.env[op.results[0]] = source.subview(offsets, sizes)

    def _op_memref_load(self, op: Operation):
        desc: MemRefDescriptor = self._value(op.operands[0])
        indices = [int(self._value(v)) for v in op.operands[1:]]
        self.env[op.results[0]] = desc.load(indices)

    def _op_memref_store(self, op: Operation):
        value = self._value(op.operands[0])
        desc: MemRefDescriptor = self._value(op.operands[1])
        indices = [int(self._value(v)) for v in op.operands[2:]]
        desc.store(value, indices)

    def _op_memref_dim(self, op: Operation):
        desc: MemRefDescriptor = self._value(op.operands[0])
        self.env[op.results[0]] = desc.sizes[int(unwrap(op.get_attr("index")))]

    # -- accel ------------------------------------------------------------
    def _require_runtime(self) -> AxiRuntime:
        if self.runtime is None:
            raise InterpreterError(
                "accel operations need a bound AxiRuntime"
            )
        return self.runtime

    def _op_accel_dma_init(self, op: Operation):
        rt = self._require_runtime()
        args = [int(self._value(v)) for v in op.operands]
        rt.dma_init(*args)

    def _op_accel_send_literal(self, op: Operation):
        rt = self._require_runtime()
        literal = int(self._value(op.operands[0]))
        offset = int(self._value(op.operands[1]))
        self.env[op.results[0]] = rt.send_literal(literal, offset)

    def _op_accel_send(self, op: Operation):
        rt = self._require_runtime()
        desc = self._value(op.operands[0])
        offset = int(self._value(op.operands[1]))
        self.env[op.results[0]] = rt.send_memref(desc, offset)

    def _op_accel_send_dim(self, op: Operation):
        rt = self._require_runtime()
        desc = self._value(op.operands[0])
        dim = int(self._value(op.operands[1]))
        offset = int(self._value(op.operands[2]))
        self.env[op.results[0]] = rt.send_dim(desc, dim, offset)

    def _op_accel_send_idx(self, op: Operation):
        rt = self._require_runtime()
        value = int(self._value(op.operands[0]))
        offset = int(self._value(op.operands[1]))
        self.env[op.results[0]] = rt.send_idx(value, offset)

    def _op_accel_flush_send(self, op: Operation):
        rt = self._require_runtime()
        offset = int(self._value(op.operands[0]))
        self.env[op.results[0]] = rt.flush_send(offset)

    def _op_accel_recv(self, op: Operation):
        rt = self._require_runtime()
        desc = self._value(op.operands[0])
        offset = int(self._value(op.operands[1]))
        accumulate = accel.recv_mode(op) == accel.RECV_ACCUMULATE
        rt.recv_memref(desc, offset, accumulate=accumulate)

    # -- linalg (functional fallback for CPU-side ops) ---------------------
    def _op_linalg_generic(self, op: Operation):
        name = linalg.kernel_name(op)
        operands = [self._value(v) for v in op.operands]
        views = [d.view() for d in operands]
        if name == "linalg.matmul":
            a, b_, c = views
            c += a @ b_
            return
        if name == "linalg.conv_2d_nchw_fchw":
            self._conv_reference(op, views)
            return
        raise InterpreterError(
            "only matmul/conv linalg.generic fallbacks are supported"
        )

    def _conv_reference(self, op: Operation, views) -> None:
        image, weights, out = views
        maps = linalg.indexing_maps(op)
        stride = 1
        for expr in maps[0].results:
            terms = linalg._linear_terms(expr)
            if len(terms) == 2:
                stride = max(terms.values())
                break
        batch, out_ch, out_h, out_w = out.shape
        _, in_ch, f_h, f_w = weights.shape
        for n in range(batch):
            for f in range(out_ch):
                for oh in range(out_h):
                    for ow in range(out_w):
                        window = image[
                            n, :, oh * stride:oh * stride + f_h,
                            ow * stride:ow * stride + f_w,
                        ]
                        out[n, f, oh, ow] += np.sum(window * weights[f])

    def _op_linalg_yield(self, op: Operation):
        return None


def interpret_function(func_op: Operation, args: Sequence[object],
                       runtime: Optional[AxiRuntime] = None,
                       charge_costs: bool = True) -> List[object]:
    """Convenience wrapper: run one function with bound arguments."""
    return Interpreter(runtime, charge_costs).run(func_op, args)
