"""The replay metrics plane: a cached, serializable ``MetricsPlan``.

The generated host drivers have fully static schedules, so every
performance-model quantity a replay produces — per-event copy costs,
cache hit/miss classification, the clock/stall timeline, the LRU
end-state, DMA/accelerator statistics, and the last-writer maps of the
DMA staging regions — is a pure function of the
:class:`~repro.execution.trace.DriverTrace`, the decoded instruction
plan, the runtime configuration (timing model, cache geometry, copy and
call styles, double buffering), the simulated address layout, and the
board state the invocation starts from.  Only the tile *payloads* depend
on input data.

This module evaluates that function once per ``(trace, runtime-config
fingerprint)`` into a :class:`MetricsPlan`: precomputed counter totals,
the absolute timeline end-state, the cache LRU end-state, and
region-write summaries.  Subsequent invocations with a matching
fingerprint apply the plan in O(state) — an import of the final cache
ways plus a handful of scalar assignments — instead of re-simulating
O(events) work.  Plans are persisted alongside traces in the kernel
store under their own schema version (see ``repro.compiler``), so warm
processes skip the metrics plane entirely.

Switches:

* ``REPRO_NO_METRICS_PLAN=1`` — kill switch: the metrics plane is
  recomputed live on every invocation (counted as ``fallback``);
* ``REPRO_METRICS_CHECK=1`` — cross-check mode: every cached-plan hit
  *also* rebuilds the plan from the live metrics plane and raises
  :class:`MetricsPlanMismatch` on any divergence.

Bit-identity: a plan is only ever applied when the fingerprint —
covering every input of the metrics plane, including the floating-point
timeline start state and a digest of the exact cache LRU contents —
matches, and the build itself performs the same operation sequence as
the per-tile runtime, so plan application is bit-identical to the live
computation by determinism.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import astuple
from typing import Dict, List, Tuple

import numpy as np

from .. import faults
from ..runtime.copy import CopyKinds, copy_charge_terms, plan_for_geometry
from ..soc.cache import OfflineLruSimulator, _export_ways, install_ways
from .trace import (
    K_CALL,
    K_COPY,
    K_FLUSH,
    K_INIT,
    K_LOOP,
    K_RECV,
    K_RWAIT,
    K_SUB,
    K_WORD,
    STAGE_TIMINGS,
    add_stage_time,
)

#: Kill switch: set REPRO_NO_METRICS_PLAN=1 to recompute the metrics
#: plane live on every invocation (no caching, no persistence).
METRICS_PLAN_KILL_SWITCH = "REPRO_NO_METRICS_PLAN"

#: Cross-check mode: set REPRO_METRICS_CHECK=1 to rebuild the plan on
#: every cache hit and raise MetricsPlanMismatch on divergence.
METRICS_CHECK_ENV = "REPRO_METRICS_CHECK"

#: On-disk MetricsPlan schema version.  Persisted next to (but
#: independent of) the trace in every kernel-store payload: bump it
#: whenever MetricsPlan changes shape so stale persisted plans are
#: evicted (the trace and the lowered kernel still load).
METRICS_PLAN_SCHEMA_VERSION = 1

#: How replays obtained their metrics plane this process:
#: ``hits`` (a cached plan applied in O(state)), ``misses`` (built from
#: the live metrics plane, then cached), ``fallback`` (the kill switch
#: forced a live computation; a nonzero value under benchmark configs
#: means the plan path was silently bypassed).
METRICS_PLAN_COUNTERS: Dict[str, int] = {
    "metrics_plan_hits": 0,
    "metrics_plan_misses": 0,
    "metrics_plan_fallback": 0,
}

#: Cached plans kept per trace (distinct board states/layouts).
_MAX_PLANS_PER_TRACE = 8

#: Upper bound on cache-line stream entries classified per chunk.
_LINE_CHUNK = 1 << 24


def metrics_plan_enabled() -> bool:
    return os.environ.get(METRICS_PLAN_KILL_SWITCH, "") != "1"


def metrics_check_requested() -> bool:
    return os.environ.get(METRICS_CHECK_ENV, "") == "1"


def reset_metrics_plan_counters() -> None:
    for key in METRICS_PLAN_COUNTERS:
        METRICS_PLAN_COUNTERS[key] = 0


class MetricsPlanMismatch(RuntimeError):
    """A cached MetricsPlan diverged from the live metrics plane."""


class MetricsPlan:
    """The metrics plane of one replay, evaluated to its end-state.

    Everything here is data-independent: absolute timeline end values
    (bound to the start state via the fingerprint), exact integer
    counter deltas, the cache LRU end-state in way-array form, and the
    last-writer summaries of the DMA staging regions (index maps only —
    the data plane supplies the payload bytes at apply time).
    """

    __slots__ = (
        "final_state", "l1_ways", "l2_ways",
        "l1_hits_d", "l1_misses_d", "l2_hits_d", "l2_misses_d",
        "l1_miss_total", "l2_miss_total", "stats",
        "input_word_dest", "input_word_values", "input_tile_writes",
        "output_writes",
    )

    def __init__(self):
        #: [cpu_cycles, branch_instructions, cache_references,
        #:  stall_cycles, accel_cycles, clock, accel_ready_at,
        #:  dma_busy_until, accel.total_cycles] — absolute end values.
        self.final_state: np.ndarray = None
        #: Final LRU contents as way arrays (MRU first, -1 empty slot) —
        #: the order-explicit, compactly serializable form; applying
        #: installs them as lazily-expanded Cache state mirrors.
        self.l1_ways: np.ndarray = None
        self.l2_ways: np.ndarray = None
        self.l1_hits_d = 0
        self.l1_misses_d = 0
        self.l2_hits_d = 0
        self.l2_misses_d = 0
        self.l1_miss_total = 0
        self.l2_miss_total = 0
        #: Exact integer deltas for counters / accelerator / engine.
        self.stats: Dict[str, int] = {}
        self.input_word_dest: np.ndarray = None
        self.input_word_values: np.ndarray = None
        #: Per send class: (class_id, tile_indices, dest_word_positions,
        #: flat source positions into the gathered (tiles, words) block).
        self.input_tile_writes: List[Tuple] = []
        #: Per winning receive: (ordinal, dest_word_positions,
        #: source word positions within the pushed payload).
        self.output_writes: List[Tuple] = []

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name in self.__slots__:
            setattr(self, name, state[name])


def diff_plans(left: MetricsPlan, right: MetricsPlan) -> List[str]:
    """Field names on which two plans differ (bitwise-exact compare)."""
    problems = []

    def arrays_equal(a, b) -> bool:
        a, b = np.asarray(a), np.asarray(b)
        return (a.shape == b.shape and a.dtype == b.dtype
                and a.tobytes() == b.tobytes())

    for name in ("final_state", "l1_ways", "l2_ways", "input_word_dest",
                 "input_word_values"):
        if not arrays_equal(getattr(left, name), getattr(right, name)):
            problems.append(name)
    for name in ("l1_hits_d", "l1_misses_d", "l2_hits_d", "l2_misses_d",
                 "l1_miss_total", "l2_miss_total", "stats"):
        if getattr(left, name) != getattr(right, name):
            problems.append(name)
    for name in ("input_tile_writes", "output_writes"):
        lw, rw = getattr(left, name), getattr(right, name)
        if len(lw) != len(rw):
            problems.append(name)
            continue
        for entry_l, entry_r in zip(lw, rw):
            if entry_l[0] != entry_r[0] or not all(
                arrays_equal(a, b)
                for a, b in zip(entry_l[1:], entry_r[1:])
            ):
                problems.append(name)
                break
    return problems


# -- fingerprinting ---------------------------------------------------------

def _cache_digest(cache) -> bytes:
    """Exact digest of one cache's LRU contents (order included)."""
    if cache.hits == 0 and cache.misses == 0:
        # Never accessed since construction/reset: all sets are empty.
        return b"cold"
    return _export_ways(cache).tobytes()


def plan_fingerprint(ex, decode_key: Tuple) -> str:
    """Digest of every metrics-plane input for one replay invocation."""
    board = ex.board
    caches = board.caches
    counters = board.counters
    config = (
        METRICS_PLAN_SCHEMA_VERSION,
        decode_key,
        astuple(board.timing),
        (caches.l1.size_bytes, caches.l1.line_size, caches.l1.associativity),
        (caches.l2.size_bytes, caches.l2.line_size, caches.l2.associativity),
        caches.line_size,
        ex.rt.copy_style,
        ex.rt._call_cost,
        bool(ex.double_buffered),
        tuple((d.base_address, d.offset) for d in ex.descriptors),
        (ex.engine.input_region.base, ex.engine.input_region.size,
         ex.engine.output_region.base, ex.engine.output_region.size),
        ex.trace.init_params is None,
    )
    state = (
        counters.cpu_cycles, counters.branch_instructions,
        counters.cache_references, counters.stall_cycles,
        counters.accel_cycles, board.clock, board.accel_ready_at,
        board.dma_busy_until, board.accelerator.total_cycles,
    )
    digest = hashlib.sha256(pickle.dumps((config, state), protocol=4))
    digest.update(_cache_digest(caches.l1))
    digest.update(_cache_digest(caches.l2))
    return digest.hexdigest()


# -- plan acquisition -------------------------------------------------------

def obtain_plan(ex, decode_key: Tuple) -> MetricsPlan:
    """Look up (or build and cache) the MetricsPlan for one invocation."""
    trace = ex.trace
    if not metrics_plan_enabled() or faults.fires("metrics.plan") == "fail":
        METRICS_PLAN_COUNTERS["metrics_plan_fallback"] += 1
        return _timed_build(ex)
    key = plan_fingerprint(ex, decode_key)
    cached = trace.metrics_plans.get(key)
    if cached is not None:
        trace.metrics_plans.move_to_end(key)
        METRICS_PLAN_COUNTERS["metrics_plan_hits"] += 1
        if metrics_check_requested():
            problems = diff_plans(cached, _timed_build(ex))
            if problems:
                raise MetricsPlanMismatch(
                    "cached MetricsPlan diverges from the live metrics "
                    "plane on: " + ", ".join(problems)
                )
        return cached
    METRICS_PLAN_COUNTERS["metrics_plan_misses"] += 1
    plan = _timed_build(ex)
    trace.metrics_plans[key] = plan
    while len(trace.metrics_plans) > _MAX_PLANS_PER_TRACE:
        trace.metrics_plans.popitem(last=False)
    return plan


def _timed_build(ex) -> MetricsPlan:
    start = time.perf_counter()
    try:
        return build_plan(ex)
    finally:
        add_stage_time("metrics_plan_build_s", time.perf_counter() - start)


# -- plan application -------------------------------------------------------

def apply_plan(ex, plan: MetricsPlan) -> None:
    """Install the metrics end-state into board/caches/accel/engine.

    O(state): scalar assignments plus the cache-ways import.  The data
    plane (tile scatter, region payload writes) is not touched here.
    """
    start = time.perf_counter()
    board = ex.board
    counters = board.counters
    fs = plan.final_state
    counters.cpu_cycles = fs[0]
    counters.branch_instructions = fs[1]
    counters.cache_references = fs[2]
    counters.stall_cycles = fs[3]
    counters.accel_cycles = fs[4]
    board.clock = fs[5]
    board.accel_ready_at = fs[6]
    board.dma_busy_until = fs[7]
    board.accelerator.total_cycles = fs[8]

    stats = plan.stats
    counters.cache_misses += plan.l1_miss_total
    counters.l2_references += plan.l1_miss_total
    counters.l2_misses += plan.l2_miss_total
    counters.dma_transactions += stats["dma_transactions"]
    counters.dma_bytes_to_accel += stats["dma_bytes_to_accel"]
    counters.dma_bytes_from_accel += stats["dma_bytes_from_accel"]

    caches = board.caches
    _install_ways(caches.l1, plan.l1_ways)
    _install_ways(caches.l2, plan.l2_ways)
    caches.l1.hits += plan.l1_hits_d
    caches.l1.misses += plan.l1_misses_d
    caches.l2.hits += plan.l2_hits_d
    caches.l2.misses += plan.l2_misses_d

    accel = board.accelerator
    accel.instructions_executed += stats["accel_instructions"]
    accel.in_fifo.total_words_pushed += stats["in_fifo_words"]
    accel.in_fifo.total_transactions += stats["in_fifo_transactions"]
    accel.out_fifo.total_words_pushed += stats["out_fifo_words"]
    accel.out_fifo.total_transactions += stats["out_fifo_transactions"]
    engine = ex.engine
    engine.transactions += stats["engine_transactions"]
    engine.bytes_sent += stats["dma_bytes_to_accel"]
    engine.bytes_received += stats["dma_bytes_from_accel"]
    add_stage_time("metrics_plan_apply_s", time.perf_counter() - start)


# -- plan construction ------------------------------------------------------

def build_plan(ex) -> MetricsPlan:
    """Evaluate the live metrics plane for one invocation into a plan.

    Reads board/cache/engine state but mutates nothing — the caller
    applies the result (and may instead diff it against a cached plan).
    """
    trace = ex.trace
    decoded = ex.plan
    board = ex.board
    plan = MetricsPlan()

    (counts, base_c, base_b, base_r, extra_c, extra_r,
     groups) = _copy_cost_tables(ex)
    (l1_hits_ev, l1_miss_ev, l2_miss_ev, l1_ways, l2_ways,
     totals) = _classify_cache(ex, counts, groups)
    plan.l1_ways = l1_ways
    plan.l2_ways = l2_ways
    (plan.l1_hits_d, plan.l1_misses_d,
     plan.l2_hits_d, plan.l2_misses_d) = totals
    plan.l1_miss_total = plan.l1_misses_d
    plan.l2_miss_total = plan.l2_misses_d

    timing = board.timing
    penalty = l1_hits_ev * timing.l1_hit_extra_cycles
    penalty = penalty + l1_miss_ev * timing.l1_miss_penalty_cycles
    penalty = penalty + l2_miss_ev * timing.l2_miss_penalty_cycles

    # Final per-event cycles, with the same add chain as the live
    # charge paths (all quantities are exactly-representable sums,
    # so elementwise evaluation is bit-identical).
    kinds = trace.kinds
    cyc = base_c
    copy_mask = kinds == K_COPY
    cyc = np.where(copy_mask, cyc + extra_c, cyc)
    word_mask = kinds == K_WORD
    cyc[word_mask] = 2.0
    cyc = cyc + penalty

    plan.final_state = _run_timeline(ex, cyc, base_b, base_r, extra_r)

    plan.stats = {
        "dma_transactions": len(trace.flush_pos) + len(trace.recv_pos),
        "dma_bytes_to_accel": int(trace.flush_bytes.sum()),
        "dma_bytes_from_accel": int(trace.recv_bytes.sum()),
        "accel_instructions": int(np.sum(decoded.flush_instructions)),
        "in_fifo_words": int(trace.flush_bytes.sum()) // 4,
        "in_fifo_transactions": len(trace.flush_bytes),
        "out_fifo_words": int(np.sum(decoded.out_words_per_push)),
        "out_fifo_transactions": len(decoded.out_words_per_push),
        "engine_transactions": (len(trace.flush_bytes)
                                + len(trace.recv_bytes)),
    }

    _input_winners(ex, plan)
    _output_winners(ex, plan)
    return plan


def _copy_cost_tables(ex):
    """Per-copy-event base costs and line-sequence blocks.

    Every quantity is computed with the same floating-point expressions
    as ``charge_memref_copy`` — per alignment group, via the shared
    memoized copy plans.
    """
    trace = ex.trace
    board = ex.board
    timing = board.timing
    line = board.caches.line_size
    style = ex.rt.copy_style
    region_bases = {False: ex.engine.input_region.base,
                    True: ex.engine.output_region.base}

    M = trace.num_events
    counts = np.zeros(M, dtype=np.int64)
    counts[trace.word_pos] = 1
    base_c = np.zeros(M)
    base_b = np.zeros(M)
    base_r = np.zeros(M)
    extra_c = np.zeros(M)
    extra_r = np.zeros(M)
    groups = []  # (event_pos, src_lines, dst_lines, plan)

    for is_recv, classes in ((False, trace.send_classes),
                             (True, trace.recv_classes)):
        region_base = region_bases[is_recv]
        for tile_class in classes:
            desc = ex.descriptors[tile_class.arg]
            sizes = tile_class.sizes
            strides = tile_class.strides
            itemsize = tile_class.itemsize
            rank = len(sizes)
            if rank:
                row_length = sizes[-1]
                inner_stride = strides[-1]
            else:
                row_length, inner_stride = 1, 1
            use_fast = style == CopyKinds.SPECIALIZED \
                and inner_stride == 1
            row_bytes = row_length * itemsize
            span_src = row_bytes if use_fast else \
                ((row_length - 1) * abs(inner_stride) + 1) * itemsize
            src_start = (desc.base_address
                         + (desc.offset + tile_class.starts) * itemsize)
            dst_start = region_base + tile_class.region_offsets
            src_align = src_start % line
            dst_align = dst_start % line
            align_key = src_align * line + dst_align
            uniq, inverse = np.unique(align_key, return_inverse=True)
            accumulate = bool(tile_class.accumulate)
            for g, key in enumerate(uniq):
                sel = inverse == g
                copy_plan = plan_for_geometry(
                    sizes, strides, itemsize, int(key // line),
                    int(key % line), span_src, row_bytes, line,
                )
                pos = tile_class.event_pos[sel]
                counts[pos] = copy_plan.num_lines
                c0, r0, b0, c_extra, r_extra = copy_charge_terms(
                    copy_plan, style, use_fast, row_length, accumulate,
                    timing,
                )
                base_c[pos] = c0
                base_b[pos] = b0
                base_r[pos] = r0
                if accumulate:
                    extra_c[pos] = c_extra
                    extra_r[pos] = r_extra
                groups.append((pos, src_start[sel] // line,
                               dst_start[sel] // line, copy_plan))
    return counts, base_c, base_b, base_r, extra_c, extra_r, groups


def _fill_columns(copy_plan):
    """Per-column (from_dst, relative-line) arrays of one copy plan.

    Column ``j`` of a copy event's line block is ``src + rel[j]`` or
    ``dst + rel[j]`` depending on ``from_dst[j]`` — the permuted
    flattening of the plan's src/dst relative-line sequences.  Memoized
    on the (globally shared) copy-plan object.
    """
    cols = getattr(copy_plan, "_fill_columns", None)
    if cols is None:
        n_src = copy_plan.src_rel.size
        rel = np.ascontiguousarray(np.concatenate(
            [copy_plan.src_rel, copy_plan.dst_rel]
        )[copy_plan.perm])
        from_dst = np.ascontiguousarray(
            (copy_plan.perm >= n_src).astype(np.uint8)
        )
        cols = (from_dst, rel)
        copy_plan._fill_columns = cols
    return cols


def _chunked_line_streams(ex, counts, groups):
    """Yield (e0, e1, boundaries, lines) chunks of the global stream."""
    from ..soc import _native

    trace = ex.trace
    line = ex.board.caches.line_size
    M = trace.num_events
    boundaries = np.zeros(M + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    word_lines = (ex.engine.input_region.base
                  + trace.word_offsets) // line
    lib = _native.native_lib()

    chunk_edges = [0]
    while chunk_edges[-1] < M:
        target = boundaries[chunk_edges[-1]] + _LINE_CHUNK
        nxt = int(np.searchsorted(boundaries, target, side="right")) - 1
        chunk_edges.append(max(nxt, chunk_edges[-1] + 1))
    one_chunk = len(chunk_edges) == 2
    for e0, e1 in zip(chunk_edges[:-1], chunk_edges[1:]):
        lo, hi = int(boundaries[e0]), int(boundaries[e1])
        if hi == lo:
            continue
        lines = np.empty(hi - lo, dtype=np.int64)
        w_sel = (trace.word_pos >= e0) & (trace.word_pos < e1)
        if w_sel.any():
            lines[boundaries[trace.word_pos[w_sel]] - lo] = \
                word_lines[w_sel]
        for pos, src_lines, dst_lines, copy_plan in groups:
            if one_chunk:
                sub_pos, sub_src, sub_dst = pos, src_lines, dst_lines
            else:
                sel = (pos >= e0) & (pos < e1)
                if not sel.any():
                    continue
                sub_pos = pos[sel]
                sub_src = src_lines[sel]
                sub_dst = dst_lines[sel]
            if not sub_pos.size:
                continue
            if lib is not None:
                import ctypes

                i64p = ctypes.POINTER(ctypes.c_int64)
                from_dst, rel = _fill_columns(copy_plan)
                slots = np.ascontiguousarray(boundaries[sub_pos] - lo)
                lib.fill_copy_lines(
                    slots.ctypes.data_as(i64p), slots.size,
                    np.ascontiguousarray(sub_src).ctypes.data_as(i64p),
                    np.ascontiguousarray(sub_dst).ctypes.data_as(i64p),
                    from_dst.ctypes.data_as(
                        ctypes.POINTER(ctypes.c_uint8)),
                    rel.ctypes.data_as(i64p), copy_plan.num_lines,
                    lines.ctypes.data_as(i64p),
                )
                continue
            left = sub_src[:, None] + copy_plan.src_rel[None, :]
            right = sub_dst[:, None] + copy_plan.dst_rel[None, :]
            block = np.hstack([left, right]).take(copy_plan.perm, axis=1)
            idx = (boundaries[sub_pos, None] - lo
                   + np.arange(copy_plan.num_lines,
                               dtype=np.int64)[None, :])
            lines[idx] = block
        yield e0, e1, boundaries, lines


def _classify_cache(ex, counts, groups):
    """Classify the whole run's cache traffic without mutating state.

    Returns per-event (l1_hits, l1_miss, l2_miss) plus the final LRU
    set dicts and (l1_hits, l1_misses, l2_hits, l2_misses) totals.
    """
    from ..soc import _native  # late bind: tests patch native_lib

    board = ex.board
    l1, l2 = board.caches.l1, board.caches.l2
    M = ex.trace.num_events
    l1_hits = np.zeros(M, dtype=np.int64)
    l1_miss = np.zeros(M, dtype=np.int64)
    l2_miss = np.zeros(M, dtype=np.int64)

    lib = _native.native_lib()
    if lib is not None:
        import ctypes

        i64p = ctypes.POINTER(ctypes.c_int64)
        ways1 = _export_ways(l1)
        ways2 = _export_ways(l2)
        for e0, e1, boundaries, lines in \
                _chunked_line_streams(ex, counts, groups):
            bounds = np.ascontiguousarray(
                boundaries[e0:e1 + 1] - boundaries[e0]
            )
            lib.lru_hierarchy_events(
                lines.ctypes.data_as(i64p), bounds.ctypes.data_as(i64p),
                e1 - e0,
                ways1.ctypes.data_as(i64p), l1.num_sets, l1.associativity,
                -1 if l1.set_mask is None else l1.set_mask,
                ways2.ctypes.data_as(i64p), l2.num_sets, l2.associativity,
                -1 if l2.set_mask is None else l2.set_mask,
                l1_hits[e0:e1].ctypes.data_as(i64p),
                l1_miss[e0:e1].ctypes.data_as(i64p),
                l2_miss[e0:e1].ctypes.data_as(i64p),
            )
        l1_hit_total = int(l1_hits.sum())
        l1_miss_total = int(l1_miss.sum())
        l2_miss_total = int(l2_miss.sum())
        totals = (l1_hit_total, l1_miss_total,
                  l1_miss_total - l2_miss_total, l2_miss_total)
        return l1_hits, l1_miss, l2_miss, ways1, ways2, totals

    # Python fallback: the offline stack-distance classifier, with the
    # per-event attribution recovered by bincount over event ids.
    sim = OfflineLruSimulator(board.caches)
    for e0, e1, boundaries, lines in \
            _chunked_line_streams(ex, counts, groups):
        event_ids = np.repeat(np.arange(e1 - e0), counts[e0:e1])
        l1_hit_mask, l2_hit_mask = sim.process(lines)
        miss_events = event_ids[~l1_hit_mask]
        span = e1 - e0
        l1_hits[e0:e1] += np.bincount(event_ids[l1_hit_mask],
                                      minlength=span)
        l1_miss[e0:e1] += np.bincount(miss_events, minlength=span)
        l2_miss[e0:e1] += np.bincount(miss_events[~l2_hit_mask],
                                      minlength=span)
    ways1 = _ways_from_sim_state(l1, sim._state[l1.name])
    ways2 = _ways_from_sim_state(l2, sim._state[l2.name])
    c1, c2 = sim._counts[l1.name], sim._counts[l2.name]
    totals = (c1[0], c1[1], c2[0], c2[1])
    return l1_hits, l1_miss, l2_miss, ways1, ways2, totals


def _ways_from_sim_state(cache, state) -> np.ndarray:
    """Way-array form (MRU first, -1 empty) of a simulator state dict."""
    assoc = cache.associativity
    ways = np.full(cache.num_sets * assoc, -1, dtype=np.int64)
    for index, resident in state.items():
        if resident:
            stack = list(resident)  # LRU -> MRU
            stack.reverse()
            ways[index * assoc:index * assoc + len(stack)] = stack
    return ways


def _install_ways(cache, ways: np.ndarray) -> None:
    """Install a way array as the cache's LRU state (lazily expanded).

    Delegates to :func:`repro.soc.cache.install_ways`: the array is
    adopted as a mirror and only expanded into the per-set dicts when
    something reads them — consecutive replay steps never do.
    """
    install_ways(cache, ways)


def _run_timeline(ex, cyc, br, rf, rf2) -> np.ndarray:
    """The exact sequential timeline; returns the 9-float end state."""
    from ..soc import _native

    trace = ex.trace
    board = ex.board
    timing = board.timing
    counters = board.counters
    decoded = ex.plan
    M = trace.num_events

    kinds = trace.kinds
    call_c, call_b = ex.rt._call_cost
    init_cycles = timing.dma_init_s * timing.cpu_freq_hz
    sel = kinds == K_LOOP
    cyc[sel] = timing.loop_iteration_cycles
    br[sel] = timing.loop_iteration_branches
    cyc[kinds == K_SUB] = timing.subview_cycles
    sel = kinds == K_CALL
    cyc[sel] = call_c
    br[sel] = call_b
    sel = kinds == K_INIT
    cyc[sel] = init_cycles
    br[sel] = init_cycles / 100.0
    rf[kinds == K_WORD] = 1.0
    sync = np.zeros(M, dtype=np.int8)
    sync[kinds == K_FLUSH] = 1
    sync[kinds == K_RECV] = 2
    if ex.double_buffered:
        sync[kinds == K_RWAIT] = 3
    cyc[kinds == K_FLUSH] = 0.0
    cyc[kinds == K_RECV] = 0.0

    taux = np.zeros(M)
    acaux = np.zeros(M)
    t_flush = trace.flush_bytes / timing.axi_bytes_per_cycle
    t_flush = t_flush / timing.accel_freq_hz
    t_flush = timing.dma_latency_s + t_flush
    taux[trace.flush_pos] = t_flush
    acaux[trace.flush_pos] = np.asarray(decoded.flush_cycles)
    t_recv = trace.recv_bytes / timing.axi_bytes_per_cycle
    t_recv = t_recv / timing.accel_freq_hz
    t_recv = timing.dma_latency_s + t_recv
    taux[trace.recv_pos] = t_recv

    f = timing.cpu_freq_hz
    af = timing.accel_freq_hz
    dsc = timing.dma_start_cycles
    dsb = timing.dma_start_branches
    pollp = timing.poll_period_cycles
    pollb = timing.poll_branches
    db = ex.double_buffered

    state = [
        counters.cpu_cycles, counters.branch_instructions,
        counters.cache_references, counters.stall_cycles,
        counters.accel_cycles, board.clock, board.accel_ready_at,
        board.dma_busy_until, board.accelerator.total_cycles,
    ]
    lib = _native.native_lib()
    if lib is not None:
        import ctypes

        f64p = ctypes.POINTER(ctypes.c_double)
        state_arr = np.asarray(state)
        sync8 = np.ascontiguousarray(sync)
        lib.timeline_batch(
            sync8.ctypes.data_as(ctypes.POINTER(ctypes.c_int8)),
            np.ascontiguousarray(cyc).ctypes.data_as(f64p),
            np.ascontiguousarray(br).ctypes.data_as(f64p),
            np.ascontiguousarray(rf).ctypes.data_as(f64p),
            np.ascontiguousarray(rf2).ctypes.data_as(f64p),
            taux.ctypes.data_as(f64p),
            acaux.ctypes.data_as(f64p),
            M, int(db), f, af, dsc, dsb, pollp, pollb,
            state_arr.ctypes.data_as(f64p),
        )
        return state_arr
    (cpu, branch, refs, stall, accel_ctr, clock, ready, busy,
     accel_total) = state
    sync_l = sync.tolist()
    cyc_l = cyc.tolist()
    br_l = br.tolist()
    rf_l = rf.tolist()
    rf2_l = rf2.tolist()
    taux_l = taux.tolist()
    ac_l = acaux.tolist()
    for i in range(M):
        s = sync_l[i]
        if s == 0:
            c = cyc_l[i]
            cpu += c
            branch += br_l[i]
            refs += rf_l[i]
            r2 = rf2_l[i]
            if r2 != 0.0:
                refs += r2
            clock += c / f
        elif s == 1:  # flush_send (+process_stream +schedule)
            cpu += dsc
            branch += dsb
            clock += dsc / f
            t = taux_l[i]
            ac = ac_l[i]
            if db:
                start = clock if clock > busy else busy
                completion = start + t
                busy = completion
                arrival = completion
            else:
                if t > 0.0:
                    ts = clock + t
                    if ts > clock:
                        sc = (ts - clock) * f
                        stall += sc
                        branch += (sc / pollp) * pollb
                        clock = ts
                arrival = clock
            s2 = ready if ready > arrival else arrival
            ready = s2 + ac / af
            accel_ctr += ac
            accel_total += ac
        elif s == 2:  # recv synchronization
            cpu += dsc
            branch += dsb
            clock += dsc / f
            if ready > clock:
                sc = (ready - clock) * f
                stall += sc
                branch += (sc / pollp) * pollb
                clock = ready
            t = taux_l[i]
            if t > 0.0:
                ts = clock + t
                if ts > clock:
                    sc = (ts - clock) * f
                    stall += sc
                    branch += (sc / pollp) * pollb
                    clock = ts
        else:  # pre-receive wait_sends (double-buffered runtimes)
            if busy > clock:
                sc = (busy - clock) * f
                stall += sc
                branch += (sc / pollp) * pollb
                clock = busy
    return np.asarray([cpu, branch, refs, stall, accel_ctr, clock,
                       ready, busy, accel_total])


# -- region-write summaries -------------------------------------------------

def _input_winners(ex, plan: MetricsPlan) -> None:
    """Last-writer index map of the DMA input staging region.

    The staged regions are write-before-read per flush, so their final
    contents never influence later runs; the winning writes are
    precomputed here (bounded backward scan over the staged-item
    stream) so each invocation rebuilds the region with a handful of
    vectorized writes — for debugging fidelity, exactly matching the
    per-tile path's end state.
    """
    trace = ex.trace
    input_used = 0
    if trace.word_offsets.size:
        input_used = int(trace.word_offsets.max()) + 4
    for tile_class in trace.send_classes:
        if tile_class.region_offsets.size:
            input_used = max(
                input_used,
                int(tile_class.region_offsets.max())
                + tile_class.num_elements() * tile_class.itemsize,
            )
    used_words = input_used // 4
    covered = np.zeros(ex.engine.input_words.size, dtype=bool)
    covered_count = 0
    word_dest: List[int] = []
    word_vals: List[int] = []
    per_class: Dict[int, List] = {}
    is_word = trace.staged_is_word.tolist()
    values = trace.staged_values.tolist()
    indices = trace.staged_indices.tolist()
    widths = trace.staged_widths.tolist()
    word_offsets = trace.word_offsets.tolist()
    word_values = trace.word_values.tolist()
    word_cursor = len(word_offsets)
    region_offset_arrays = [tc.region_offsets for tc in trace.send_classes]

    for i in range(len(is_word) - 1, -1, -1):
        if covered_count >= used_words:
            # The staged offsets repeat every loop iteration, so
            # coverage of the used span completes within roughly one
            # loop body's worth of writes.
            break
        if is_word[i]:
            word_cursor -= 1
            start = word_offsets[word_cursor] // 4
            if not covered[start]:
                covered[start] = True
                covered_count += 1
                word_dest.append(start)
                word_vals.append(word_values[word_cursor] & 0xFFFFFFFF)
        else:
            class_id = values[i]
            index = indices[i]
            words = widths[i]
            start = int(region_offset_arrays[class_id][index]) // 4
            sel = ~covered[start:start + words]
            if sel.any():
                rel = np.flatnonzero(sel)
                entry = per_class.setdefault(class_id, [[], [], []])
                row = len(entry[0])
                entry[0].append(index)
                entry[1].append(start + rel)
                entry[2].append(row * words + rel)
                covered[start:start + words] = True
                covered_count += int(rel.size)
    plan.input_word_dest = np.asarray(word_dest, dtype=np.int64)
    plan.input_word_values = np.asarray(word_vals, dtype=np.uint32) \
        if word_vals else np.empty(0, dtype=np.uint32)
    plan.input_tile_writes = [
        (class_id,
         np.asarray(entry[0], dtype=np.int64),
         np.concatenate(entry[1]) if entry[1]
         else np.empty(0, dtype=np.int64),
         np.concatenate(entry[2]) if entry[2]
         else np.empty(0, dtype=np.int64))
        for class_id, entry in sorted(per_class.items())
    ]


def _output_winners(ex, plan: MetricsPlan) -> None:
    """Last-writer index map of the DMA output staging region."""
    trace = ex.trace
    output_used = 0
    for tile_class in trace.recv_classes:
        if tile_class.region_offsets.size:
            output_used = max(
                output_used,
                int(tile_class.region_offsets.max())
                + tile_class.num_elements() * tile_class.itemsize,
            )
    used_words = output_used // 4
    covered = np.zeros(ex.engine.output_words.size, dtype=bool)
    covered_count = 0
    writes = []
    recv_bytes = trace.recv_bytes.tolist()
    for ordinal in range(len(trace.recv_refs) - 1, -1, -1):
        if covered_count >= used_words:
            break
        class_id, index = trace.recv_refs[ordinal]
        tile_class = trace.recv_classes[class_id]
        start = int(tile_class.region_offsets[index]) // 4
        words = recv_bytes[ordinal] // 4
        sel = ~covered[start:start + words]
        if sel.any():
            rel = np.flatnonzero(sel)
            writes.append((ordinal, start + rel, rel))
            covered[start:start + words] = True
            covered_count += int(rel.size)
    plan.output_writes = writes
