"""The replay metrics plane: a cached, serializable ``MetricsPlan``.

The generated host drivers have fully static schedules, so every
performance-model quantity a replay produces — per-event copy costs,
cache hit/miss classification, the clock/stall timeline, the LRU
end-state, DMA/accelerator statistics, and the last-writer maps of the
DMA staging regions — is a pure function of the
:class:`~repro.execution.trace.DriverTrace`, the decoded instruction
plan, the runtime configuration (timing model, cache geometry, copy and
call styles, double buffering), the simulated address layout, and the
board state the invocation starts from.  Only the tile *payloads* depend
on input data.

This module evaluates that function once per ``(trace, runtime-config
fingerprint)`` into a :class:`MetricsPlan`: precomputed counter totals,
the absolute timeline end-state, the cache LRU end-state, and
region-write summaries.  Subsequent invocations with a matching
fingerprint apply the plan in O(state) — an import of the final cache
ways plus a handful of scalar assignments — instead of re-simulating
O(events) work.  Plans are persisted alongside traces in the kernel
store under their own schema version (see ``repro.compiler``), so warm
processes skip the metrics plane entirely.

Switches:

* ``REPRO_NO_METRICS_PLAN=1`` — kill switch: the metrics plane is
  recomputed live on every invocation (counted as ``fallback``);
* ``REPRO_METRICS_CHECK=1`` — cross-check mode: every cached-plan hit
  *also* rebuilds the plan from the live metrics plane and raises
  :class:`MetricsPlanMismatch` on any divergence;
* ``REPRO_NO_INCREMENTAL_PLAN=1`` — kill switch for the incremental
  build path: every build re-characterizes the cache hierarchy from
  the live board state instead of resuming from a
  :class:`PlanBuildCarrier` (results are bit-identical either way —
  only first-run build latency changes).

First-run builds are additionally *incremental* and *shared*:

* a :class:`PlanBuildCarrier` (owned by a
  :class:`~repro.execution.model_plan.ModelSession`) carries the LRU
  classification state from one step's build to the next, so a model's
  kernel sequence is characterized as one concatenated line stream —
  each step is a single fused native call resuming from the previous
  step's end-state (``plan_incremental_hits`` counts the resumed
  builds);
* the expensive state-independent sub-products of :func:`build_plan` —
  copy-cost tables, line-stream tables, and the input/output
  last-writer maps — live in a process-wide memo keyed by (trace
  content digest, cache geometry/config), so repeated invocations of
  the same kernel shape (ablation re-runs, tuning-sweep variants,
  service requests) reuse them across board states instead of
  rebuilding (``component_memo_hits`` / ``component_memo_misses``).

Bit-identity: a plan is only ever applied when the fingerprint —
covering every input of the metrics plane, including the floating-point
timeline start state and a digest of the exact cache LRU contents —
matches, and the build itself performs the same operation sequence as
the per-tile runtime, so plan application is bit-identical to the live
computation by determinism.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import faults
from ..runtime.copy import CopyKinds, copy_charge_terms, plan_for_geometry
from ..soc.cache import OfflineLruSimulator, _export_ways, install_ways
from .trace import (
    K_CALL,
    K_COPY,
    K_FLUSH,
    K_INIT,
    K_LOOP,
    K_RECV,
    K_RWAIT,
    K_SUB,
    K_WORD,
    STAGE_TIMINGS,
    add_stage_time,
)

#: Kill switch: set REPRO_NO_METRICS_PLAN=1 to recompute the metrics
#: plane live on every invocation (no caching, no persistence).
METRICS_PLAN_KILL_SWITCH = "REPRO_NO_METRICS_PLAN"

#: Cross-check mode: set REPRO_METRICS_CHECK=1 to rebuild the plan on
#: every cache hit and raise MetricsPlanMismatch on divergence.
METRICS_CHECK_ENV = "REPRO_METRICS_CHECK"

#: Kill switch: set REPRO_NO_INCREMENTAL_PLAN=1 to disable the
#: resumable cross-kernel classification carrier (every build then
#: re-exports the LRU state from the live board).
INCREMENTAL_PLAN_KILL_SWITCH = "REPRO_NO_INCREMENTAL_PLAN"

#: On-disk MetricsPlan schema version.  Persisted next to (but
#: independent of) the trace in every kernel-store payload: bump it
#: whenever MetricsPlan changes shape so stale persisted plans are
#: evicted (the trace and the lowered kernel still load).  Version 2:
#: plans carry the precomputed winner tables (input word/tile writes,
#: output writes) produced by the vectorized backward scans.
METRICS_PLAN_SCHEMA_VERSION = 2

#: How replays obtained their metrics plane this process:
#: ``hits`` (a cached plan applied in O(state)), ``misses`` (built from
#: the live metrics plane, then cached), ``fallback`` (the kill switch
#: forced a live computation; a nonzero value under benchmark configs
#: means the plan path was silently bypassed).
METRICS_PLAN_COUNTERS: Dict[str, int] = {
    "metrics_plan_hits": 0,
    "metrics_plan_misses": 0,
    "metrics_plan_fallback": 0,
    #: Builds that resumed from a PlanBuildCarrier's warm LRU end-state
    #: instead of re-exporting the cache hierarchy from the board.
    "plan_incremental_hits": 0,
    #: build_plan sub-product memo traffic (cost tables, stream tables,
    #: winner maps — up to three lookups per build).
    "component_memo_hits": 0,
    "component_memo_misses": 0,
}

#: Cached plans kept per trace (distinct board states/layouts).
_MAX_PLANS_PER_TRACE = 8

#: Upper bound on cache-line stream entries classified per chunk
#: (Python-fallback classification only; the native path streams
#: lines straight out of the group tables and never materializes them).
_LINE_CHUNK = 1 << 24


def metrics_plan_enabled() -> bool:
    return os.environ.get(METRICS_PLAN_KILL_SWITCH, "") != "1"


def metrics_check_requested() -> bool:
    return os.environ.get(METRICS_CHECK_ENV, "") == "1"


def incremental_plan_enabled() -> bool:
    return os.environ.get(INCREMENTAL_PLAN_KILL_SWITCH, "") != "1"


def reset_metrics_plan_counters() -> None:
    for key in METRICS_PLAN_COUNTERS:
        METRICS_PLAN_COUNTERS[key] = 0


# -- the component memo -----------------------------------------------------
#
# build_plan's expensive sub-products are pure functions of the trace
# *content* plus a handful of config scalars — never of the board
# state.  They are memoized process-wide so distinct invocations that
# share a kernel shape (ablation re-runs on a warmed board, sweep
# points across flow/permutation variants with identical tilings,
# repeated service requests) skip straight to classification+timeline.
# Keys start from a content digest, not object identity, so digests of
# GC'd traces can never alias a new trace's products.

_COMPONENT_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_COMPONENT_LOCK = threading.Lock()
_MAX_COMPONENT_ENTRIES = 64
_MAX_COMPONENT_BYTES = 192 << 20
_component_bytes = 0


def reset_component_memo() -> None:
    """Drop all memoized build sub-products (test isolation hook)."""
    global _component_bytes
    with _COMPONENT_LOCK:
        _COMPONENT_MEMO.clear()
        _component_bytes = 0


def _component_get(key):
    with _COMPONENT_LOCK:
        entry = _COMPONENT_MEMO.get(key)
        if entry is not None:
            _COMPONENT_MEMO.move_to_end(key)
            METRICS_PLAN_COUNTERS["component_memo_hits"] += 1
            return entry[0]
    METRICS_PLAN_COUNTERS["component_memo_misses"] += 1
    return None


def _component_put(key, value, nbytes: int) -> None:
    global _component_bytes
    with _COMPONENT_LOCK:
        if key in _COMPONENT_MEMO:
            return
        _COMPONENT_MEMO[key] = (value, nbytes)
        _component_bytes += nbytes
        while len(_COMPONENT_MEMO) > _MAX_COMPONENT_ENTRIES or (
            _component_bytes > _MAX_COMPONENT_BYTES
            and len(_COMPONENT_MEMO) > 1
        ):
            _, (_, dropped) = _COMPONENT_MEMO.popitem(last=False)
            _component_bytes -= dropped


def _trace_component_digest(trace) -> str:
    """Content digest of every trace field the sub-products read.

    Cached on the trace object as a plain hex string so it rides along
    in both the pickle state (model/service workers) and the kernel
    store's codec (warm processes): only the process that first
    records or synthesizes a trace pays the hash pass.
    """
    digest = getattr(trace, "component_digest", None)
    if digest is None:
        # The digest only keys the in-process component memo, so a fast
        # keyed hash beats a cryptographic one; blake2b is the quickest
        # collision-resistant option in hashlib without SHA extensions.
        h = hashlib.blake2b(digest_size=16)

        def arr(a) -> None:
            # Every hashed trace array is 1-D, so dtype char + length
            # frame the payload unambiguously (str((dtype, shape)) cost
            # more than the data hash for the typical small array).
            a = np.ascontiguousarray(a)
            h.update(a.dtype.char.encode())
            h.update(a.size.to_bytes(8, "little"))
            h.update(a)  # buffer protocol: no tobytes copy

        h.update(pickle.dumps((trace.num_events, trace.recv_refs),
                              protocol=4))
        for a in (trace.kinds, trace.word_pos, trace.word_offsets,
                  trace.word_values, trace.flush_pos, trace.flush_bytes,
                  trace.recv_pos, trace.recv_bytes, trace.staged_is_word,
                  trace.staged_values, trace.staged_indices,
                  trace.staged_widths):
            arr(a)
        for side, classes in (("send", trace.send_classes),
                              ("recv", trace.recv_classes)):
            for tc in classes:
                h.update(pickle.dumps(
                    (side, tc.arg, tc.itemsize, bool(tc.accumulate),
                     tuple(tc.sizes), tuple(tc.strides)), protocol=4))
                arr(tc.starts)
                arr(tc.region_offsets)
                arr(tc.event_pos)
        digest = h.hexdigest()
        trace.component_digest = digest
    return digest


# -- the incremental build carrier ------------------------------------------

class PlanBuildCarrier:
    """Resumable cross-kernel LRU characterization state.

    A :class:`~repro.execution.model_plan.ModelSession` owns one
    carrier per board: after a step's build, the carrier keeps that
    build's LRU end-state (native way arrays, or the Python fallback's
    :class:`OfflineLruSimulator`), so the next step's build resumes
    from it instead of re-exporting the hierarchy — the model's kernel
    sequence is classified as one concatenated line stream.

    Validity is checked against the live cache hit/miss counters:
    every cache access changes them, so counters matching the value
    recorded at the previous build (plus that plan's deltas, i.e. the
    state after it was applied) proves the board's LRU state still
    equals the carrier's.  Any mismatch — a per-tile fallback step, a
    replayed fused-plan prefix, an interleaved foreign run — silently
    reseeds from the board, which is always correct.
    """

    __slots__ = ("board", "_expected", "_ways1", "_ways2", "_sim")

    def __init__(self, board):
        self.board = board
        self._expected: Optional[Tuple[int, int, int, int]] = None
        self._ways1: Optional[np.ndarray] = None
        self._ways2: Optional[np.ndarray] = None
        self._sim: Optional[OfflineLruSimulator] = None

    def _live_counts(self) -> Tuple[int, int, int, int]:
        caches = self.board.caches
        return (caches.l1.hits, caches.l1.misses,
                caches.l2.hits, caches.l2.misses)

    def valid(self) -> bool:
        return (self._expected is not None
                and self._expected == self._live_counts())

    def _set_expected(self, totals) -> None:
        live = self._live_counts()
        self._expected = (live[0] + totals[0], live[1] + totals[1],
                          live[2] + totals[2], live[3] + totals[3])

    def adopt_native(self, ways1, ways2, totals) -> None:
        self._ways1, self._ways2 = ways1, ways2
        self._sim = None
        self._set_expected(totals)

    def adopt_sim(self, sim, totals) -> None:
        self._sim = sim
        self._ways1 = self._ways2 = None
        self._set_expected(totals)


class MetricsPlanMismatch(RuntimeError):
    """A cached MetricsPlan diverged from the live metrics plane."""


class MetricsPlan:
    """The metrics plane of one replay, evaluated to its end-state.

    Everything here is data-independent: absolute timeline end values
    (bound to the start state via the fingerprint), exact integer
    counter deltas, the cache LRU end-state in way-array form, and the
    last-writer summaries of the DMA staging regions (index maps only —
    the data plane supplies the payload bytes at apply time).
    """

    __slots__ = (
        "final_state", "l1_ways", "l2_ways",
        "l1_hits_d", "l1_misses_d", "l2_hits_d", "l2_misses_d",
        "l1_miss_total", "l2_miss_total", "stats",
        "input_word_dest", "input_word_values", "input_tile_writes",
        "output_writes",
    )

    def __init__(self):
        #: [cpu_cycles, branch_instructions, cache_references,
        #:  stall_cycles, accel_cycles, clock, accel_ready_at,
        #:  dma_busy_until, accel.total_cycles] — absolute end values.
        self.final_state: np.ndarray = None
        #: Final LRU contents as way arrays (MRU first, -1 empty slot) —
        #: the order-explicit, compactly serializable form; applying
        #: installs them as lazily-expanded Cache state mirrors.
        self.l1_ways: np.ndarray = None
        self.l2_ways: np.ndarray = None
        self.l1_hits_d = 0
        self.l1_misses_d = 0
        self.l2_hits_d = 0
        self.l2_misses_d = 0
        self.l1_miss_total = 0
        self.l2_miss_total = 0
        #: Exact integer deltas for counters / accelerator / engine.
        self.stats: Dict[str, int] = {}
        self.input_word_dest: np.ndarray = None
        self.input_word_values: np.ndarray = None
        #: Per send class: (class_id, tile_indices, dest_word_positions,
        #: flat source positions into the gathered (tiles, words) block).
        self.input_tile_writes: List[Tuple] = []
        #: Per winning receive: (ordinal, dest_word_positions,
        #: source word positions within the pushed payload).
        self.output_writes: List[Tuple] = []

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name in self.__slots__:
            setattr(self, name, state[name])


def diff_plans(left: MetricsPlan, right: MetricsPlan) -> List[str]:
    """Field names on which two plans differ (bitwise-exact compare)."""
    problems = []

    def arrays_equal(a, b) -> bool:
        a, b = np.asarray(a), np.asarray(b)
        return (a.shape == b.shape and a.dtype == b.dtype
                and a.tobytes() == b.tobytes())

    for name in ("final_state", "l1_ways", "l2_ways", "input_word_dest",
                 "input_word_values"):
        if not arrays_equal(getattr(left, name), getattr(right, name)):
            problems.append(name)
    for name in ("l1_hits_d", "l1_misses_d", "l2_hits_d", "l2_misses_d",
                 "l1_miss_total", "l2_miss_total", "stats"):
        if getattr(left, name) != getattr(right, name):
            problems.append(name)
    for name in ("input_tile_writes", "output_writes"):
        lw, rw = getattr(left, name), getattr(right, name)
        if len(lw) != len(rw):
            problems.append(name)
            continue
        for entry_l, entry_r in zip(lw, rw):
            if entry_l[0] != entry_r[0] or not all(
                arrays_equal(a, b)
                for a, b in zip(entry_l[1:], entry_r[1:])
            ):
                problems.append(name)
                break
    return problems


# -- fingerprinting ---------------------------------------------------------

def _timing_sig(timing) -> tuple:
    """``dataclasses.astuple`` minus the recursive deep-copy machinery.

    ``TimingModel`` is a flat dataclass of scalars, so the instance
    dict's values in field order *are* its astuple — at a fraction of
    the cost (astuple showed up at ~0.25 ms per plan build).  The
    resulting tuple is equal to astuple's, so fingerprints persisted
    by earlier builds keep matching.
    """
    return tuple(vars(timing).values())


def _cache_digest(cache) -> bytes:
    """Exact digest of one cache's LRU contents (order included)."""
    if cache.hits == 0 and cache.misses == 0:
        # Never accessed since construction/reset: all sets are empty.
        return b"cold"
    return _export_ways(cache).tobytes()


def plan_fingerprint(ex, decode_key: Tuple) -> str:
    """Digest of every metrics-plane input for one replay invocation."""
    board = ex.board
    caches = board.caches
    counters = board.counters
    config = (
        METRICS_PLAN_SCHEMA_VERSION,
        decode_key,
        _timing_sig(board.timing),
        (caches.l1.size_bytes, caches.l1.line_size, caches.l1.associativity),
        (caches.l2.size_bytes, caches.l2.line_size, caches.l2.associativity),
        caches.line_size,
        ex.rt.copy_style,
        ex.rt._call_cost,
        bool(ex.double_buffered),
        tuple((d.base_address, d.offset) for d in ex.descriptors),
        (ex.engine.input_region.base, ex.engine.input_region.size,
         ex.engine.output_region.base, ex.engine.output_region.size),
        ex.trace.init_params is None,
    )
    state = (
        counters.cpu_cycles, counters.branch_instructions,
        counters.cache_references, counters.stall_cycles,
        counters.accel_cycles, board.clock, board.accel_ready_at,
        board.dma_busy_until, board.accelerator.total_cycles,
    )
    digest = hashlib.sha256(pickle.dumps((config, state), protocol=4))
    digest.update(_cache_digest(caches.l1))
    digest.update(_cache_digest(caches.l2))
    return digest.hexdigest()


# -- plan acquisition -------------------------------------------------------

def obtain_plan(ex, decode_key: Tuple) -> MetricsPlan:
    """Look up (or build and cache) the MetricsPlan for one invocation."""
    trace = ex.trace
    if not metrics_plan_enabled() or faults.fires("metrics.plan") == "fail":
        METRICS_PLAN_COUNTERS["metrics_plan_fallback"] += 1
        return _timed_build(ex)
    key = plan_fingerprint(ex, decode_key)
    cached = trace.metrics_plans.get(key)
    if cached is not None:
        trace.metrics_plans.move_to_end(key)
        METRICS_PLAN_COUNTERS["metrics_plan_hits"] += 1
        if metrics_check_requested():
            problems = diff_plans(cached, _timed_build(ex))
            if problems:
                raise MetricsPlanMismatch(
                    "cached MetricsPlan diverges from the live metrics "
                    "plane on: " + ", ".join(problems)
                )
        return cached
    METRICS_PLAN_COUNTERS["metrics_plan_misses"] += 1
    plan = _timed_build(ex)
    trace.metrics_plans[key] = plan
    while len(trace.metrics_plans) > _MAX_PLANS_PER_TRACE:
        trace.metrics_plans.popitem(last=False)
    return plan


def _timed_build(ex, carrier: Optional[PlanBuildCarrier] = None
                 ) -> MetricsPlan:
    start = time.perf_counter()
    try:
        return build_plan(ex, carrier)
    finally:
        add_stage_time("metrics_plan_build_s", time.perf_counter() - start)


# -- plan application -------------------------------------------------------

def apply_plan(ex, plan: MetricsPlan) -> None:
    """Install the metrics end-state into board/caches/accel/engine.

    O(state): scalar assignments plus the cache-ways import.  The data
    plane (tile scatter, region payload writes) is not touched here.
    """
    start = time.perf_counter()
    board = ex.board
    counters = board.counters
    fs = plan.final_state
    counters.cpu_cycles = fs[0]
    counters.branch_instructions = fs[1]
    counters.cache_references = fs[2]
    counters.stall_cycles = fs[3]
    counters.accel_cycles = fs[4]
    board.clock = fs[5]
    board.accel_ready_at = fs[6]
    board.dma_busy_until = fs[7]
    board.accelerator.total_cycles = fs[8]

    stats = plan.stats
    counters.cache_misses += plan.l1_miss_total
    counters.l2_references += plan.l1_miss_total
    counters.l2_misses += plan.l2_miss_total
    counters.dma_transactions += stats["dma_transactions"]
    counters.dma_bytes_to_accel += stats["dma_bytes_to_accel"]
    counters.dma_bytes_from_accel += stats["dma_bytes_from_accel"]

    caches = board.caches
    _install_ways(caches.l1, plan.l1_ways)
    _install_ways(caches.l2, plan.l2_ways)
    caches.l1.hits += plan.l1_hits_d
    caches.l1.misses += plan.l1_misses_d
    caches.l2.hits += plan.l2_hits_d
    caches.l2.misses += plan.l2_misses_d

    accel = board.accelerator
    accel.instructions_executed += stats["accel_instructions"]
    accel.in_fifo.total_words_pushed += stats["in_fifo_words"]
    accel.in_fifo.total_transactions += stats["in_fifo_transactions"]
    accel.out_fifo.total_words_pushed += stats["out_fifo_words"]
    accel.out_fifo.total_transactions += stats["out_fifo_transactions"]
    engine = ex.engine
    engine.transactions += stats["engine_transactions"]
    engine.bytes_sent += stats["dma_bytes_to_accel"]
    engine.bytes_received += stats["dma_bytes_from_accel"]
    add_stage_time("metrics_plan_apply_s", time.perf_counter() - start)


# -- plan construction ------------------------------------------------------

def build_plan(ex, carrier: Optional[PlanBuildCarrier] = None
               ) -> MetricsPlan:
    """Evaluate the live metrics plane for one invocation into a plan.

    Reads board/cache/engine state but mutates nothing — the caller
    applies the result (and may instead diff it against a cached plan).
    With a ``carrier`` (and the incremental path enabled), the LRU
    characterization resumes from the carrier's warm end-state when it
    still matches the board.
    """
    trace = ex.trace
    decoded = ex.plan
    board = ex.board
    plan = MetricsPlan()
    if carrier is not None and not incremental_plan_enabled():
        carrier = None

    cost = _cost_tables(ex)
    stream = _stream_tables(ex, cost)
    (l1_hits_ev, l1_miss_ev, l2_miss_ev, l1_ways, l2_ways,
     totals) = _classify_cache(ex, cost.counts, stream, carrier)
    plan.l1_ways = l1_ways
    plan.l2_ways = l2_ways
    (plan.l1_hits_d, plan.l1_misses_d,
     plan.l2_hits_d, plan.l2_misses_d) = totals
    plan.l1_miss_total = plan.l1_misses_d
    plan.l2_miss_total = plan.l2_misses_d

    timing = board.timing
    penalty = l1_hits_ev * timing.l1_hit_extra_cycles
    penalty = penalty + l1_miss_ev * timing.l1_miss_penalty_cycles
    penalty = penalty + l2_miss_ev * timing.l2_miss_penalty_cycles

    # Final per-event cycles, with the same add chain as the live
    # charge paths (all quantities are exactly-representable sums,
    # so elementwise evaluation is bit-identical).  The memoized base
    # tables are never mutated: np.where allocates the working array,
    # and the timeline gets private copies of the arrays it writes.
    kinds = trace.kinds
    cyc = cost.base_c
    copy_mask = kinds == K_COPY
    cyc = np.where(copy_mask, cyc + cost.extra_c, cyc)
    cyc = cyc + penalty

    plan.final_state = _run_timeline(ex, cyc, cost.base_b.copy(),
                                     cost.base_r.copy(), cost.extra_r)

    plan.stats = {
        "dma_transactions": len(trace.flush_pos) + len(trace.recv_pos),
        "dma_bytes_to_accel": int(trace.flush_bytes.sum()),
        "dma_bytes_from_accel": int(trace.recv_bytes.sum()),
        "accel_instructions": int(np.sum(decoded.flush_instructions)),
        "in_fifo_words": int(trace.flush_bytes.sum()) // 4,
        "in_fifo_transactions": len(trace.flush_bytes),
        "out_fifo_words": int(np.sum(decoded.out_words_per_push)),
        "out_fifo_transactions": len(decoded.out_words_per_push),
        "engine_transactions": (len(trace.flush_bytes)
                                + len(trace.recv_bytes)),
    }

    (plan.input_word_dest, plan.input_word_values,
     plan.input_tile_writes, plan.output_writes) = _winner_tables(ex)
    return plan


class _CostTables:
    """Memoized state-independent per-event cost tables of one build."""

    __slots__ = ("counts", "base_c", "base_b", "base_r", "extra_c",
                 "extra_r", "group_specs")

    def nbytes(self) -> int:
        total = sum(getattr(self, name).nbytes for name in
                    ("counts", "base_c", "base_b", "base_r", "extra_c",
                     "extra_r"))
        for _, _, sub in self.group_specs:
            for pos, sel, _ in sub:
                total += pos.nbytes + sel.nbytes
        return total


def _cost_tables(ex) -> _CostTables:
    """Per-copy-event base costs (and the alignment-group structure).

    Every quantity is computed with the same floating-point expressions
    as ``charge_memref_copy`` — per alignment group, via the shared
    memoized copy plans.  The result depends on descriptor/region
    *alignments* (addresses mod line size), never on absolute
    addresses, so the memo key folds the alignments in and the tables
    are shared across invocations at different layouts.
    """
    trace = ex.trace
    board = ex.board
    line = board.caches.line_size
    style = ex.rt.copy_style
    region_bases = {False: ex.engine.input_region.base,
                    True: ex.engine.output_region.base}
    align_sig = []
    for is_recv, classes in ((False, trace.send_classes),
                             (True, trace.recv_classes)):
        for tile_class in classes:
            desc = ex.descriptors[tile_class.arg]
            align_sig.append((
                (desc.base_address + desc.offset * tile_class.itemsize)
                % line,
                region_bases[is_recv] % line,
            ))
    key = ("cost", _trace_component_digest(trace),
           _timing_sig(board.timing), line, style, ex.rt._call_cost,
           tuple(align_sig))
    cached = _component_get(key)
    if cached is not None:
        return cached

    timing = board.timing
    M = trace.num_events
    tables = _CostTables()
    counts = np.zeros(M, dtype=np.int64)
    counts[trace.word_pos] = 1
    base_c = np.zeros(M)
    base_b = np.zeros(M)
    base_r = np.zeros(M)
    extra_c = np.zeros(M)
    extra_r = np.zeros(M)
    group_specs = []  # (is_recv, class_id, [(event_pos, sel, plan)])

    for is_recv, classes in ((False, trace.send_classes),
                             (True, trace.recv_classes)):
        region_base = region_bases[is_recv]
        for class_id, tile_class in enumerate(classes):
            desc = ex.descriptors[tile_class.arg]
            sizes = tile_class.sizes
            strides = tile_class.strides
            itemsize = tile_class.itemsize
            rank = len(sizes)
            if rank:
                row_length = sizes[-1]
                inner_stride = strides[-1]
            else:
                row_length, inner_stride = 1, 1
            use_fast = style == CopyKinds.SPECIALIZED \
                and inner_stride == 1
            row_bytes = row_length * itemsize
            span_src = row_bytes if use_fast else \
                ((row_length - 1) * abs(inner_stride) + 1) * itemsize
            src_start = (desc.base_address
                         + (desc.offset + tile_class.starts) * itemsize)
            dst_start = region_base + tile_class.region_offsets
            src_align = src_start % line
            dst_align = dst_start % line
            align_key = src_align * line + dst_align
            uniq, inverse = np.unique(align_key, return_inverse=True)
            accumulate = bool(tile_class.accumulate)
            sub = []
            for g, key_g in enumerate(uniq):
                sel = np.flatnonzero(inverse == g)
                copy_plan = plan_for_geometry(
                    sizes, strides, itemsize, int(key_g // line),
                    int(key_g % line), span_src, row_bytes, line,
                )
                pos = tile_class.event_pos[sel]
                counts[pos] = copy_plan.num_lines
                c0, r0, b0, c_extra, r_extra = copy_charge_terms(
                    copy_plan, style, use_fast, row_length, accumulate,
                    timing,
                )
                base_c[pos] = c0
                base_b[pos] = b0
                base_r[pos] = r0
                if accumulate:
                    extra_c[pos] = c_extra
                    extra_r[pos] = r_extra
                sub.append((pos, sel, copy_plan))
            group_specs.append((is_recv, class_id, sub))
    # Kind-constant charges, prefetched into the memoized base tables
    # so the per-build timeline prep needn't re-scan ``kinds``.  Event
    # kinds are disjoint, none of these kinds carries copy charges, and
    # the cache-penalty term is zero everywhere off copy/word events,
    # so build_plan's ``base + penalty`` sum reproduces the live charge
    # paths bit-for-bit (const + 0.0 == const).
    kinds = trace.kinds
    call_c, call_b = ex.rt._call_cost
    init_cycles = timing.dma_init_s * timing.cpu_freq_hz
    sel = kinds == K_LOOP
    base_c[sel] = timing.loop_iteration_cycles
    base_b[sel] = timing.loop_iteration_branches
    base_c[kinds == K_SUB] = timing.subview_cycles
    sel = kinds == K_CALL
    base_c[sel] = call_c
    base_b[sel] = call_b
    sel = kinds == K_INIT
    base_c[sel] = init_cycles
    base_b[sel] = init_cycles / 100.0
    sel = kinds == K_WORD
    base_c[sel] = 2.0
    base_r[sel] = 1.0
    tables.counts = counts
    tables.base_c = base_c
    tables.base_b = base_b
    tables.base_r = base_r
    tables.extra_c = extra_c
    tables.extra_r = extra_r
    tables.group_specs = group_specs
    _component_put(key, tables, tables.nbytes())
    return tables


class _StreamTables:
    """Memoized absolute line streams of one build (layout-keyed).

    ``groups`` holds the per-alignment-group absolute line starts (the
    Python-fallback chunked classifier consumes them); ``flat()``
    lazily assembles the concatenated per-event descriptor tables the
    one-call native classifier consumes.
    """

    __slots__ = ("groups", "word_lines", "_flat")

    def __init__(self, groups, word_lines):
        self.groups = groups
        self.word_lines = word_lines
        self._flat = None

    def nbytes(self) -> int:
        total = self.word_lines.nbytes
        for pos, src_lines, dst_lines, _ in self.groups:
            total += pos.nbytes + src_lines.nbytes + dst_lines.nbytes
        return total

    def flat(self, trace):
        flat = self._flat
        if flat is None:
            M = trace.num_events
            ev_group = np.full(M, -2, dtype=np.int64)
            ev_row = np.zeros(M, dtype=np.int64)
            wp = trace.word_pos
            ev_group[wp] = -1
            ev_row[wp] = np.arange(wp.size, dtype=np.int64)
            grp_off = np.zeros(len(self.groups), dtype=np.int64)
            grp_width = np.zeros(len(self.groups), dtype=np.int64)
            src_parts, dst_parts, fd_parts, rel_parts = [], [], [], []
            row_base = 0
            off = 0
            for g, (pos, src_lines, dst_lines, copy_plan) in \
                    enumerate(self.groups):
                ev_group[pos] = g
                ev_row[pos] = np.arange(pos.size, dtype=np.int64) \
                    + row_base
                row_base += pos.size
                from_dst, rel = _fill_columns(copy_plan)
                grp_off[g] = off
                grp_width[g] = copy_plan.num_lines
                off += copy_plan.num_lines
                src_parts.append(src_lines)
                dst_parts.append(dst_lines)
                fd_parts.append(from_dst)
                rel_parts.append(rel)

            def cat(parts, dtype):
                if not parts:
                    return np.empty(0, dtype=dtype)
                return np.ascontiguousarray(
                    np.concatenate(parts).astype(dtype, copy=False))

            flat = (ev_group, ev_row, grp_off, grp_width,
                    cat(src_parts, np.int64), cat(dst_parts, np.int64),
                    cat(fd_parts, np.uint8), cat(rel_parts, np.int64),
                    np.ascontiguousarray(self.word_lines))
            self._flat = flat
        return flat


def _stream_tables(ex, cost: _CostTables) -> _StreamTables:
    """Absolute per-group line streams for one address layout."""
    trace = ex.trace
    board = ex.board
    line = board.caches.line_size
    key = ("stream", _trace_component_digest(trace), line,
           ex.rt.copy_style,
           tuple((d.base_address, d.offset) for d in ex.descriptors),
           (ex.engine.input_region.base, ex.engine.output_region.base))
    cached = _component_get(key)
    if cached is not None:
        return cached

    region_bases = {False: ex.engine.input_region.base,
                    True: ex.engine.output_region.base}
    groups = []  # (event_pos, src_lines, dst_lines, plan)
    for is_recv, class_id, sub in cost.group_specs:
        classes = trace.recv_classes if is_recv else trace.send_classes
        tile_class = classes[class_id]
        desc = ex.descriptors[tile_class.arg]
        itemsize = tile_class.itemsize
        src_start = (desc.base_address
                     + (desc.offset + tile_class.starts) * itemsize)
        dst_start = region_bases[is_recv] + tile_class.region_offsets
        for pos, sel, copy_plan in sub:
            groups.append((pos, src_start[sel] // line,
                           dst_start[sel] // line, copy_plan))
    word_lines = (ex.engine.input_region.base
                  + trace.word_offsets) // line
    tables = _StreamTables(groups, word_lines)
    _component_put(key, tables, tables.nbytes())
    return tables


def _fill_columns(copy_plan):
    """Per-column (from_dst, relative-line) arrays of one copy plan.

    Column ``j`` of a copy event's line block is ``src + rel[j]`` or
    ``dst + rel[j]`` depending on ``from_dst[j]`` — the permuted
    flattening of the plan's src/dst relative-line sequences.  Memoized
    on the (globally shared) copy-plan object.
    """
    cols = getattr(copy_plan, "_fill_columns", None)
    if cols is None:
        n_src = copy_plan.src_rel.size
        rel = np.ascontiguousarray(np.concatenate(
            [copy_plan.src_rel, copy_plan.dst_rel]
        )[copy_plan.perm])
        from_dst = np.ascontiguousarray(
            (copy_plan.perm >= n_src).astype(np.uint8)
        )
        cols = (from_dst, rel)
        copy_plan._fill_columns = cols
    return cols


def _chunked_line_streams(ex, counts, groups):
    """Yield (e0, e1, boundaries, lines) chunks of the global stream."""
    from ..soc import _native

    trace = ex.trace
    line = ex.board.caches.line_size
    M = trace.num_events
    boundaries = np.zeros(M + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    word_lines = (ex.engine.input_region.base
                  + trace.word_offsets) // line
    lib = _native.native_lib()

    chunk_edges = [0]
    while chunk_edges[-1] < M:
        target = boundaries[chunk_edges[-1]] + _LINE_CHUNK
        nxt = int(np.searchsorted(boundaries, target, side="right")) - 1
        chunk_edges.append(max(nxt, chunk_edges[-1] + 1))
    one_chunk = len(chunk_edges) == 2
    for e0, e1 in zip(chunk_edges[:-1], chunk_edges[1:]):
        lo, hi = int(boundaries[e0]), int(boundaries[e1])
        if hi == lo:
            continue
        lines = np.empty(hi - lo, dtype=np.int64)
        w_sel = (trace.word_pos >= e0) & (trace.word_pos < e1)
        if w_sel.any():
            lines[boundaries[trace.word_pos[w_sel]] - lo] = \
                word_lines[w_sel]
        for pos, src_lines, dst_lines, copy_plan in groups:
            if one_chunk:
                sub_pos, sub_src, sub_dst = pos, src_lines, dst_lines
            else:
                sel = (pos >= e0) & (pos < e1)
                if not sel.any():
                    continue
                sub_pos = pos[sel]
                sub_src = src_lines[sel]
                sub_dst = dst_lines[sel]
            if not sub_pos.size:
                continue
            if lib is not None:
                import ctypes

                i64p = ctypes.POINTER(ctypes.c_int64)
                from_dst, rel = _fill_columns(copy_plan)
                slots = np.ascontiguousarray(boundaries[sub_pos] - lo)
                lib.fill_copy_lines(
                    slots.ctypes.data_as(i64p), slots.size,
                    np.ascontiguousarray(sub_src).ctypes.data_as(i64p),
                    np.ascontiguousarray(sub_dst).ctypes.data_as(i64p),
                    from_dst.ctypes.data_as(
                        ctypes.POINTER(ctypes.c_uint8)),
                    rel.ctypes.data_as(i64p), copy_plan.num_lines,
                    lines.ctypes.data_as(i64p),
                )
                continue
            left = sub_src[:, None] + copy_plan.src_rel[None, :]
            right = sub_dst[:, None] + copy_plan.dst_rel[None, :]
            block = np.hstack([left, right]).take(copy_plan.perm, axis=1)
            idx = (boundaries[sub_pos, None] - lo
                   + np.arange(copy_plan.num_lines,
                               dtype=np.int64)[None, :])
            lines[idx] = block
        yield e0, e1, boundaries, lines


def _cache_is_cold(cache) -> bool:
    """Whether every set is provably empty without walking them.

    Same never-accessed invariant as ``_cache_digest``: zero hits and
    misses since construction/reset (and no installed mirror) means no
    line was ever inserted.  Most first-run plan builds start exactly
    there, so the classify memo can key such states with a constant
    instead of serializing two all-``-1`` way arrays.
    """
    return cache.hits == 0 and cache.misses == 0 \
        and cache._ways_mirror is None


def _classify_cache(ex, counts, stream: _StreamTables,
                    carrier: Optional[PlanBuildCarrier] = None):
    """Classify the whole run's cache traffic without mutating state.

    Returns per-event (l1_hits, l1_miss, l2_miss) plus the final LRU
    way arrays and (l1_hits, l1_misses, l2_hits, l2_misses) totals.
    With a still-valid ``carrier``, classification resumes from the
    carrier's warm end-state instead of exporting the hierarchy from
    the board — the resumed state equals the board state by
    construction (the previous plan was applied unchanged), so results
    are bit-identical to a scratch build.
    """
    from ..soc import _native  # late bind: tests patch native_lib

    board = ex.board
    l1, l2 = board.caches.l1, board.caches.l2
    M = ex.trace.num_events
    l1_hits = np.zeros(M, dtype=np.int64)
    l1_miss = np.zeros(M, dtype=np.int64)
    l2_miss = np.zeros(M, dtype=np.int64)

    lib = _native.native_lib()
    if lib is not None:
        import ctypes

        i64p = ctypes.POINTER(ctypes.c_int64)
        carried = (carrier is not None and carrier._ways1 is not None
                   and carrier.valid())
        if carried:
            METRICS_PLAN_COUNTERS["plan_incremental_hits"] += 1
            ways1, ways2 = carrier._ways1, carrier._ways2
            state_sig = (ways1.tobytes(), ways2.tobytes())
        elif _cache_is_cold(l1) and _cache_is_cold(l2):
            # Deferred: the all--1 arrays are only materialized on a
            # memo miss.  Serializing them into the key would copy and
            # hash ~l2-size bytes per build for the overwhelmingly
            # common cold start.
            ways1 = ways2 = None
            state_sig = "cold"
        else:
            ways1 = _export_ways(l1)
            ways2 = _export_ways(l2)
            state_sig = (ways1.tobytes(), ways2.tobytes())
        # The whole classification is a pure function of the absolute
        # line streams (captured by the stream-table key fields), the
        # hierarchy geometry, and the starting LRU contents — so its
        # result is shared across entries through the component memo.
        # Repeated replays of one shape re-fingerprint (the board's
        # counters advanced) and rebuild their plan, but almost always
        # from the same cold cache state: the expensive native pass
        # runs once and later builds pay only the timeline.
        cls_key = (
            "cls", _trace_component_digest(ex.trace),
            board.caches.line_size, ex.rt.copy_style,
            tuple((d.base_address, d.offset) for d in ex.descriptors),
            (ex.engine.input_region.base, ex.engine.output_region.base),
            (l1.num_sets, l1.associativity, l1.set_mask),
            (l2.num_sets, l2.associativity, l2.set_mask),
            state_sig,
        )
        cached = _component_get(cls_key)
        if cached is not None:
            # Plans treat the ways/event arrays as read-only, so they
            # share the memo masters; the carrier mutates its arrays
            # in place on the next step and gets private copies.
            (l1_hits, l1_miss, l2_miss, end1, end2, totals) = cached
            if carrier is not None:
                carrier.adopt_native(end1.copy(), end2.copy(), totals)
            return l1_hits, l1_miss, l2_miss, end1, end2, totals
        if ways1 is None:
            ways1 = np.full(l1.num_sets * l1.associativity, -1,
                            dtype=np.int64)
            ways2 = np.full(l2.num_sets * l2.associativity, -1,
                            dtype=np.int64)
        (ev_group, ev_row, grp_off, grp_width, src_rows, dst_rows,
         from_dst, rel, word_lines) = stream.flat(ex.trace)
        lib.lru_copy_event_stream(
            ev_group.ctypes.data_as(i64p), ev_row.ctypes.data_as(i64p),
            M,
            grp_off.ctypes.data_as(i64p), grp_width.ctypes.data_as(i64p),
            src_rows.ctypes.data_as(i64p), dst_rows.ctypes.data_as(i64p),
            from_dst.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
            rel.ctypes.data_as(i64p), word_lines.ctypes.data_as(i64p),
            ways1.ctypes.data_as(i64p), l1.num_sets, l1.associativity,
            -1 if l1.set_mask is None else l1.set_mask,
            ways2.ctypes.data_as(i64p), l2.num_sets, l2.associativity,
            -1 if l2.set_mask is None else l2.set_mask,
            l1_hits.ctypes.data_as(i64p),
            l1_miss.ctypes.data_as(i64p),
            l2_miss.ctypes.data_as(i64p),
        )
        l1_hit_total = int(l1_hits.sum())
        l1_miss_total = int(l1_miss.sum())
        l2_miss_total = int(l2_miss.sum())
        totals = (l1_hit_total, l1_miss_total,
                  l1_miss_total - l2_miss_total, l2_miss_total)
        # Memo masters are private copies of the end state — the
        # carrier (and, via adopt, the next step) mutates its arrays
        # in place, and the plan's arrays travel into the store.
        end1, end2 = ways1.copy(), ways2.copy()
        _component_put(
            cls_key, (l1_hits, l1_miss, l2_miss, end1, end2, totals),
            l1_hits.nbytes * 3 + end1.nbytes + end2.nbytes)
        if carrier is not None:
            # The carrier keeps the (in-place mutated) end-state for
            # the next step; the plan gets private copies so later
            # steps cannot corrupt it.
            carrier.adopt_native(ways1, ways2, totals)
            return l1_hits, l1_miss, l2_miss, end1, end2, totals
        return l1_hits, l1_miss, l2_miss, ways1, ways2, totals

    # Python fallback: the offline stack-distance classifier, with the
    # per-event attribution recovered by bincount over event ids.
    carried = (carrier is not None and carrier._sim is not None
               and carrier.valid())
    if carried:
        METRICS_PLAN_COUNTERS["plan_incremental_hits"] += 1
        sim = carrier._sim
    else:
        sim = OfflineLruSimulator(board.caches)
    base = sim.counts_snapshot()
    for e0, e1, boundaries, lines in \
            _chunked_line_streams(ex, counts, stream.groups):
        event_ids = np.repeat(np.arange(e1 - e0), counts[e0:e1])
        l1_hit_mask, l2_hit_mask = sim.process(lines)
        miss_events = event_ids[~l1_hit_mask]
        span = e1 - e0
        l1_hits[e0:e1] += np.bincount(event_ids[l1_hit_mask],
                                      minlength=span)
        l1_miss[e0:e1] += np.bincount(miss_events, minlength=span)
        l2_miss[e0:e1] += np.bincount(miss_events[~l2_hit_mask],
                                      minlength=span)
    ways1 = _ways_from_sim_state(l1, sim._state[l1.name])
    ways2 = _ways_from_sim_state(l2, sim._state[l2.name])
    now = sim.counts_snapshot()
    totals = (now[0] - base[0], now[1] - base[1],
              now[2] - base[2], now[3] - base[3])
    if carrier is not None:
        carrier.adopt_sim(sim, totals)
    return l1_hits, l1_miss, l2_miss, ways1, ways2, totals


def _ways_from_sim_state(cache, state) -> np.ndarray:
    """Way-array form (MRU first, -1 empty) of a simulator state dict."""
    assoc = cache.associativity
    ways = np.full(cache.num_sets * assoc, -1, dtype=np.int64)
    for index, resident in state.items():
        if resident:
            stack = list(resident)  # LRU -> MRU
            stack.reverse()
            ways[index * assoc:index * assoc + len(stack)] = stack
    return ways


def _install_ways(cache, ways: np.ndarray) -> None:
    """Install a way array as the cache's LRU state (lazily expanded).

    Delegates to :func:`repro.soc.cache.install_ways`: the array is
    adopted as a mirror and only expanded into the per-set dicts when
    something reads them — consecutive replay steps never do.
    """
    install_ways(cache, ways)


def _run_timeline(ex, cyc, br, rf, rf2) -> np.ndarray:
    """The exact sequential timeline; returns the 9-float end state."""
    from ..soc import _native

    trace = ex.trace
    board = ex.board
    timing = board.timing
    counters = board.counters
    decoded = ex.plan
    M = trace.num_events

    # The kind-constant cycle/branch/reference charges are prefilled
    # into the memoized cost tables (see _cost_tables), so the only
    # per-build prep left is the synchronization/aux tables — content-
    # pure as well, hence memoized alongside the other components.
    # All three arrays are read-only for both timeline backends.
    flush_cycles = np.ascontiguousarray(decoded.flush_cycles,
                                        dtype=np.float64)
    tl_key = ("tl", _trace_component_digest(trace),
              _timing_sig(timing), bool(ex.double_buffered),
              flush_cycles.tobytes())
    cached = _component_get(tl_key)
    if cached is not None:
        sync, taux, acaux = cached
    else:
        kinds = trace.kinds
        sync = np.zeros(M, dtype=np.int8)
        sync[kinds == K_FLUSH] = 1
        sync[kinds == K_RECV] = 2
        if ex.double_buffered:
            sync[kinds == K_RWAIT] = 3
        taux = np.zeros(M)
        acaux = np.zeros(M)
        t_flush = trace.flush_bytes / timing.axi_bytes_per_cycle
        t_flush = t_flush / timing.accel_freq_hz
        t_flush = timing.dma_latency_s + t_flush
        taux[trace.flush_pos] = t_flush
        acaux[trace.flush_pos] = flush_cycles
        t_recv = trace.recv_bytes / timing.axi_bytes_per_cycle
        t_recv = t_recv / timing.accel_freq_hz
        t_recv = timing.dma_latency_s + t_recv
        taux[trace.recv_pos] = t_recv
        _component_put(tl_key, (sync, taux, acaux),
                       sync.nbytes + taux.nbytes + acaux.nbytes)

    f = timing.cpu_freq_hz
    af = timing.accel_freq_hz
    dsc = timing.dma_start_cycles
    dsb = timing.dma_start_branches
    pollp = timing.poll_period_cycles
    pollb = timing.poll_branches
    db = ex.double_buffered

    state = [
        counters.cpu_cycles, counters.branch_instructions,
        counters.cache_references, counters.stall_cycles,
        counters.accel_cycles, board.clock, board.accel_ready_at,
        board.dma_busy_until, board.accelerator.total_cycles,
    ]
    lib = _native.native_lib()
    if lib is not None:
        import ctypes

        f64p = ctypes.POINTER(ctypes.c_double)
        state_arr = np.asarray(state)
        sync8 = np.ascontiguousarray(sync)
        lib.timeline_batch(
            sync8.ctypes.data_as(ctypes.POINTER(ctypes.c_int8)),
            np.ascontiguousarray(cyc).ctypes.data_as(f64p),
            np.ascontiguousarray(br).ctypes.data_as(f64p),
            np.ascontiguousarray(rf).ctypes.data_as(f64p),
            np.ascontiguousarray(rf2).ctypes.data_as(f64p),
            taux.ctypes.data_as(f64p),
            acaux.ctypes.data_as(f64p),
            M, int(db), f, af, dsc, dsb, pollp, pollb,
            state_arr.ctypes.data_as(f64p),
        )
        return state_arr
    (cpu, branch, refs, stall, accel_ctr, clock, ready, busy,
     accel_total) = state
    sync_l = sync.tolist()
    cyc_l = cyc.tolist()
    br_l = br.tolist()
    rf_l = rf.tolist()
    rf2_l = rf2.tolist()
    taux_l = taux.tolist()
    ac_l = acaux.tolist()
    for i in range(M):
        s = sync_l[i]
        if s == 0:
            c = cyc_l[i]
            cpu += c
            branch += br_l[i]
            refs += rf_l[i]
            r2 = rf2_l[i]
            if r2 != 0.0:
                refs += r2
            clock += c / f
        elif s == 1:  # flush_send (+process_stream +schedule)
            cpu += dsc
            branch += dsb
            clock += dsc / f
            t = taux_l[i]
            ac = ac_l[i]
            if db:
                start = clock if clock > busy else busy
                completion = start + t
                busy = completion
                arrival = completion
            else:
                if t > 0.0:
                    ts = clock + t
                    if ts > clock:
                        sc = (ts - clock) * f
                        stall += sc
                        branch += (sc / pollp) * pollb
                        clock = ts
                arrival = clock
            s2 = ready if ready > arrival else arrival
            ready = s2 + ac / af
            accel_ctr += ac
            accel_total += ac
        elif s == 2:  # recv synchronization
            cpu += dsc
            branch += dsb
            clock += dsc / f
            if ready > clock:
                sc = (ready - clock) * f
                stall += sc
                branch += (sc / pollp) * pollb
                clock = ready
            t = taux_l[i]
            if t > 0.0:
                ts = clock + t
                if ts > clock:
                    sc = (ts - clock) * f
                    stall += sc
                    branch += (sc / pollp) * pollb
                    clock = ts
        else:  # pre-receive wait_sends (double-buffered runtimes)
            if busy > clock:
                sc = (busy - clock) * f
                stall += sc
                branch += (sc / pollp) * pollb
                clock = busy
    return np.asarray([cpu, branch, refs, stall, accel_ctr, clock,
                       ready, busy, accel_total])


# -- region-write summaries -------------------------------------------------

#: Upper bound on the expanded-word budget of one backward block in
#: the winner scans.  The actual block scales with the region's used
#: span: coverage completes within roughly one loop body's worth of
#: writes (the staged offsets repeat every loop iteration), so a block
#: of a few times ``used_words`` almost always finishes in one pass —
#: a fixed large block would expand and sort the whole stream suffix
#: only to discard everything past the covered span.
_WINNER_BLOCK_WORDS = 1 << 19
_WINNER_BLOCK_MIN_WORDS = 1 << 12


def _winner_tables(ex):
    """Last-writer index maps of both DMA staging regions (memoized).

    The staged regions are write-before-read per flush, so their final
    contents never influence later runs; the winning writes are
    precomputed (a blocked backward last-writer scan over the staged
    item stream) so each invocation rebuilds the region with a handful
    of vectorized writes — for debugging fidelity, exactly matching
    the per-tile path's end state.  Pure trace+region-size data, so
    memoized across invocations and layouts.
    """
    trace = ex.trace
    key = ("win", _trace_component_digest(trace),
           ex.engine.input_words.size, ex.engine.output_words.size)
    cached = _component_get(key)
    if cached is not None:
        return cached
    word_dest, word_vals, tile_writes = _input_winners(ex)
    output_writes = _output_winners(ex)
    value = (word_dest, word_vals, tile_writes, output_writes)
    nbytes = word_dest.nbytes + word_vals.nbytes
    for _, tiles, dest, src in tile_writes:
        nbytes += tiles.nbytes + dest.nbytes + src.nbytes
    for _, dest, rel in output_writes:
        nbytes += dest.nbytes + rel.nbytes
    _component_put(key, value, nbytes)
    return value


def _scan_last_writers(fill_starts, widths, region_words, used_words):
    """Backward blocked last-writer scan.

    Returns ``(winner, starts)``: per region word, the highest item
    index whose span covers it among the items examined — identical to
    the scalar backward "first uncovered write wins" scan (an item's
    span always lies inside the used span, so the early exit only
    skips items that could not have won anything).  Item start words
    are produced lazily per scanned block by ``fill_starts(starts, lo,
    hi)`` — coverage completes within roughly one loop body's worth of
    writes, so the scan (and the start-word computation) touches only
    a suffix of the stream; ``starts`` is valid for every winning item.
    """
    n = widths.size
    winner = np.full(region_words, -1, dtype=np.int64)
    starts = np.zeros(n, dtype=np.int64)
    if used_words <= 0 or not n:
        return winner, starts
    block = max(_WINNER_BLOCK_MIN_WORDS,
                min(_WINNER_BLOCK_WORDS, 4 * used_words))
    ends = np.cumsum(widths)
    covered = 0
    hi = n
    while hi > 0 and covered < used_words:
        base = int(ends[hi - 1])
        lo = int(np.searchsorted(ends, base - block, side="left"))
        if lo >= hi:
            lo = hi - 1
        first = int(ends[lo - 1]) if lo else 0
        total = int(ends[hi - 1]) - first
        if total <= 0:
            hi = lo
            continue
        fill_starts(starts, lo, hi)
        wd = widths[lo:hi]
        item_ids = np.repeat(np.arange(lo, hi, dtype=np.int64), wd)
        item_start = np.repeat(ends[lo:hi] - wd, wd)
        pos = np.repeat(starts[lo:hi], wd) \
            + (np.arange(first, first + total, dtype=np.int64)
               - item_start)
        # Last writer per word within the block: stable sort keeps the
        # expansion (= ascending item) order inside equal positions, so
        # the run's final element is the block's highest writer.
        order = np.argsort(pos, kind="stable")
        pos_sorted = pos[order]
        ids_sorted = item_ids[order]
        run_last = np.flatnonzero(
            np.append(pos_sorted[1:] != pos_sorted[:-1], True))
        pos_uniq = pos_sorted[run_last]
        ids_uniq = ids_sorted[run_last]
        # Later blocks (higher items) were scanned first and always win.
        free = winner[pos_uniq] < 0
        winner[pos_uniq[free]] = ids_uniq[free]
        covered += int(free.sum())
        hi = lo
    return winner, starts


def _winning_items(winner):
    """Winning (item, word) pairs ordered like the scalar backward scan:
    descending item index, ascending word position within an item."""
    win_pos = np.flatnonzero(winner >= 0)
    win_ids = winner[win_pos]
    order = np.argsort(-win_ids, kind="stable")
    return win_ids[order], win_pos[order]


def _input_winners(ex):
    """Last-writer index map of the DMA input staging region."""
    trace = ex.trace
    input_used = 0
    if trace.word_offsets.size:
        input_used = int(trace.word_offsets.max()) + 4
    for tile_class in trace.send_classes:
        if tile_class.region_offsets.size:
            input_used = max(
                input_used,
                int(tile_class.region_offsets.max())
                + tile_class.num_elements() * tile_class.itemsize,
            )
    used_words = input_used // 4

    is_word = trace.staged_is_word.astype(bool)
    widths = np.where(is_word, 1, trace.staged_widths).astype(np.int64)
    word_ordinal = np.cumsum(is_word) - 1

    def fill_starts(starts, lo, hi):
        iw = is_word[lo:hi]
        if iw.any():
            starts[lo:hi][iw] = \
                trace.word_offsets[word_ordinal[lo:hi][iw]] // 4
        values = trace.staged_values[lo:hi]
        indices = trace.staged_indices[lo:hi]
        tiles = ~iw
        for class_id in np.unique(values[tiles]):
            sel = tiles & (values == class_id)
            starts[lo:hi][sel] = (trace.send_classes[class_id]
                                  .region_offsets[indices[sel]] // 4)

    winner, starts = _scan_last_writers(
        fill_starts, widths, ex.engine.input_words.size, used_words)
    ids, pos = _winning_items(winner)
    word_sel = is_word[ids] if ids.size else \
        np.empty(0, dtype=bool)
    word_dest = pos[word_sel]
    if word_dest.size:
        word_vals = (trace.word_values[word_ordinal[ids[word_sel]]]
                     & 0xFFFFFFFF).astype(np.uint32)
    else:
        word_vals = np.empty(0, dtype=np.uint32)

    tile_writes: List[Tuple] = []
    tile_ids = ids[~word_sel]
    tile_pos = pos[~word_sel]
    if tile_ids.size:
        classes = trace.staged_values[tile_ids]
        for class_id in np.unique(classes):
            in_class = classes == class_id
            ids_c = tile_ids[in_class]
            pos_c = tile_pos[in_class]
            first = np.empty(ids_c.size, dtype=bool)
            first[0] = True
            first[1:] = ids_c[1:] != ids_c[:-1]
            row_of = np.cumsum(first) - 1
            rows = ids_c[first]
            rel = pos_c - starts[rows][row_of]
            src = row_of * widths[rows][row_of] + rel
            tile_writes.append((
                int(class_id),
                trace.staged_indices[rows].astype(np.int64, copy=False),
                pos_c,
                src,
            ))
    return (word_dest.astype(np.int64, copy=False), word_vals,
            tile_writes)


def _output_winners(ex):
    """Last-writer index map of the DMA output staging region."""
    trace = ex.trace
    output_used = 0
    for tile_class in trace.recv_classes:
        if tile_class.region_offsets.size:
            output_used = max(
                output_used,
                int(tile_class.region_offsets.max())
                + tile_class.num_elements() * tile_class.itemsize,
            )
    used_words = output_used // 4

    refs = trace.recv_refs
    widths = (trace.recv_bytes // 4).astype(np.int64)

    def fill_starts(starts, lo, hi):
        span = hi - lo
        cls = np.fromiter((refs[i][0] for i in range(lo, hi)),
                          dtype=np.int64, count=span)
        idx = np.fromiter((refs[i][1] for i in range(lo, hi)),
                          dtype=np.int64, count=span)
        for class_id in np.unique(cls):
            sel = cls == class_id
            starts[lo:hi][sel] = (trace.recv_classes[class_id]
                                  .region_offsets[idx[sel]] // 4)

    winner, starts = _scan_last_writers(
        fill_starts, widths, ex.engine.output_words.size, used_words)
    ids, pos = _winning_items(winner)
    writes: List[Tuple] = []
    if ids.size:
        first = np.empty(ids.size, dtype=bool)
        first[0] = True
        first[1:] = ids[1:] != ids[:-1]
        seg = np.flatnonzero(first)
        seg_end = np.append(seg[1:], ids.size)
        for s, e, ordinal in zip(seg, seg_end, ids[first]):
            dest = pos[s:e]
            writes.append((int(ordinal), dest, dest - starts[ordinal]))
    return writes
