"""Parallel first-run plan prebuilding: pay the cold-start tax early.

A first run of any kernel pays the full cold path — compile, trace
synthesis, metrics-plan build — before the warm O(state) replay ever
applies.  When the set of upcoming shapes is known (a tuning sweep's
points, a service's expected request mix, a model's layer schedule),
that tax can be paid *up front and in parallel*: :func:`prebuild_plans`
fans the independent first-run builds onto the same forked worker pool
:func:`~repro.execution.model_plan.run_model_jobs` uses, each worker
persisting its compiled kernel, synthesized trace, and MetricsPlan
into the shared sharded store and returning its diagnostics *delta*
(stage timings, plan counters, store counters) for the parent to merge
— so ``diagnostics()["metrics_plan"]`` keeps counting builds that
happened in workers, and the later "real" runs are pure warm hits.

Specs use the service request vocabulary (``kind`` = ``"matmul"`` /
``"conv"`` plus the shape and lowering knobs — see
:func:`repro.service.worker.run_request`); ``inputs`` may be omitted,
in which case deterministic zero arrays are synthesized — every
store-persisted artifact (kernel, trace, plan) is keyed by shape and
configuration, never by input *values*, so zero inputs warm exactly
the entries real data will hit.

Pool sizing: ``REPRO_PLAN_PREBUILD_WORKERS`` (malformed values warn
once and fall back, like every other env knob), default
``min(4, cpus)``.  Sized <= 1 — or inside a worker, or without fork —
the builds run inline, bit-identical.

Entry points: :func:`prebuild_plans` directly, the tuning
``SweepDriver``'s pool prewarm, and the service's ``warmup`` RPC.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..envutil import env_int

#: Pool-size knob for prebuild fan-out (distinct from
#: REPRO_MODEL_WORKERS so serving and figure runs tune independently).
PREBUILD_WORKERS_ENV = "REPRO_PLAN_PREBUILD_WORKERS"


def prebuild_workers() -> int:
    """Requested pool size: REPRO_PLAN_PREBUILD_WORKERS, else min(4, cpus)."""
    default = max(1, min(4, os.cpu_count() or 1))
    return env_int(PREBUILD_WORKERS_ENV, default, minimum=1)


def _zero_inputs(spec: Dict[str, Any]) -> List[np.ndarray]:
    """Deterministic placeholder inputs matching the spec's shapes."""
    kind = spec.get("kind")
    if kind == "matmul":
        m, n, k = spec["m"], spec["n"], spec["k"]
        shapes = [(m, k), (k, n)]
    elif kind == "conv":
        shapes = [
            (spec["batch"], spec["in_ch"], spec["in_hw"], spec["in_hw"]),
            (spec["out_ch"], spec["in_ch"], spec["f_hw"], spec["f_hw"]),
        ]
    else:
        shapes = []
    return [np.zeros(shape, np.int32) for shape in shapes]


def _prebuild_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    """One worker-side prebuild: run the spec, report a small summary.

    Failures are per-spec data, not pool-wide exceptions — a warmup
    with one bad spec still warms the rest.  The heavyweight products
    (kernel, trace, plan) land in the shared store; only the summary
    and the counter delta travel back over the pipe.
    """
    from ..service.worker import run_request

    spec = dict(spec)
    if "inputs" not in spec:
        spec["inputs"] = _zero_inputs(spec)
    try:
        counters, _ = run_request(spec)
    except Exception as exc:  # noqa: BLE001 — summarised for the caller
        return {"ok": False, "kind": spec.get("kind"),
                "error": f"{type(exc).__name__}: {exc}"}
    return {"ok": True, "kind": spec.get("kind"),
            "cycles": int(counters.cpu_cycles)}


def prebuild_plans(specs: Sequence[Dict[str, Any]],
                   workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Build (and persist) the cold-path artifacts for ``specs``.

    Returns one summary dict per spec, in order: ``{"ok": True,
    "kind": ..., "cycles": ...}`` or ``{"ok": False, "error": ...}``.
    Worker counter deltas merge back into this process's diagnostics,
    so the prebuilt plan builds appear in ``metrics_plan_build_s`` and
    ``metrics_plan_misses`` exactly as if they had run inline — the
    accounting rule ``benchmarks/perf_guard.py`` documents.
    """
    from .model_plan import run_model_jobs

    specs = list(specs)
    if not specs:
        return []
    if workers is None:
        workers = prebuild_workers()
    return run_model_jobs([(_prebuild_job, (spec,)) for spec in specs],
                          workers=workers)
