"""``accel`` dialect: host-accelerator transaction operations.

The paper introduces this dialect as the intermediate abstraction between
tiled ``linalg`` code and the AXI DMA runtime library (Sec. III-C, Fig. 9):
operations encode initialization, staged sends, and receives, and are easy
to hoist across loop levels to implement stationary dataflows.

Staging semantics
-----------------
``send_literal`` / ``send`` / ``send_dim`` / ``send_idx`` copy words into
the DMA input region at a running byte ``offset`` (an ``i32`` SSA value)
and return the advanced offset, enabling several logical transfers to be
batched into one DMA transaction.  ``flush_send`` issues
``dma_start_send`` for the accumulated batch and blocks on
``dma_wait_send_completion``, resetting the offset to zero.  ``recv``
blocks until the accelerator produces data and copies it back into a
memref (optionally accumulating).  This matches the runtime library calls
of Sec. III-A one-for-one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.parser import register_dialect_op
from ..ir.types import I32, MemRefType
from ..ir.verifier import VerificationError, register_verifier

#: Receive modes: overwrite the destination tile or accumulate into it.
RECV_STORE = "store"
RECV_ACCUMULATE = "accumulate"

ACCEL_OPS = tuple(
    register_dialect_op(name) for name in (
        "accel.dma_init",
        "accel.send_literal",
        "accel.send",
        "accel.send_dim",
        "accel.send_idx",
        "accel.flush_send",
        "accel.recv",
    )
)

#: Ops that participate in a staged send batch.
STAGING_OPS = (
    "accel.send_literal",
    "accel.send",
    "accel.send_dim",
    "accel.send_idx",
)


def dma_init(b: Builder, dma_id: Value, input_address: Value,
             input_buffer_size: Value, output_address: Value,
             output_buffer_size: Value) -> Operation:
    """Configure the DMA engine; executed once per application (Fig. 6b L3)."""
    return b.create(
        "accel.dma_init",
        operands=[dma_id, input_address, input_buffer_size,
                  output_address, output_buffer_size],
    )


def send_literal(b: Builder, literal: Value, offset: Value) -> Value:
    """Stage a 32-bit opcode literal; returns the advanced offset."""
    return b.create(
        "accel.send_literal",
        operands=[literal, offset],
        result_types=[I32],
    ).result


def send(b: Builder, ref: Value, offset: Value) -> Value:
    """Stage a memref tile into the DMA input region (packing copy)."""
    return b.create(
        "accel.send",
        operands=[ref, offset],
        result_types=[I32],
    ).result


def send_dim(b: Builder, ref: Value, dim_index: Value, offset: Value) -> Value:
    """Stage one dimension extent of ``ref`` (paper Fig. 15b L7/L9)."""
    return b.create(
        "accel.send_dim",
        operands=[ref, dim_index, offset],
        result_types=[I32],
    ).result


def send_idx(b: Builder, index_value: Value, offset: Value) -> Value:
    """Stage a loop index value as a word (for index-driven accelerators)."""
    return b.create(
        "accel.send_idx",
        operands=[index_value, offset],
        result_types=[I32],
    ).result


def flush_send(b: Builder, offset: Value) -> Value:
    """``dma_start_send`` + ``dma_wait_send_completion`` for the batch."""
    return b.create(
        "accel.flush_send",
        operands=[offset],
        result_types=[I32],
    ).result


def recv(b: Builder, ref: Value, offset: Value,
         mode: str = RECV_STORE) -> Operation:
    """Wait for output data and copy it into ``ref`` (Fig. 6b L17)."""
    if mode not in (RECV_STORE, RECV_ACCUMULATE):
        raise VerificationError(f"bad recv mode {mode!r}")
    return b.create(
        "accel.recv",
        operands=[ref, offset],
        attributes={"mode": mode},
    )


def recv_mode(op: Operation) -> str:
    mode = op.get_attr("mode")
    return mode.value if mode is not None else RECV_STORE


def is_accel_op(op: Operation) -> bool:
    return op.name in ACCEL_OPS


def staged_memref_operand(op: Operation) -> Optional[Value]:
    """The memref being moved by a send/recv op, if any."""
    if op.name in ("accel.send", "accel.send_dim", "accel.recv"):
        return op.operands[0]
    return None


# ---------------------------------------------------------------------------
# Verifiers
# ---------------------------------------------------------------------------


@register_verifier("accel.dma_init")
def _verify_dma_init(op: Operation) -> None:
    if len(op.operands) != 5:
        raise VerificationError(
            "accel.dma_init takes (id, in_addr, in_size, out_addr, out_size)"
        )


def _expect_operands(op: Operation, count: int,
                     memref_positions: Sequence[int] = ()) -> None:
    if len(op.operands) != count:
        raise VerificationError(f"{op.name} takes {count} operands")
    for position in memref_positions:
        if not isinstance(op.operands[position].type, MemRefType):
            raise VerificationError(
                f"{op.name} operand #{position} must be a memref, got "
                f"{op.operands[position].type}"
            )


@register_verifier("accel.send_literal")
def _verify_send_literal(op: Operation) -> None:
    _expect_operands(op, 2)


@register_verifier("accel.send")
def _verify_send(op: Operation) -> None:
    _expect_operands(op, 2, memref_positions=[0])


@register_verifier("accel.send_dim")
def _verify_send_dim(op: Operation) -> None:
    _expect_operands(op, 3, memref_positions=[0])


@register_verifier("accel.send_idx")
def _verify_send_idx(op: Operation) -> None:
    _expect_operands(op, 2)


@register_verifier("accel.flush_send")
def _verify_flush(op: Operation) -> None:
    _expect_operands(op, 1)


@register_verifier("accel.recv")
def _verify_recv(op: Operation) -> None:
    _expect_operands(op, 2, memref_positions=[0])
    mode = recv_mode(op)
    if mode not in (RECV_STORE, RECV_ACCUMULATE):
        raise VerificationError(f"accel.recv: bad mode {mode!r}")
