"""``linalg`` dialect: structured linear-algebra operations.

Provides ``linalg.generic`` (indexing maps + iterator types + scalar body,
paper Fig. 2a), the named ops the paper targets (``linalg.matmul``,
``linalg.conv_2d_nchw_fchw``), and the structural queries used by the
match-and-annotate pass (step 3 of the AXI4MLIR flow, Fig. 4).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..ir.affine import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineMap,
)
from ..ir.attributes import AffineMapAttr, ArrayAttr, StringAttr, unwrap
from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Operation, Value
from ..ir.parser import register_dialect_op
from ..ir.types import MemRefType
from ..ir.verifier import VerificationError, op_diag, register_verifier

PARALLEL = "parallel"
REDUCTION = "reduction"

#: Ops this dialect re-materializes from textual IR.
LINALG_OPS = tuple(
    register_dialect_op(name) for name in (
        "linalg.generic", "linalg.matmul", "linalg.conv_2d_nchw_fchw",
        "linalg.yield",
    )
)


# ---------------------------------------------------------------------------
# linalg.generic
# ---------------------------------------------------------------------------


def generic(
    b: Builder,
    indexing_maps: Sequence[AffineMap],
    iterator_types: Sequence[str],
    inputs: Sequence[Value],
    outputs: Sequence[Value],
    body: Optional[Callable[[Builder, List[Value]], Value]] = None,
) -> Operation:
    """Create a ``linalg.generic`` over memref operands.

    ``body`` receives a builder positioned inside the region and the block
    arguments (one scalar per operand); it returns the value to yield into
    the output.  When omitted, a multiply-accumulate body is built, which is
    the kernel of every operation in the paper's benchmark suite.
    """
    operands = [*inputs, *outputs]
    if len(indexing_maps) != len(operands):
        raise VerificationError(
            f"linalg.generic needs one indexing map per operand: "
            f"{len(indexing_maps)} maps for {len(operands)} operands"
        )
    op = b.create(
        "linalg.generic",
        operands=operands,
        attributes={
            "indexing_maps": [AffineMapAttr(m) for m in indexing_maps],
            "iterator_types": list(iterator_types),
            "operandSegmentSizes": [len(inputs), len(outputs)],
        },
        regions=1,
    )
    scalar_types = []
    for operand in operands:
        operand_type = operand.type
        if not isinstance(operand_type, MemRefType):
            raise VerificationError(
                f"linalg.generic operands must be memrefs, got {operand_type}"
            )
        scalar_types.append(operand_type.element_type)
    block = op.regions[0].add_block(scalar_types)
    inner = Builder(InsertionPoint.at_end(block))
    if body is None:
        body = _mul_add_body
    result = body(inner, list(block.arguments))
    inner.create("linalg.yield", operands=[result])
    return op


def _mul_add_body(b: Builder, args: List[Value]) -> Value:
    from . import arith

    if len(args) != 3:
        raise VerificationError(
            f"default mul-add body expects 3 scalars, got {len(args)}"
        )
    a, w, acc = args
    is_float = str(a.type).startswith("f")
    mul = arith.mulf(b, a, w) if is_float else arith.muli(b, a, w)
    return arith.addf(b, acc, mul) if is_float else arith.addi(b, acc, mul)


def indexing_maps(op: Operation) -> List[AffineMap]:
    maps_attr = op.get_attr("indexing_maps")
    if not isinstance(maps_attr, ArrayAttr):
        raise VerificationError(f"{op.name} has no indexing_maps")
    return [m.value for m in maps_attr]


def iterator_types(op: Operation) -> List[str]:
    iters = op.get_attr("iterator_types")
    if not isinstance(iters, ArrayAttr):
        raise VerificationError(f"{op.name} has no iterator_types")
    return [i.value for i in iters]


def num_inputs(op: Operation) -> int:
    segments = unwrap(op.get_attr("operandSegmentSizes"))
    return int(segments[0])


def inputs(op: Operation) -> Tuple[Value, ...]:
    return op.operands[: num_inputs(op)]


def outputs(op: Operation) -> Tuple[Value, ...]:
    return op.operands[num_inputs(op):]


def loop_dim_names(op: Operation) -> Tuple[str, ...]:
    maps = indexing_maps(op)
    names = maps[0].dim_names
    return names or tuple(f"d{i}" for i in range(maps[0].num_dims))


def loop_ranges(op: Operation) -> Tuple[int, ...]:
    """Infer each loop dimension's trip count from operand shapes.

    For a dim appearing as a plain ``AffineDimExpr`` in some operand's map,
    the range is that operand's corresponding shape entry.  Dims that only
    appear inside compound expressions (convolution windows) are resolved
    from the remaining extents: ``size = operand_extent - (sum of other
    term extents) + 1`` for ``oh + kh`` style expressions.
    """
    maps = indexing_maps(op)
    num_dims = maps[0].num_dims
    ranges: List[Optional[int]] = [None] * num_dims
    compound: List[Tuple[AffineBinaryExpr, int]] = []

    for operand, amap in zip(op.operands, maps):
        shape = operand.type.shape
        for axis, expr in enumerate(amap.results):
            if isinstance(expr, AffineDimExpr):
                extent = shape[axis]
                known = ranges[expr.position]
                if known is not None and known != extent:
                    raise VerificationError(
                        f"dim {expr.position} has conflicting extents "
                        f"{known} and {extent}"
                    )
                ranges[expr.position] = extent
            elif isinstance(expr, AffineBinaryExpr):
                compound.append((expr, shape[axis]))

    # Second pass: solve `stride*oh + kh`-style window expressions.
    for expr, extent in compound:
        terms = _linear_terms(expr)
        unknown = [(d, c) for d, c in terms.items() if ranges[d] is None]
        if len(unknown) != 1:
            continue
        dim_pos, coefficient = unknown[0]
        used = 0
        for d, c in terms.items():
            if d != dim_pos:
                used += c * (ranges[d] - 1)
        ranges[dim_pos] = (extent - 1 - used) // coefficient + 1

    if any(r is None for r in ranges):
        raise VerificationError(
            f"could not infer all loop ranges for {op.name}: {ranges}"
        )
    return tuple(int(r) for r in ranges)


def _linear_terms(expr) -> dict:
    """Decompose ``2*oh + kh`` into ``{oh: 2, kh: 1}``."""
    if isinstance(expr, AffineDimExpr):
        return {expr.position: 1}
    if isinstance(expr, AffineConstantExpr):
        return {}
    if isinstance(expr, AffineBinaryExpr):
        if expr.kind == "+":
            left = _linear_terms(expr.lhs)
            for d, c in _linear_terms(expr.rhs).items():
                left[d] = left.get(d, 0) + c
            return left
        if expr.kind == "*":
            if isinstance(expr.rhs, AffineConstantExpr):
                return {d: c * expr.rhs.value
                        for d, c in _linear_terms(expr.lhs).items()}
            if isinstance(expr.lhs, AffineConstantExpr):
                return {d: c * expr.lhs.value
                        for d, c in _linear_terms(expr.rhs).items()}
    raise VerificationError(f"non-linear indexing expression {expr}")


# ---------------------------------------------------------------------------
# Named operations and their canonical generic traits
# ---------------------------------------------------------------------------


def matmul_maps() -> List[AffineMap]:
    """Indexing maps of MatMul: C(m,n) += A(m,k) * B(k,n) (paper Fig. 2a)."""
    names = ("m", "n", "k")
    m, n, k = AffineDimExpr(0), AffineDimExpr(1), AffineDimExpr(2)
    return [
        AffineMap(3, (m, k), names),
        AffineMap(3, (k, n), names),
        AffineMap(3, (m, n), names),
    ]


MATMUL_ITERATORS = (PARALLEL, PARALLEL, REDUCTION)


def matmul(b: Builder, a: Value, rhs: Value, out: Value) -> Operation:
    """Create a named ``linalg.matmul``."""
    return b.create(
        "linalg.matmul",
        operands=[a, rhs, out],
        attributes={"operandSegmentSizes": [2, 1]},
    )


def conv_2d_nchw_fchw_maps(stride: int = 1) -> List[AffineMap]:
    """Indexing maps of NCHW/FCHW conv over (n, f, oh, ow, c, fh, fw)."""
    names = ("n", "f", "oh", "ow", "c", "fh", "fw")
    n, f, oh, ow, c, fh, fw = (AffineDimExpr(i) for i in range(7))

    def strided(outer, inner):
        if stride == 1:
            return AffineBinaryExpr("+", outer, inner)
        return AffineBinaryExpr(
            "+", AffineBinaryExpr("*", outer, AffineConstantExpr(stride)), inner
        )

    return [
        AffineMap(7, (n, c, strided(oh, fh), strided(ow, fw)), names),
        AffineMap(7, (f, c, fh, fw), names),
        AffineMap(7, (n, f, oh, ow), names),
    ]


CONV_ITERATORS = (PARALLEL, PARALLEL, PARALLEL, PARALLEL,
                  REDUCTION, REDUCTION, REDUCTION)


def conv_2d_nchw_fchw(b: Builder, image: Value, filter: Value, out: Value,
                      stride: int = 1) -> Operation:
    """Create a named ``linalg.conv_2d_nchw_fchw``."""
    return b.create(
        "linalg.conv_2d_nchw_fchw",
        operands=[image, filter, out],
        attributes={
            "operandSegmentSizes": [2, 1],
            "strides": [stride, stride],
        },
    )


# ---------------------------------------------------------------------------
# Structural matching (used by the match-and-annotate pass)
# ---------------------------------------------------------------------------


def body_is_multiply_accumulate(op: Operation) -> bool:
    """True when the region computes ``yield(acc + a*b)``."""
    if not op.regions or not op.regions[0].blocks:
        return False
    block = op.regions[0].entry_block
    names = [inner.name for inner in block.operations]
    return names in (
        ["arith.mulf", "arith.addf", "linalg.yield"],
        ["arith.muli", "arith.addi", "linalg.yield"],
    )


def matches_matmul(op: Operation) -> bool:
    """Structural check: is this generic a MatMul (maps, iterators, body)?"""
    if op.name != "linalg.generic":
        return False
    if iterator_types(op) != list(MATMUL_ITERATORS):
        return False
    try:
        maps = indexing_maps(op)
    except VerificationError:
        return False
    want = matmul_maps()
    got = [tuple(str(e) for e in m.results) for m in maps]
    expected = [tuple(str(e) for e in m.results) for m in want]
    return got == expected and body_is_multiply_accumulate(op)


def kernel_name(op: Operation) -> Optional[str]:
    """Canonical kernel implemented by this op, if recognizable."""
    if op.name in ("linalg.matmul", "linalg.conv_2d_nchw_fchw"):
        return op.name
    if op.name == "linalg.generic":
        if matches_matmul(op):
            return "linalg.matmul"
        if len(iterator_types(op)) == 7:
            return "linalg.conv_2d_nchw_fchw"
    return None


def _verify_segment_sizes(op: Operation) -> None:
    """``operandSegmentSizes`` must be two non-negative ints summing to
    the operand count — accessors like :func:`inputs` index with it."""
    from ..ir.attributes import IntegerAttr

    segments = op.get_attr("operandSegmentSizes")
    if not isinstance(segments, ArrayAttr) or len(segments) != 2 or any(
        not isinstance(e, IntegerAttr) for e in segments
    ):
        raise VerificationError(
            f"{op_diag(op)}: operandSegmentSizes must be a pair of "
            f"integers, got {segments!r}"
        )
    sizes = [e.value for e in segments]
    if any(s < 0 for s in sizes) or sum(sizes) != len(op.operands):
        raise VerificationError(
            f"{op_diag(op)}: operandSegmentSizes {sizes} do not sum to "
            f"the {len(op.operands)} operands"
        )


@register_verifier("linalg.matmul")
@register_verifier("linalg.conv_2d_nchw_fchw")
def _verify_named_op(op: Operation) -> None:
    _verify_segment_sizes(op)


@register_verifier("linalg.generic")
def _verify_generic(op: Operation) -> None:
    _verify_segment_sizes(op)
    maps = indexing_maps(op)
    iters = iterator_types(op)
    if any(i not in (PARALLEL, REDUCTION) for i in iters):
        raise VerificationError(f"{op_diag(op)}: bad iterator types {iters}")
    if len(maps) != len(op.operands):
        raise VerificationError(
            f"{op_diag(op)}: {len(maps)} indexing maps for "
            f"{len(op.operands)} operands"
        )
    if not maps:
        raise VerificationError(
            f"{op_diag(op)}: linalg.generic needs at least one operand "
            f"and indexing map"
        )
    num_dims = maps[0].num_dims
    if num_dims != len(iters):
        raise VerificationError(
            f"{len(iters)} iterator types for {num_dims}-dim maps"
        )
    for amap, operand in zip(maps, op.operands):
        if amap.num_dims != num_dims:
            raise VerificationError("indexing maps disagree on dim count")
        operand_type = operand.type
        if isinstance(operand_type, MemRefType):
            if amap.num_results != operand_type.rank:
                raise VerificationError(
                    f"map {amap} rank does not match operand {operand_type}"
                )
