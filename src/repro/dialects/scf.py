"""``scf`` dialect: structured control flow.

Only ``scf.for`` (plus its ``scf.yield`` terminator) is needed for the
AXI4MLIR flow — the generated host code is a perfect loop nest over tiles
(paper Fig. 2b / Fig. 6b).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Operation, Value
from ..ir.parser import register_dialect_op
from ..ir.types import INDEX
from ..ir.verifier import VerificationError, register_verifier

#: Ops this dialect re-materializes from textual IR.  ``scf.for`` uses the
#: custom ``scf.for %iv = %lb to %ub step %st { ... }`` syntax; the parser
#: handles it directly.
SCF_OPS = tuple(
    register_dialect_op(name) for name in ("scf.for", "scf.yield")
)


def for_op(b: Builder, lower: Value, upper: Value, step: Value,
           iv_name: Optional[str] = None) -> Operation:
    """Create an empty ``scf.for`` (body gets an induction-variable arg)."""
    op = b.create(
        "scf.for",
        operands=[lower, upper, step],
        regions=1,
    )
    body = op.regions[0].add_block([INDEX])
    if iv_name:
        op.set_attr("iv_name", iv_name)
    # The terminator is appended when the body context closes (build_for)
    # or immediately for callers that fill the body manually.
    del body
    return op


def body_block(op: Operation) -> Block:
    if op.name != "scf.for":
        raise VerificationError(f"expected scf.for, got {op.name}")
    return op.regions[0].entry_block


def induction_variable(op: Operation) -> Value:
    return body_block(op).arguments[0]


def bounds(op: Operation):
    """Return the (lower, upper, step) operands of an ``scf.for``."""
    lower, upper, step = op.operands[:3]
    return lower, upper, step


def yield_op(b: Builder) -> Operation:
    return b.create("scf.yield")


@contextlib.contextmanager
def build_for(b: Builder, lower: Value, upper: Value, step: Value,
              iv_name: Optional[str] = None) -> Iterator[Value]:
    """Context manager building a loop body at the right insertion point.

    Yields the induction variable; appends ``scf.yield`` when the body is
    complete::

        with scf.build_for(b, c0, c60, c4, "m") as m:
            ...
    """
    loop = for_op(b, lower, upper, step, iv_name)
    body = body_block(loop)
    b.push_insertion_point(InsertionPoint.at_end(body))
    try:
        yield body.arguments[0]
        yield_op(b)
    finally:
        b.pop_insertion_point()


@register_verifier("scf.for")
def _verify_for(op: Operation) -> None:
    if len(op.operands) != 3:
        raise VerificationError("scf.for takes (lower, upper, step)")
    for operand in op.operands:
        if operand.type != INDEX:
            raise VerificationError(
                f"scf.for bounds must be index, got {operand.type}"
            )
    if len(op.regions) != 1 or len(op.regions[0].blocks) != 1:
        raise VerificationError("scf.for needs exactly one body block")
    body = op.regions[0].entry_block
    if len(body.arguments) != 1 or body.arguments[0].type != INDEX:
        raise VerificationError("scf.for body takes one index argument")
    if body.operations and body.terminator.name != "scf.yield":
        raise VerificationError("scf.for body must end with scf.yield")


def perfect_nest_depth(op: Operation) -> int:
    """Depth of the perfectly nested loop chain rooted at ``op``."""
    depth = 0
    current = op
    while current is not None and current.name == "scf.for":
        depth += 1
        body = body_block(current)
        non_yield = [o for o in body.operations if o.name != "scf.yield"]
        current = non_yield[0] if len(non_yield) == 1 else None
    return depth
