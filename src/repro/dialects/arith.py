"""``arith`` dialect: constants and scalar arithmetic."""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.parser import register_dialect_op
from ..ir.types import FloatType, IndexType, IntegerType, Type, INDEX
from ..ir.verifier import VerificationError, op_diag, register_verifier

#: Ops this dialect re-materializes from textual IR.
ARITH_OPS = tuple(
    register_dialect_op(name) for name in (
        "arith.constant", "arith.addi", "arith.subi", "arith.muli",
        "arith.minui", "arith.addf", "arith.subf", "arith.mulf",
    )
)


def constant(b: Builder, value, type: Type = INDEX) -> Value:
    """Create (or reuse) an ``arith.constant`` in the current block."""

    def make() -> Value:
        op = b.create(
            "arith.constant",
            result_types=[type],
            attributes={"value": value},
        )
        return op.result

    return b.cached_constant(value, type, make)


def index_constant(b: Builder, value: int) -> Value:
    return constant(b, value, INDEX)


def _binary(b: Builder, name: str, lhs: Value, rhs: Value) -> Value:
    if lhs.type != rhs.type:
        raise VerificationError(
            f"{name}: operand types differ ({lhs.type} vs {rhs.type})"
        )
    return b.create(name, operands=[lhs, rhs], result_types=[lhs.type]).result


def addi(b: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.addi", lhs, rhs)


def subi(b: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.subi", lhs, rhs)


def muli(b: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.muli", lhs, rhs)


def addf(b: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.addf", lhs, rhs)


def subf(b: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.subf", lhs, rhs)


def mulf(b: Builder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.mulf", lhs, rhs)


def minui(b: Builder, lhs: Value, rhs: Value) -> Value:
    """Unsigned minimum — used for boundary (partial tile) sizes."""
    return _binary(b, "arith.minui", lhs, rhs)


@register_verifier("arith.constant")
def _verify_constant(op: Operation) -> None:
    from ..ir.attributes import BoolAttr, FloatAttr, IntegerAttr

    if len(op.results) != 1:
        raise VerificationError(
            f"{op_diag(op)}: arith.constant must have one result"
        )
    value = op.get_attr("value")
    if value is None:
        raise VerificationError(
            f"{op_diag(op)}: arith.constant requires a 'value' attribute"
        )
    result_type = op.results[0].type
    if isinstance(result_type, (IntegerType, IndexType)):
        if not isinstance(value, (IntegerAttr, BoolAttr)):
            raise VerificationError(
                f"{op_diag(op)}: 'value' must be an integer attribute for "
                f"a {result_type} constant, got {value!r}"
            )
    elif isinstance(result_type, FloatType):
        if not isinstance(value, (FloatAttr, IntegerAttr)):
            raise VerificationError(
                f"{op_diag(op)}: 'value' must be a numeric attribute for "
                f"a {result_type} constant, got {value!r}"
            )


def _verify_int_binary(op: Operation) -> None:
    if len(op.operands) != 2 or len(op.results) != 1:
        raise VerificationError(f"{op.name} must be binary with one result")
    for operand in op.operands:
        if not isinstance(operand.type, (IntegerType, IndexType)):
            raise VerificationError(
                f"{op.name} expects integer/index operands, got {operand.type}"
            )


def _verify_float_binary(op: Operation) -> None:
    if len(op.operands) != 2 or len(op.results) != 1:
        raise VerificationError(f"{op.name} must be binary with one result")
    for operand in op.operands:
        if not isinstance(operand.type, FloatType):
            raise VerificationError(
                f"{op.name} expects float operands, got {operand.type}"
            )


for _name in ("arith.addi", "arith.subi", "arith.muli", "arith.minui"):
    register_verifier(_name)(_verify_int_binary)
for _name in ("arith.addf", "arith.subf", "arith.mulf"):
    register_verifier(_name)(_verify_float_binary)
