"""Dialect constructors for the miniature IR.

Each module mirrors one MLIR dialect used by the AXI4MLIR flow:

* :mod:`repro.dialects.func`   — functions, calls, returns
* :mod:`repro.dialects.arith`  — constants and scalar arithmetic
* :mod:`repro.dialects.scf`    — structured control flow (``scf.for``)
* :mod:`repro.dialects.memref` — buffers, subviews, loads/stores
* :mod:`repro.dialects.linalg` — ``linalg.generic`` and named ops
* :mod:`repro.dialects.accel`  — the paper's new host-accelerator dialect
"""

from . import accel, arith, func, linalg, memref, scf

__all__ = ["accel", "arith", "func", "linalg", "memref", "scf"]
