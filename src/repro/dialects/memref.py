"""``memref`` dialect: buffer allocation, subviews, loads, stores.

``memref.subview`` here always takes one dynamic offset per dimension plus
static sizes/strides attributes, matching the shape of the paper's listings
(``memref.subview %A[%m, %k] [4, 4] [1, 1]``).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import unwrap
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.parser import register_dialect_op
from ..ir.types import DYNAMIC, INDEX, MemRefType, Type
from ..ir.verifier import VerificationError, op_diag, register_verifier

#: Ops this dialect re-materializes from textual IR.
MEMREF_OPS = tuple(
    register_dialect_op(name) for name in (
        "memref.alloc", "memref.dealloc", "memref.subview", "memref.load",
        "memref.store", "memref.dim", "memref.copy",
    )
)


def alloc(b: Builder, type: MemRefType) -> Value:
    if not isinstance(type, MemRefType):
        raise VerificationError(f"memref.alloc requires a MemRefType, got {type}")
    return b.create("memref.alloc", result_types=[type]).result


def dealloc(b: Builder, ref: Value) -> Operation:
    return b.create("memref.dealloc", operands=[ref])


def subview_type(source: MemRefType, sizes: Sequence[int]) -> MemRefType:
    """Result type of a subview: sizes change, strides are inherited."""
    return MemRefType(
        shape=tuple(sizes),
        element_type=source.element_type,
        strides=source.layout_strides(),
        offset=DYNAMIC,
    )


def subview(
    b: Builder,
    source: Value,
    offsets: Sequence[Value],
    sizes: Sequence[int],
    strides: Sequence[int] = (),
) -> Value:
    """Take a strided window of ``source`` at dynamic ``offsets``."""
    src_type = source.type
    if not isinstance(src_type, MemRefType):
        raise VerificationError(f"subview source must be a memref, got {src_type}")
    if len(offsets) != src_type.rank or len(sizes) != src_type.rank:
        raise VerificationError(
            f"subview of rank-{src_type.rank} memref needs "
            f"{src_type.rank} offsets and sizes"
        )
    strides = tuple(strides) if strides else tuple([1] * src_type.rank)
    op = b.create(
        "memref.subview",
        operands=[source, *offsets],
        result_types=[subview_type(src_type, sizes)],
        attributes={
            "static_sizes": list(sizes),
            "static_strides": list(strides),
        },
    )
    return op.result


def subview_sizes(op: Operation) -> Sequence[int]:
    return unwrap(op.get_attr("static_sizes"))


def load(b: Builder, ref: Value, indices: Sequence[Value]) -> Value:
    ref_type = ref.type
    if not isinstance(ref_type, MemRefType):
        raise VerificationError(f"memref.load on non-memref {ref_type}")
    return b.create(
        "memref.load",
        operands=[ref, *indices],
        result_types=[ref_type.element_type],
    ).result


def store(b: Builder, value: Value, ref: Value,
          indices: Sequence[Value]) -> Operation:
    return b.create("memref.store", operands=[value, ref, *indices])


def dim(b: Builder, ref: Value, index: int) -> Value:
    return b.create(
        "memref.dim",
        operands=[ref],
        result_types=[INDEX],
        attributes={"index": index},
    ).result


def copy(b: Builder, source: Value, dest: Value) -> Operation:
    return b.create("memref.copy", operands=[source, dest])


# ---------------------------------------------------------------------------
# Verifiers
# ---------------------------------------------------------------------------


@register_verifier("memref.subview")
def _verify_subview(op: Operation) -> None:
    source = op.operands[0]
    src_type = source.type
    if not isinstance(src_type, MemRefType):
        raise VerificationError("memref.subview source must be a memref")
    if len(op.operands) != 1 + src_type.rank:
        raise VerificationError(
            "memref.subview needs one dynamic offset per source dimension"
        )
    sizes = unwrap(op.get_attr("static_sizes"))
    if sizes is None or len(sizes) != src_type.rank:
        raise VerificationError(
            f"{op_diag(op)}: static_sizes must list one size per source "
            f"dimension (rank {src_type.rank}), got {sizes!r}"
        )
    strides = unwrap(op.get_attr("static_strides"))
    if strides is None or len(strides) != src_type.rank:
        raise VerificationError(
            f"{op_diag(op)}: static_strides must list one stride per "
            f"source dimension (rank {src_type.rank}), got {strides!r}"
        )
    if any(not isinstance(s, int) or s <= 0 for s in strides):
        raise VerificationError(
            f"{op_diag(op)}: static_strides entries must be positive "
            f"integers, got {strides!r}"
        )
    result_type = op.results[0].type
    if not isinstance(result_type, MemRefType):
        raise VerificationError("memref.subview must produce a memref")
    if tuple(result_type.shape) != tuple(sizes):
        raise VerificationError(
            f"memref.subview result shape {result_type.shape} does not "
            f"match static_sizes {tuple(sizes)}"
        )


@register_verifier("memref.dim")
def _verify_dim(op: Operation) -> None:
    from ..ir.attributes import IntegerAttr

    if len(op.operands) != 1:
        raise VerificationError(f"{op_diag(op)}: takes exactly one operand")
    ref_type = op.operands[0].type
    if not isinstance(ref_type, MemRefType):
        raise VerificationError(
            f"{op_diag(op)}: operand must be a memref, got {ref_type}"
        )
    index = op.get_attr("index")
    if not isinstance(index, IntegerAttr):
        raise VerificationError(
            f"{op_diag(op)}: requires an integer 'index' attribute, "
            f"got {index!r}"
        )
    if not 0 <= index.value < ref_type.rank:
        raise VerificationError(
            f"{op_diag(op)}: index {index.value} out of range for "
            f"rank-{ref_type.rank} memref"
        )


@register_verifier("memref.load")
def _verify_load(op: Operation) -> None:
    ref_type = op.operands[0].type
    if not isinstance(ref_type, MemRefType):
        raise VerificationError("memref.load operand 0 must be a memref")
    if len(op.operands) != 1 + ref_type.rank:
        raise VerificationError(
            f"memref.load on rank-{ref_type.rank} memref needs "
            f"{ref_type.rank} indices"
        )
    if op.results[0].type != ref_type.element_type:
        raise VerificationError("memref.load result/element type mismatch")


@register_verifier("memref.store")
def _verify_store(op: Operation) -> None:
    if len(op.operands) < 2:
        raise VerificationError("memref.store takes (value, memref, indices...)")
    ref_type = op.operands[1].type
    if not isinstance(ref_type, MemRefType):
        raise VerificationError("memref.store operand 1 must be a memref")
    if len(op.operands) != 2 + ref_type.rank:
        raise VerificationError(
            f"memref.store on rank-{ref_type.rank} memref needs "
            f"{ref_type.rank} indices"
        )
    if op.operands[0].type != ref_type.element_type:
        raise VerificationError("memref.store value/element type mismatch")
