"""``func`` dialect: function definition, call, and return helpers."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Operation, Value, func_entry_block, make_func
from ..ir.parser import register_dialect_op
from ..ir.types import Type
from ..ir.verifier import VerificationError, register_verifier

#: Ops this dialect re-materializes from textual IR.  ``func.func`` uses
#: the custom ``func.func @name(...) { ... }`` syntax.
FUNC_OPS = tuple(
    register_dialect_op(name)
    for name in ("func.func", "func.return", "func.call")
)


def define(
    name: str,
    input_types: Sequence[Type],
    result_types: Sequence[Type] = (),
    arg_names: Sequence[str] = (),
) -> Operation:
    """Create an empty function; see :func:`repro.ir.core.make_func`."""
    return make_func(name, input_types, result_types, arg_names)


def entry_block(func_op: Operation) -> Block:
    return func_entry_block(func_op)


def arguments(func_op: Operation) -> List[Value]:
    return list(func_entry_block(func_op).arguments)


def builder_at_entry(func_op: Operation) -> Builder:
    return Builder(InsertionPoint.at_end(func_entry_block(func_op)))


def ret(b: Builder, values: Sequence[Value] = ()) -> Operation:
    return b.create("func.return", operands=list(values))


def call(b: Builder, callee: str, args: Sequence[Value],
         result_types: Sequence[Type] = ()) -> Operation:
    return b.create(
        "func.call",
        operands=list(args),
        result_types=list(result_types),
        attributes={"callee": callee},
    )


def func_name(func_op: Operation) -> Optional[str]:
    name_attr = func_op.get_attr("sym_name")
    return name_attr.value if name_attr is not None else None


@register_verifier("func.func")
def _verify_func(op: Operation) -> None:
    if "sym_name" not in op.attributes:
        raise VerificationError("func.func requires a sym_name")
    if len(op.regions) != 1 or not op.regions[0].blocks:
        raise VerificationError("func.func requires one non-empty region")
    body = op.regions[0].entry_block
    if body.operations and body.terminator.name not in ("func.return",):
        # Host-code functions always end with a return; being strict here
        # catches passes that drop the terminator while splicing loops.
        raise VerificationError("func.func body must end with func.return")
