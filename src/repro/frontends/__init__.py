"""Application frontends: the paper's end-to-end workloads.

* :mod:`repro.frontends.resnet`   — the ResNet18 convolution layer suite
  of Fig. 16;
* :mod:`repro.frontends.tinybert` — the TinyBERT transformer of Fig. 17,
  expressed as a graph of matmul and CPU-side ops.
"""

from .resnet import RESNET18_LAYERS, ConvLayer, scaled_layer
from .tinybert import TinyBertConfig, TinyBertModel, tinybert_matmul_shapes

__all__ = [
    "RESNET18_LAYERS", "ConvLayer", "scaled_layer",
    "TinyBertConfig", "TinyBertModel", "tinybert_matmul_shapes",
]
