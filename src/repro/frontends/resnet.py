"""ResNet18 convolution layers (paper Fig. 16).

The figure's x-axis labels each unique conv layer as
``iHW_iC_fHW_oC_stride``; this module records those shapes and provides
spatially scaled variants so the per-window conv simulation stays fast
in the default benchmark run (the full shapes are available behind an
environment flag; scaling preserves per-window behaviour and the
relative layer ordering because costs are dominated by per-window work
times window count).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer shape (square spatial dims)."""

    in_hw: int
    in_ch: int
    f_hw: int
    out_ch: int
    stride: int
    batch: int = 1

    @property
    def out_hw(self) -> int:
        return (self.in_hw - self.f_hw) // self.stride + 1

    @property
    def label(self) -> str:
        return (f"{self.in_hw}_{self.in_ch}_{self.f_hw}"
                f"_{self.out_ch}_{self.stride}")

    @property
    def macs(self) -> int:
        return (self.batch * self.out_ch * self.out_hw * self.out_hw
                * self.in_ch * self.f_hw * self.f_hw)

    def input_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.in_ch, self.in_hw, self.in_hw)

    def filter_shape(self) -> Tuple[int, int, int, int]:
        return (self.out_ch, self.in_ch, self.f_hw, self.f_hw)

    def output_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.out_ch, self.out_hw, self.out_hw)


#: Fig. 16's eleven unique ResNet18 conv layers: (iHW, iC, fHW, oC, stride).
RESNET18_LAYERS = (
    ConvLayer(14, 256, 1, 512, 2),
    ConvLayer(16, 256, 3, 256, 1),
    ConvLayer(16, 256, 3, 512, 2),
    ConvLayer(230, 3, 7, 64, 2),
    ConvLayer(28, 128, 1, 256, 2),
    ConvLayer(30, 128, 3, 128, 1),
    ConvLayer(30, 128, 3, 256, 2),
    ConvLayer(56, 64, 1, 128, 2),
    ConvLayer(58, 64, 3, 128, 2),
    ConvLayer(58, 64, 3, 64, 1),
    ConvLayer(9, 512, 3, 512, 1),
)


def scaled_layer(layer: ConvLayer, max_out_hw: int = 6,
                 max_out_ch: int = 16) -> ConvLayer:
    """Shrink spatial extent and channel count for fast simulation.

    Keeps ``iC``, ``fHW`` and ``stride`` (which drive per-window
    behaviour and the copy-specialization effects) and clamps the output
    spatial size / output channels (which only multiply the counts).
    """
    out_ch = min(layer.out_ch, max_out_ch)
    if layer.out_hw <= max_out_hw and out_ch == layer.out_ch:
        return layer
    target_out = min(layer.out_hw, max_out_hw)
    in_hw = (target_out - 1) * layer.stride + layer.f_hw
    return replace(layer, in_hw=in_hw, out_ch=out_ch)
