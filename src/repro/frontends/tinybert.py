"""TinyBERT workload (paper Sec. IV-E, Fig. 17).

TinyBERT (4 layers, hidden 312, 12 heads, FFN 1200) for Masked Language
Modeling / Next Sentence Prediction at sequence length 128, batch 2.
The paper compiles it through Torch-MLIR and offloads the large
projection/FFN GEMMs to the v4-16 accelerator while attention-internal
matmuls and the remaining layers stay on the CPU — the Fig. 17 bars
split execution into "Other Layers on CPU", "Matmuls on CPU", and
"Matmuls on ACC".

This module provides the model structure (GEMM workload with counts and
padded offload shapes), plus a functional numpy forward pass whose GEMM
hook lets examples route projections through the simulated accelerator
and check numerics end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

MatmulFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _round_up(value: int, quantum: int) -> int:
    return (value + quantum - 1) // quantum * quantum


@dataclass(frozen=True)
class GemmShape:
    """One offloadable GEMM: logical (m, n, k) and its occurrence count."""

    name: str
    m: int
    n: int
    k: int
    count: int

    def padded(self, quantum: int) -> Tuple[int, int, int]:
        return (_round_up(self.m, quantum), _round_up(self.n, quantum),
                _round_up(self.k, quantum))

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k * self.count


@dataclass(frozen=True)
class TinyBertConfig:
    num_layers: int = 4
    hidden: int = 312
    heads: int = 12
    ffn: int = 1200
    seq_len: int = 128
    batch: int = 2

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def tokens(self) -> int:
        return self.batch * self.seq_len


def tinybert_matmul_shapes(config: TinyBertConfig = TinyBertConfig()
                           ) -> List[GemmShape]:
    """The offloadable GEMMs (projection + FFN) with per-model counts."""
    tokens = config.tokens
    hidden = config.hidden
    layers = config.num_layers
    return [
        GemmShape("qkv_proj", tokens, hidden, hidden, 3 * layers),
        GemmShape("attn_out", tokens, hidden, hidden, layers),
        GemmShape("ffn_up", tokens, config.ffn, hidden, layers),
        GemmShape("ffn_down", tokens, hidden, config.ffn, layers),
    ]


def attention_matmul_macs(config: TinyBertConfig = TinyBertConfig()) -> int:
    """MACs of the attention-internal matmuls (stay on the CPU)."""
    per_layer = 2 * (config.batch * config.heads
                     * config.seq_len * config.seq_len * config.head_dim)
    return per_layer * config.num_layers


def other_layer_macs(config: TinyBertConfig = TinyBertConfig()) -> int:
    """Equivalent-MAC cost of softmax/layernorm/GELU/embedding work.

    These ops are memory-bound and branchy, so each element costs far
    more than a MAC; the equivalent count is calibrated so that the
    accelerated GEMMs represent ~75% of CPU-only runtime, the share the
    paper reports for TinyBERT.
    """
    tokens = config.tokens
    hidden = config.hidden
    per_layer_elements = (
        tokens * hidden * 6          # layernorms, residuals
        + tokens * config.ffn        # GELU
        + config.batch * config.heads * config.seq_len * config.seq_len
    )
    # Equivalent cost per element on the in-order A9: libm exp/tanh,
    # multi-pass reductions, and cache-unfriendly strides make each
    # element cost tens of MAC-equivalents.
    cpu_overhead_factor = 65.0
    return int(per_layer_elements * config.num_layers * cpu_overhead_factor)


# ---------------------------------------------------------------------------
# Functional model
# ---------------------------------------------------------------------------


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(
        np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)
    ))


@dataclass
class TinyBertModel:
    """A functional TinyBERT encoder stack with a pluggable GEMM hook.

    ``matmul_fn(a, b)`` is called for every *offloadable* GEMM (2-D
    operands); attention-internal matmuls always run in numpy, matching
    the paper's CPU/accelerator split.
    """

    config: TinyBertConfig = field(default_factory=TinyBertConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        cfg = self.config
        scale = 0.05

        def weight(rows: int, cols: int) -> np.ndarray:
            return (rng.standard_normal((rows, cols)) * scale).astype(
                np.float32
            )

        self.layers = []
        for _ in range(cfg.num_layers):
            self.layers.append({
                "wq": weight(cfg.hidden, cfg.hidden),
                "wk": weight(cfg.hidden, cfg.hidden),
                "wv": weight(cfg.hidden, cfg.hidden),
                "wo": weight(cfg.hidden, cfg.hidden),
                "w1": weight(cfg.hidden, cfg.ffn),
                "w2": weight(cfg.ffn, cfg.hidden),
            })

    def forward(self, hidden_states: np.ndarray,
                matmul_fn: Optional[MatmulFn] = None) -> np.ndarray:
        """Run the encoder stack over ``(tokens, hidden)`` activations."""
        cfg = self.config
        gemm = matmul_fn or (lambda a, b: a @ b)
        x = hidden_states.astype(np.float32)
        tokens = x.shape[0]
        if x.shape != (tokens, cfg.hidden):
            raise ValueError(
                f"expected activations ({tokens}, {cfg.hidden}), "
                f"got {x.shape}"
            )
        for layer in self.layers:
            q = gemm(x, layer["wq"])
            k = gemm(x, layer["wk"])
            v = gemm(x, layer["wv"])
            context = self._attention(q, k, v)
            x = _layer_norm(x + gemm(context, layer["wo"]))
            up = _gelu(gemm(x, layer["w1"]))
            x = _layer_norm(x + gemm(up, layer["w2"]))
        return x

    def _attention(self, q: np.ndarray, k: np.ndarray,
                   v: np.ndarray) -> np.ndarray:
        cfg = self.config
        tokens = q.shape[0]
        if tokens % cfg.seq_len:
            raise ValueError(
                f"token count {tokens} is not a multiple of seq_len "
                f"{cfg.seq_len}"
            )
        batch = tokens // cfg.seq_len

        def split(x: np.ndarray) -> np.ndarray:
            return x.reshape(batch, cfg.seq_len, cfg.heads,
                             cfg.head_dim).transpose(0, 2, 1, 3)

        qh, kh, vh = split(q), split(k), split(v)
        scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(cfg.head_dim)
        context = _softmax(scores) @ vh
        return context.transpose(0, 2, 1, 3).reshape(tokens, cfg.hidden)
