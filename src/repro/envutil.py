"""One-shot-warning environment knob parsing.

Every ``REPRO_*`` tuning knob follows the same contract (established in
PR 7 for the store/model-worker knobs): a malformed value is never
silently ignored and never fatal — it emits exactly one
``RuntimeWarning`` naming the variable and the fallback, then behaves
as if the variable were unset.  This module centralizes that contract
so new knobs (the service layer adds several) cannot drift from it.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

#: (env var, malformed text) pairs already warned about: a bad value is
#: reported exactly once per process instead of once per consultation.
_warned_env_values: set = set()


def warn_once_malformed_env(var: str, text: str, fallback,
                            stacklevel: int = 4) -> None:
    """Warn (once per distinct value) that ``var`` holds garbage."""
    key = (var, text)
    if key in _warned_env_values:
        return
    _warned_env_values.add(key)
    warnings.warn(
        f"ignoring malformed {var}={text!r}; falling back to "
        f"{fallback!r}", RuntimeWarning, stacklevel=stacklevel,
    )


def env_int(var: str, default: Optional[int],
            minimum: Optional[int] = None) -> Optional[int]:
    """``int(os.environ[var])`` with the one-shot-warning fallback."""
    text = os.environ.get(var, "").strip()
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        warn_once_malformed_env(var, text, default)
        return default
    if minimum is not None and value < minimum:
        return minimum
    return value


def env_float(var: str, default: Optional[float],
              minimum: Optional[float] = None) -> Optional[float]:
    """``float(os.environ[var])`` with the one-shot-warning fallback."""
    text = os.environ.get(var, "").strip()
    if not text:
        return default
    try:
        value = float(text)
    except ValueError:
        warn_once_malformed_env(var, text, default)
        return default
    if minimum is not None and value < minimum:
        return minimum
    return value
