"""Catalog: accelerator instances paired with their configuration files.

``matmul_config_dict`` produces exactly the JSON structure of paper
Fig. 5, so building a system from the catalog exercises the same parsing
path a user's hand-written configuration file would.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..accel_config import AcceleratorInfo, parse_accelerator
from .conv import ConvAccelerator
from .matmul import MatMulAccelerator

#: Flow strategies supported per version (paper Table I "possible reuse").
VERSION_FLOWS: Dict[int, Tuple[str, ...]] = {
    1: ("Ns",),
    2: ("Ns", "As", "Bs"),
    3: ("Ns", "As", "Bs", "Cs"),
    4: ("Ns", "As", "Bs", "Cs"),
}

_FLOW_STRINGS_V1 = {"Ns": "(sAsBcCrC)"}
_FLOW_STRINGS_V2 = {
    "Ns": "(sA sB cCrC)",
    "As": "(sA (sB cCrC))",
    "Bs": "(sB (sA cCrC))",
}
_FLOW_STRINGS_V3 = {
    "Ns": "(sA sB cC rC)",
    "As": "(sA (sB cC rC))",
    "Bs": "(sB (sA cC rC))",
    "Cs": "((sA sB cC) rC)",
}

_OPCODE_MAP_V1 = (
    "opcode_map < "
    "sAsBcCrC = [send_literal(0x21), send(0), send(1), recv(2)], "
    "reset = [send_literal(0xFF)] >"
)
_OPCODE_MAP_V2 = (
    "opcode_map < "
    "sA = [send_literal(0x22), send(0)], "
    "sB = [send_literal(0x23), send(1)], "
    "cCrC = [send_literal(0x26), recv(2)], "
    "reset = [send_literal(0xFF)] >"
)
_OPCODE_MAP_V3 = (
    "opcode_map < "
    "sA = [send_literal(0x22), send(0)], "
    "sB = [send_literal(0x23), send(1)], "
    "cC = [send_literal(0xF0)], "
    "rC = [send_literal(0x24), recv(2)], "
    "reset = [send_literal(0xFF)] >"
)
_OPCODE_MAP_V4 = _OPCODE_MAP_V3[:-1] + (
    ", cfg = [send_literal(0x30), send_dim(0, 0), send_dim(1, 1), "
    "send_dim(0, 1)] >"
)


def matmul_config_dict(
    version: int,
    size: int,
    flow: str = "Ns",
    data_type: str = "int32",
    accel_size: Optional[Sequence[int]] = None,
) -> dict:
    """The Fig. 5-style configuration entry for one Table I accelerator."""
    if version not in VERSION_FLOWS:
        raise ValueError(f"unknown accelerator version v{version}")
    if flow not in VERSION_FLOWS[version]:
        raise ValueError(
            f"v{version} supports flows {VERSION_FLOWS[version]}, not {flow!r}"
        )
    opcode_map = {
        1: _OPCODE_MAP_V1, 2: _OPCODE_MAP_V2,
        3: _OPCODE_MAP_V3, 4: _OPCODE_MAP_V4,
    }[version]
    flows = {
        1: _FLOW_STRINGS_V1, 2: _FLOW_STRINGS_V2,
        3: _FLOW_STRINGS_V3, 4: _FLOW_STRINGS_V3,
    }[version]
    sizes = list(accel_size) if accel_size is not None else [size] * 3
    config = {
        "name": f"matmul_v{version}_{size}",
        "version": f"{version}.0",
        "description": f"Table I v{version} MatMul accelerator, size {size}",
        "kernel": "linalg.matmul",
        "accel_size": sizes,
        "data_type": data_type,
        "dims": ["m", "n", "k"],
        "data": {"A": ["m", "k"], "B": ["k", "n"], "C": ["m", "n"]},
        "opcode_map": opcode_map,
        "opcode_flow_map": dict(flows),
        "selected_flow": flow,
        "init_opcodes": "(cfg)" if version == 4 else "(reset)",
        "dma_config": {
            "id": 0,
            "inputAddress": 0x4000_0000,
            "inputBufferSize": 0x2_0000,
            "outputAddress": 0x4010_0000,
            "outputBufferSize": 0x2_0000,
        },
    }
    if version == 4:
        config["flexible_size"] = True
        config["flex_quantum"] = size
        config["buffer_capacity"] = 16 * size * size
    return config


def make_matmul_system(
    version: int,
    size: int,
    flow: str = "Ns",
    dtype=np.int32,
    accel_size: Optional[Sequence[int]] = None,
) -> Tuple[MatMulAccelerator, AcceleratorInfo]:
    """Hardware model + parsed configuration for one catalog entry."""
    config = parse_accelerator(
        matmul_config_dict(version, size, flow,
                           data_type=np.dtype(dtype).name,
                           accel_size=accel_size)
    )
    hardware = MatMulAccelerator(size, version, dtype=dtype)
    return hardware, config


_CONV_OPCODE_MAP = (
    "opcode_map < "
    "sIcO = [send_literal(70), send(0)], "
    "sF = [send_literal(1), send(1)], "
    "rO = [send_literal(8), recv(2)], "
    "rst = [send_literal(32), send_dim(1, 3), "
    "send_literal(16), send_dim(0, 1)] >"
)


def conv_config_dict(ic: int, fhw: int, data_type: str = "int32") -> dict:
    """Configuration for the Sec. IV-D convolution accelerator.

    ``accel_size`` over dims (b, oh, ow, ic, oc, fh, fw) is
    ``(0, 0, 0, iC, 1, fH, fW)``: the device consumes the full channel
    depth and filter window, produces one output channel per iteration,
    and leaves batch/spatial tiling to the host (Fig. 15a).
    """
    return {
        "name": f"conv2d_ic{ic}_f{fhw}",
        "version": "1.0",
        "description": "SECDA-style output/filter-stationary Conv2D engine",
        "kernel": "linalg.conv_2d_nchw_fchw",
        "accel_size": [0, 0, 0, ic, 1, fhw, fhw],
        "data_type": data_type,
        # Dim names follow the kernel's canonical loop names (n = batch,
        # f = output channel, c = input channel), i.e. the paper's
        # (B, H, W, iC, oC, fH, fW) in Fig. 15a.
        "dims": ["n", "oh", "ow", "c", "f", "fh", "fw"],
        "data": {
            "I": ["n", "c", "oh", "ow", "fh", "fw"],
            "W": ["f", "c", "fh", "fw"],
            "O": ["n", "f", "oh", "ow"],
        },
        "opcode_map": _CONV_OPCODE_MAP,
        "opcode_flow_map": {"FOs": "(sF (sIcO) rO)"},
        "selected_flow": "FOs",
        "init_opcodes": "(rst)",
        # Fig. 15b iterates batch outermost, then output channels.
        "loop_permutation": ["n", "f", "oh", "ow"],
        "dma_config": {
            "id": 0,
            "inputAddress": 0x4000_0000,
            "inputBufferSize": 0x2_0000,
            "outputAddress": 0x4010_0000,
            "outputBufferSize": 0x2_0000,
        },
    }


def make_conv_system(
    ic: int, fhw: int, dtype=np.int32, max_slice: int = 128 * 128,
) -> Tuple[ConvAccelerator, AcceleratorInfo]:
    config = parse_accelerator(
        conv_config_dict(ic, fhw, data_type=np.dtype(dtype).name)
    )
    hardware = ConvAccelerator(max_ic=max(ic, 1), max_fhw=max(fhw, 1),
                               max_slice=max_slice, dtype=dtype)
    return hardware, config
