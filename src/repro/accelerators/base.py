"""Base class for AXI-Stream micro-ISA accelerators."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..soc.axi import AxiStreamFifo, StreamUnderflow


class UnknownOpcodeError(RuntimeError):
    """The stream contained a word that is not a supported opcode.

    On real hardware this wedges the accelerator state machine; the
    simulation fails loudly so compiler bugs surface in tests.
    """


class StreamAccelerator:
    """An accelerator driven by opcode-prefixed AXI-Stream bursts.

    Subclasses register handlers per opcode literal with
    :meth:`register_opcode`.  A handler consumes its data words from
    ``in_fifo``, optionally pushes results to ``out_fifo``, and returns
    the accelerator cycles spent.
    """

    def __init__(self, name: str):
        self.name = name
        self.in_fifo = AxiStreamFifo(f"{name}.in")
        self.out_fifo = AxiStreamFifo(f"{name}.out")
        self._handlers: Dict[int, Callable[[], float]] = {}
        self._needs: Dict[int, int] = {}
        self.total_cycles = 0.0
        self.instructions_executed = 0

    def register_opcode(self, literal: int,
                        handler: Callable[[], float],
                        needs: int = None) -> None:
        """Bind ``handler`` to an opcode literal.

        ``needs`` optionally reports how many data words the handler
        will consume (subclasses with configurable tile sizes refresh
        ``self._needs`` when reconfigured); when present, partial
        instructions are detected up front and the checkpoint/rollback
        machinery is skipped.
        """
        if literal in self._handlers:
            raise ValueError(
                f"{self.name}: opcode {literal:#x} registered twice"
            )
        self._handlers[literal] = handler
        if needs is not None:
            self._needs[literal] = needs

    @property
    def supported_literals(self) -> tuple:
        return tuple(sorted(self._handlers))

    def process_stream(self) -> float:
        """Execute every complete instruction waiting in the input FIFO.

        Returns the accelerator cycles consumed by this batch.  Called by
        the DMA engine after each send transaction completes.  An
        instruction whose data words have not fully arrived yet is left
        in the FIFO untouched (the hardware state machine stalls until
        the next burst delivers the rest).
        """
        cycles = 0.0
        fifo = self.in_fifo
        handlers = self._handlers
        needs_map = self._needs
        while len(fifo):
            literal = fifo.peek_word() & 0xFFFFFFFF
            handler = handlers.get(literal)
            if handler is None:
                raise UnknownOpcodeError(
                    f"{self.name}: word {literal:#x} is not an opcode "
                    f"(supported: "
                    f"{[hex(x) for x in self.supported_literals]})"
                )
            needs = needs_map.get(literal)
            if needs is not None:
                if len(fifo) - 1 < needs:
                    # Partial instruction: wait for the rest of the burst.
                    break
                fifo.pop_word()
                try:
                    cycles += handler()
                except StreamUnderflow as exc:
                    # needs promised the words were there: the declared
                    # count and the handler's consumption diverged.
                    # Fail loudly — the opcode word is already gone, so
                    # a graceful wait would corrupt the stream.
                    raise RuntimeError(
                        f"{self.name}: opcode {literal:#x} declared "
                        f"{needs} data words but consumed more"
                    ) from exc
            else:
                snapshot = fifo.checkpoint()
                fifo.pop_word()
                try:
                    cycles += handler()
                except StreamUnderflow:
                    # Partial instruction: wait for the rest of the burst.
                    fifo.restore(snapshot)
                    break
            self.instructions_executed += 1
        self.total_cycles += cycles
        return cycles

    # -- helpers for subclasses ---------------------------------------------
    def read_words(self, count: int, dtype=np.int32) -> np.ndarray:
        return self.in_fifo.pop(count, dtype=dtype)

    def write_words(self, words: np.ndarray) -> None:
        self.out_fifo.push(words)

    def reset_statistics(self) -> None:
        self.total_cycles = 0.0
        self.instructions_executed = 0
