"""Behavioural accelerator models (the paper's Table I library + conv).

Accelerators consume 32-bit-word AXI-Stream bursts whose leading word is
an opcode literal from a micro-ISA, exactly the class of devices
AXI4MLIR targets (Sec. III-B1).  Each model reports the accelerator
cycles it spends computing, which the board folds into the timeline.
"""

from .base import StreamAccelerator, UnknownOpcodeError
from .matmul import MatMulAccelerator, MATMUL_LITERALS
from .conv import ConvAccelerator, CONV_LITERALS
from .catalog import (
    make_conv_system,
    make_matmul_system,
    matmul_config_dict,
)

__all__ = [
    "StreamAccelerator", "UnknownOpcodeError",
    "MatMulAccelerator", "MATMUL_LITERALS",
    "ConvAccelerator", "CONV_LITERALS",
    "make_conv_system", "make_matmul_system", "matmul_config_dict",
]
