"""Tile-based MatMul accelerators v1-v4 (paper Table I).

All four versions share the same primitive datapath — load A tile, load B
tile, multiply-accumulate into an internal C buffer, stream C out — and
differ in which composite opcodes their control unit accepts, which is
exactly what determines the data-reuse (stationary) flows the host can
drive:

========  ===============  ============================  ================
Version   Possible reuse   Opcodes                       Size behaviour
========  ===============  ============================  ================
v1        Nothing          ``sAsBcCrC``                  fixed square
v2        Inputs           ``sA``, ``sB``, ``cCrC``      fixed square
v3        Ins/Out          ``sA``, ``sB``, ``cC``,       fixed square
                           ``rC``
v4        Ins/Out          v3 plus ``cfg``               flexible tiles
========  ===============  ============================  ================

Throughput follows Table I: (size, OPs/cycle) = (4, 10), (8, 60),
(16, 112).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..numerics import float64_exact_bound
from ..soc.timing import matmul_ops_per_cycle
from .base import StreamAccelerator

#: Opcode literals shared by the whole family (and the configs/codegen).
MATMUL_LITERALS: Dict[str, int] = {
    "sAsBcCrC": 0x21,
    "sA": 0x22,
    "sB": 0x23,
    "rC": 0x24,
    "sBcCrC": 0x25,
    "cCrC": 0x26,
    "sAcCrC": 0x27,
    "cfg": 0x30,
    "cC": 0xF0,
    "reset": 0xFF,
}

#: Primitive micro-op sequences implementing each composite opcode.
_MICRO_OPS: Dict[str, Tuple[str, ...]] = {
    "sAsBcCrC": ("load_a", "load_b", "compute", "push_c"),
    "sA": ("load_a",),
    "sB": ("load_b",),
    "cC": ("compute",),
    "rC": ("push_c",),
    "cCrC": ("compute", "push_c"),
    "sBcCrC": ("load_b", "compute", "push_c"),
    "sAcCrC": ("load_a", "compute", "push_c"),
    "cfg": ("configure",),
    "reset": ("reset",),
}

#: Opcode names accepted by each accelerator version.
VERSION_OPCODES: Dict[int, Tuple[str, ...]] = {
    1: ("sAsBcCrC", "reset"),
    2: ("sA", "sB", "cCrC", "sBcCrC", "sAcCrC", "reset"),
    3: ("sA", "sB", "cC", "rC", "reset"),
    4: ("sA", "sB", "cC", "rC", "cfg", "reset"),
}


class MatMulAccelerator(StreamAccelerator):
    """Behavioural model of one Table I accelerator instance.

    ``size`` is the native square tile extent.  ``version`` selects the
    accepted opcode set.  v4 instances honour the ``cfg`` instruction,
    which re-programs the (tM, tN, tK) tile extents at run time subject
    to per-buffer capacity and the size quantum.
    """

    def __init__(self, size: int, version: int, dtype=np.int32):
        if version not in VERSION_OPCODES:
            raise ValueError(f"unknown accelerator version v{version}")
        super().__init__(f"matmul_v{version}_{size}")
        self.size = size
        self.version = version
        self.dtype = np.dtype(dtype)
        if self.dtype.itemsize != 4:
            raise ValueError("accelerators stream 32-bit elements")
        self.ops_per_cycle = matmul_ops_per_cycle(size)
        self.flexible = version == 4
        #: Per-operand buffer capacity in elements; v4 allows rectangular
        #: tiles as long as each operand fits (16*size^2 elements).
        self.buffer_capacity = (16 * size * size if self.flexible
                                else size * size)
        self.size_quantum = size if self.flexible else 1
        self.tile_m = size
        self.tile_n = size
        self.tile_k = size
        self._a = np.zeros((self.tile_m, self.tile_k), self.dtype)
        self._b = np.zeros((self.tile_k, self.tile_n), self.dtype)
        self._c = np.zeros((self.tile_m, self.tile_n), self.dtype)
        primitives = {
            "load_a": self._load_a,
            "load_b": self._load_b,
            "compute": self._compute,
            "push_c": self._push_c,
            "configure": self._configure,
            "reset": self._reset,
        }
        for opcode_name in VERSION_OPCODES[version]:
            sequence = _MICRO_OPS[opcode_name]
            if len(sequence) == 1:
                # Single-primitive opcodes dispatch straight to the
                # primitive (the hot case: sA/sB/cC/rC).
                handler = primitives[sequence[0]]
            else:
                def handler(seq=tuple(primitives[p] for p in sequence)
                            ) -> float:
                    total = 0.0
                    for primitive in seq:
                        total += primitive()
                    return total

            self.register_opcode(MATMUL_LITERALS[opcode_name], handler)
        self._refresh_needs()

    def _refresh_needs(self) -> None:
        """Recompute per-opcode data-word counts (tile-size dependent)."""
        for opcode_name in VERSION_OPCODES[self.version]:
            total = 0
            for primitive in _MICRO_OPS[opcode_name]:
                if primitive == "load_a":
                    total += self.tile_m * self.tile_k
                elif primitive == "load_b":
                    total += self.tile_k * self.tile_n
                elif primitive == "configure":
                    total += 3
            self._needs[MATMUL_LITERALS[opcode_name]] = total

    # -- primitives ---------------------------------------------------------
    def _load_a(self) -> float:
        words = self.read_words(self.tile_m * self.tile_k, self.dtype)
        self._a = words.reshape(self.tile_m, self.tile_k)
        return 0.0

    def _load_b(self) -> float:
        words = self.read_words(self.tile_k * self.tile_n, self.dtype)
        self._b = words.reshape(self.tile_k, self.tile_n)
        return 0.0

    def _compute(self) -> float:
        # In-place accumulate: _push_c hands the buffer off and installs
        # a fresh one, so the pushed array is never mutated afterwards.
        macs = self.tile_m * self.tile_n * self.tile_k
        a, b = self._a, self._b
        if macs >= 32768 and self.dtype.kind == "i" \
                and float64_exact_bound(self.tile_k, a, b):
            # Large tiles: int32 matmul has no BLAS kernel; the exact
            # float64 path's final cast wraps identically to int32
            # accumulation.
            self._c += (a.astype(np.float64)
                        @ b.astype(np.float64)).astype(np.int64)
            return 2.0 * macs / self.ops_per_cycle
        self._c += a @ b
        return 2.0 * macs / self.ops_per_cycle

    def _push_c(self) -> float:
        self.write_words(np.ascontiguousarray(self._c))
        self._c = np.zeros((self.tile_m, self.tile_n), self.dtype)
        return 0.0

    def _configure(self) -> float:
        tile_m, tile_n, tile_k = (int(w) for w in self.read_words(3))
        for label, value in (("tM", tile_m), ("tN", tile_n), ("tK", tile_k)):
            if value <= 0 or value % self.size_quantum:
                raise ValueError(
                    f"{self.name}: {label}={value} is not a positive "
                    f"multiple of {self.size_quantum}"
                )
        for label, elements in (
            ("A", tile_m * tile_k),
            ("B", tile_k * tile_n),
            ("C", tile_m * tile_n),
        ):
            if elements > self.buffer_capacity:
                raise ValueError(
                    f"{self.name}: {label} tile of {elements} elements "
                    f"exceeds buffer capacity {self.buffer_capacity}"
                )
        self.tile_m, self.tile_n, self.tile_k = tile_m, tile_n, tile_k
        self._refresh_needs()
        self._reset()
        return 0.0

    def _reset(self) -> float:
        self._a = np.zeros((self.tile_m, self.tile_k), self.dtype)
        self._b = np.zeros((self.tile_k, self.tile_n), self.dtype)
        self._c = np.zeros((self.tile_m, self.tile_n), self.dtype)
        return 0.0

    # -- introspection (tests) -----------------------------------------------
    @property
    def c_buffer(self) -> np.ndarray:
        return self._c.copy()
