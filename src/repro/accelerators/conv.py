"""Convolution accelerator (paper Sec. IV-D).

The device computes one output slice (all spatial elements of one output
channel) per ``rO``: the host configures the filter spatial size and the
input-channel depth, sends one 3-D filter, then streams 3-D input windows
(``sIcO`` — send input and compute); every window produces one output
element accumulated into an internal slice buffer, which ``rO`` drains.

Opcode literals follow Fig. 15a: ``sIcO``=70, ``sF``=1, ``rO``=8,
``rst`` = configuration pair (32 -> filter size word, 16 -> iC word).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..numerics import float64_exact_bound
from .base import StreamAccelerator

CONV_LITERALS = {
    "sIcO": 70,
    "sF": 1,
    "rO": 8,
    "cfg_fsize": 32,
    "cfg_ic": 16,
}

#: Parallel multiply-accumulate lanes of the window dot-product engine.
CONV_OPS_PER_CYCLE = 64.0


class ConvAccelerator(StreamAccelerator):
    """Filter- and output-stationary convolution engine."""

    def __init__(self, max_ic: int = 512, max_fhw: int = 7,
                 max_slice: int = 64 * 64, dtype=np.int32):
        super().__init__("conv2d")
        self.dtype = np.dtype(dtype)
        self.max_ic = max_ic
        self.max_fhw = max_fhw
        self.max_slice = max_slice
        self.ic = 1
        self.fhw = 1
        self._filter = np.zeros(1, self.dtype)
        self._slice: List[np.ndarray] = []
        self.register_opcode(CONV_LITERALS["cfg_fsize"], self._cfg_fsize,
                             needs=1)
        self.register_opcode(CONV_LITERALS["cfg_ic"], self._cfg_ic,
                             needs=1)
        self.register_opcode(CONV_LITERALS["sF"], self._send_filter)
        self.register_opcode(CONV_LITERALS["sIcO"],
                             self._send_input_compute)
        self.register_opcode(CONV_LITERALS["rO"], self._recv_output,
                             needs=0)
        self._refresh_needs()

    def _refresh_needs(self) -> None:
        """Window-sized opcodes track the configured geometry."""
        self._needs[CONV_LITERALS["sF"]] = self.window_elements
        self._needs[CONV_LITERALS["sIcO"]] = self.window_elements

    @property
    def window_elements(self) -> int:
        return self.ic * self.fhw * self.fhw

    # -- opcode handlers ------------------------------------------------------
    def _cfg_fsize(self) -> float:
        value = int(self.read_words(1)[0])
        if not 1 <= value <= self.max_fhw:
            raise ValueError(f"{self.name}: filter size {value} out of range")
        self.fhw = value
        self._refresh_needs()
        return 0.0

    def _cfg_ic(self) -> float:
        value = int(self.read_words(1)[0])
        if not 1 <= value <= self.max_ic:
            raise ValueError(f"{self.name}: iC {value} out of range")
        self.ic = value
        self._refresh_needs()
        return 0.0

    def _send_filter(self) -> float:
        self._filter = self.read_words(self.window_elements, self.dtype)
        self._slice = []
        return 0.0

    def _send_input_compute(self) -> float:
        window = self.read_words(self.window_elements, self.dtype)
        if len(self._slice) >= self.max_slice:
            raise RuntimeError(
                f"{self.name}: output slice buffer overflow "
                f"({self.max_slice} elements)"
            )
        value = np.dot(window.astype(np.int64),
                       self._filter.astype(np.int64))
        self._slice.append(np.array([value], dtype=self.dtype)[0])
        return 2.0 * self.window_elements / CONV_OPS_PER_CYCLE

    def _send_window_batch(self, windows: np.ndarray) -> float:
        """Vectorized fast path used by the board for whole-row streaming.

        Functionally identical to repeated ``sIcO`` instructions; exists
        so large ResNet layers simulate in reasonable time.  Small-value
        batches (the common int8-ish quantized data) go through float64
        BLAS — exact while every partial sum fits the f64 mantissa.
        """
        if float64_exact_bound(self.window_elements, windows, self._filter):
            values = (windows.astype(np.float64)
                      @ self._filter.astype(np.float64)).astype(np.int64)
        else:
            values = windows.astype(np.int64) @ self._filter.astype(np.int64)
        self._slice.extend(np.asarray(values, dtype=self.dtype))
        return 2.0 * self.window_elements * len(windows) / CONV_OPS_PER_CYCLE

    def _recv_output(self) -> float:
        if not self._slice:
            raise RuntimeError(f"{self.name}: rO with empty slice buffer")
        self.write_words(np.asarray(self._slice, dtype=self.dtype))
        self._slice = []
        return 0.0
