"""Seeded retry policy shared by the service client and the sweep driver.

Two pieces every retrying caller in this codebase needs, extracted from
``repro.service.client`` so the autotuning sweep driver cannot drift
from the service's behaviour:

* :class:`BackoffSchedule` — deterministic exponential backoff with
  bounded jitter, seeded per ``(seed, site)`` exactly like the fault
  streams in :mod:`repro.faults`, so one seed pins a whole chaos run
  (fault points *and* retry timing) and tests can assert the exact
  delay sequence.
* :func:`retryable` — the retry-classification predicate: transient
  transport failures (by exception type) and explicitly retryable
  error codes are worth another attempt; everything else is a
  permanent failure that must surface immediately.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterator, Optional, Tuple, Type


class BackoffSchedule:
    """Deterministic exponential backoff with bounded jitter.

    The delay for attempt ``i`` (0-based) is
    ``min(base * factor**i, max_delay) * (1 + jitter * u_i)`` with
    ``u_i`` drawn from ``random.Random(f"{seed}:{site}")`` — the same
    per-site stream idiom :mod:`repro.faults` uses, so one seed pins
    the whole chaos run: fault points *and* retry timing.
    """

    def __init__(self, seed: int = 0, site: str = "client",
                 base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 2.0, jitter: float = 0.5) -> None:
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(f"{seed}:{site}")
        self._attempt = 0

    def next_delay(self) -> float:
        delay = min(self.base * self.factor ** self._attempt,
                    self.max_delay)
        delay *= 1.0 + self.jitter * self._rng.random()
        self._attempt += 1
        return delay

    def delays(self, count: int) -> Iterator[float]:
        return (self.next_delay() for _ in range(count))


def retryable(error: Exception,
              transient_types: Tuple[Type[BaseException], ...] = (OSError,),
              code: Optional[str] = None,
              retryable_codes: FrozenSet[str] = frozenset()) -> bool:
    """Classify one failure: is another attempt worth making?

    ``transient_types`` covers transport-level failures where the
    operation may simply not have happened (connection resets, torn
    frames, journal I/O).  ``code`` is an optional application-level
    error code checked against ``retryable_codes`` — the service's
    ``BUSY`` / ``WORKER_CRASH`` taxonomy, the sweep driver's crash and
    deadline outcomes.  An error matching neither is permanent.
    """
    if code is not None:
        return code in retryable_codes
    return isinstance(error, transient_types)
