"""Single-measurement helpers shared by all figure harnesses.

Every ``measure_*`` helper builds a fresh board, runs one configuration,
checks the numerics against numpy, and returns the perf counter delta.
Results are memoized per parameter tuple — several figures share
configurations, and the simulations are deterministic.

The model figures (fig16/fig17) instead run whole kernel *sequences*
through the ``run_*_model`` runners below: one shared board per model
(cache warm-state carries between layers), fused ModelPlan replay, and
independent models dispatched onto the replay worker pool.

Compilation goes through the process-wide kernel cache
(:func:`repro.compiler.default_kernel_cache`): figures that sweep the
same (accelerator, shape, flow) configuration with different *runtime*
knobs (fig11's unspecialized copies vs fig12/13's specialized ones)
lower each kernel exactly once and share the compiled entry point.

Execution opts into trace-compiled replay (``trace=True``): the driver
schedule is recorded once per kernel and replayed as batched numpy —
bit-identical counters, a fraction of the wall-clock.  Set
``REPRO_NO_TRACE=1`` to force per-tile execution throughout.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from ..accelerators import (
    ConvAccelerator,
    MatMulAccelerator,
    make_conv_system,
    make_matmul_system,
)
from ..baselines import (
    cpu_conv,
    cpu_matmul,
    manual_conv_driver,
    manual_matmul_driver,
)
from ..compiler import AXI4MLIRCompiler, default_kernel_cache
from ..soc import PerfCounters, make_pynq_z2


def kernel_cache_stats() -> dict:
    """Hit/miss/entry counts of the shared compiled-kernel cache."""
    return default_kernel_cache().stats()


def stage_timings() -> dict:
    """Cumulative compile / trace-record / replay seconds this process.

    Includes per-stage deltas merged back from replay pool workers
    (:func:`repro.execution.run_model_jobs`), so multiprocess figure
    harnesses report the work done, not just the fraction done in the
    parent process.
    """
    from ..execution import STAGE_TIMINGS

    return dict(STAGE_TIMINGS)


def _data(dims_m: int, dims_n: int, dims_k: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    a = rng.integers(-7, 7, (dims_m, dims_k)).astype(np.int32)
    b = rng.integers(-7, 7, (dims_k, dims_n)).astype(np.int32)
    return a, b


def _expected_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact integer product, computed via BLAS.

    ``int64 @ int64`` falls back to naive loops in numpy; float64 BLAS
    is exact while ``k * max|a*b| < 2**53`` — the harness data is bounded
    at |7|, so even the 512-deep reductions stay below 2**15.
    """
    return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.int64)


#: Public aliases for the deterministic harness inputs and oracle — the
#: tuning sweep workers evaluate candidate configurations against the
#: same data the figure harnesses use, so sweep metrics and figure
#: metrics are directly comparable.
matmul_inputs = _data
expected_matmul = _expected_matmul


@lru_cache(maxsize=None)
def measure_cpu_matmul(dims: int) -> PerfCounters:
    """``mlir_CPU``: the problem run entirely on the host."""
    board = make_pynq_z2()
    a, b = _data(dims, dims, dims)
    _, counters = cpu_matmul(board, a, b)
    return counters


def compile_matmul_kernel(
    dims_m: int, dims_n: int, dims_k: int, size: int, version: int,
    flow: str, specialized: bool = True, cpu_tiling: bool = True,
    accel_size: Optional[Tuple[int, int, int]] = None,
    permutation: Optional[Tuple[str, ...]] = None,
):
    """(hardware, compiled kernel) for one generated-matmul config.

    The single compile path shared by the figure harnesses and the
    compile/simulate service worker (``repro.service.worker``), so a
    request served remotely lowers through exactly the code a local
    measurement would.
    """
    hw, info = make_matmul_system(version, size, flow=flow,
                                  accel_size=accel_size)
    compiler = AXI4MLIRCompiler(info, permutation=permutation,
                                enable_cpu_tiling=cpu_tiling,
                                specialized_copies=specialized)
    return hw, compiler.compile_matmul(dims_m, dims_n, dims_k)


def compile_conv_kernel(
    batch: int, in_ch: int, in_hw: int, out_ch: int, f_hw: int,
    stride: int = 1, specialized: bool = True,
    max_slice: Optional[int] = None,
):
    """(hardware, compiled kernel) for one generated-conv config."""
    out_hw = (in_hw - f_hw) // stride + 1
    hw, info = make_conv_system(
        in_ch, f_hw,
        max_slice=max_slice if max_slice is not None else out_hw ** 2,
    )
    compiler = AXI4MLIRCompiler(info, specialized_copies=specialized)
    return hw, compiler.compile_conv(batch, in_ch, in_hw, out_ch, f_hw,
                                     stride)


@lru_cache(maxsize=None)
def measure_generated_matmul(
    dims_m: int, dims_n: int, dims_k: int, size: int, version: int,
    flow: str, specialized: bool = True, cpu_tiling: bool = True,
    accel_size: Optional[Tuple[int, int, int]] = None,
    trace: bool = True,
) -> PerfCounters:
    """``mlir_AXI4MLIR``: compile and run the generated driver."""
    hw, kernel = compile_matmul_kernel(
        dims_m, dims_n, dims_k, size, version, flow,
        specialized=specialized, cpu_tiling=cpu_tiling,
        accel_size=accel_size,
    )
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    a, b = _data(dims_m, dims_n, dims_k)
    c = np.zeros((dims_m, dims_n), np.int32)
    counters = kernel.run(board, a, b, c, trace=trace)
    if not np.array_equal(c, _expected_matmul(a, b)):
        raise AssertionError(
            f"generated driver produced wrong results for "
            f"({dims_m},{dims_n},{dims_k}) v{version} {flow}"
        )
    return counters


@lru_cache(maxsize=None)
def measure_manual_matmul(
    dims_m: int, dims_n: int, dims_k: int, size: int, version: int,
    flow: str, tiles: Optional[Tuple[int, int, int]] = None,
) -> PerfCounters:
    """``cpp_MANUAL``: the hand-written driver baseline."""
    board = make_pynq_z2()
    board.attach_accelerator(MatMulAccelerator(size, version))
    a, b = _data(dims_m, dims_n, dims_k)
    c = np.zeros((dims_m, dims_n), np.int32)
    counters = manual_matmul_driver(board, a, b, c, version, size, flow,
                                    tiles=tiles)
    if not np.array_equal(c, _expected_matmul(a, b)):
        raise AssertionError("manual driver produced wrong results")
    return counters


def _conv_data(layer, seed: int = 11):
    rng = np.random.default_rng(seed)
    image = rng.integers(-4, 4, layer.input_shape()).astype(np.int32)
    weights = rng.integers(-4, 4, layer.filter_shape()).astype(np.int32)
    return image, weights


@lru_cache(maxsize=None)
def measure_generated_conv(layer, specialized: bool = True,
                           trace: bool = True) -> PerfCounters:
    hw, kernel = compile_conv_kernel(
        layer.batch, layer.in_ch, layer.in_hw, layer.out_ch, layer.f_hw,
        layer.stride, specialized=specialized,
        max_slice=layer.out_hw ** 2,
    )
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    image, weights = _conv_data(layer)
    expected, _ = cpu_conv(make_pynq_z2(), image, weights, layer.stride)
    out = np.zeros(layer.output_shape(), np.int32)
    counters = kernel.run(board, image, weights, out, trace=trace)
    if not np.array_equal(out, expected):
        raise AssertionError(f"generated conv wrong for {layer.label}")
    return counters


@lru_cache(maxsize=None)
def measure_manual_conv(layer) -> PerfCounters:
    board = make_pynq_z2()
    board.attach_accelerator(
        ConvAccelerator(max_ic=layer.in_ch, max_fhw=layer.f_hw,
                        max_slice=layer.out_hw ** 2)
    )
    image, weights = _conv_data(layer)
    expected, _ = cpu_conv(make_pynq_z2(), image, weights, layer.stride)
    out = np.zeros(layer.output_shape(), np.int32)
    counters = manual_conv_driver(board, image, weights, out, layer.stride)
    if not np.array_equal(out, expected):
        raise AssertionError(f"manual conv wrong for {layer.label}")
    return counters


@lru_cache(maxsize=None)
def measure_cpu_conv(layer) -> PerfCounters:
    board = make_pynq_z2()
    image, weights = _conv_data(layer)
    _, counters = cpu_conv(board, image, weights, layer.stride)
    return counters


# ---------------------------------------------------------------------------
# Model-granularity runs (fig16 / fig17)
# ---------------------------------------------------------------------------
#
# The model figures measure kernel *sequences*, not isolated kernels:
# every step of one model runs on a single shared board inside a
# ModelSession, so the cache warm-state carries between layers (the
# OfflineLruSimulator starts each step from the previous step's live
# LRU contents) and generated steps are served from the fused ModelPlan
# when one matches.  The runners are module-level so run_model_jobs can
# fork them into pool workers.

def _model_tag(payload) -> str:
    import hashlib

    return hashlib.sha256(repr(payload).encode()).hexdigest()[:12]


@lru_cache(maxsize=None)
def _conv_golden(layer) -> np.ndarray:
    """Memoized numpy reference output for one conv layer.

    Module-level (not per-model) so the parent process can warm it for
    every layer before forking: pool workers inherit the cache and the
    golden cost drops off the parallel legs' critical path.
    """
    image, weights = _conv_data(layer)
    expected, _ = cpu_conv(make_pynq_z2(), image, weights, layer.stride)
    return expected


def run_conv_model(layers: Tuple, impl: str) -> Tuple[PerfCounters, ...]:
    """One conv-layer sequence (fig16) on a single shared warm board.

    ``impl`` selects the hand-written driver (``"manual"``) or the
    compiled one (``"generated"``); both run every layer back-to-back
    on the same board so the comparison sees the same warm caches.
    Returns the per-layer perf-counter deltas, in order.
    """
    from ..execution import ModelSession

    board = make_pynq_z2()
    session = ModelSession(f"conv-{impl}-{_model_tag(layers)}", board)
    results = []
    for layer in layers:
        image, weights = _conv_data(layer)
        expected = _conv_golden(layer)
        out = np.zeros(layer.output_shape(), np.int32)
        if impl == "manual":
            board.attach_accelerator(
                ConvAccelerator(max_ic=layer.in_ch, max_fhw=layer.f_hw,
                                max_slice=layer.out_hw ** 2)
            )
            counters = manual_conv_driver(
                board, image, weights, out, layer.stride,
                plan_source=session.plan_source(("conv", layer)),
            )
        else:
            hw, info = make_conv_system(layer.in_ch, layer.f_hw,
                                        max_slice=layer.out_hw ** 2)
            board.attach_accelerator(hw)
            compiler = AXI4MLIRCompiler(info, specialized_copies=True)
            kernel = compiler.compile_conv(
                layer.batch, layer.in_ch, layer.in_hw,
                layer.out_ch, layer.f_hw, layer.stride,
            )
            counters = session.run(kernel, image, weights, out,
                                   step_key=("conv", layer))
        if not np.array_equal(out, expected):
            raise AssertionError(f"{impl} conv wrong for {layer.label}")
        results.append(counters)
    session.finish()
    return tuple(results)


def run_matmul_model(specs: Tuple) -> Tuple[PerfCounters, ...]:
    """One matmul sequence (fig17 strategy) on a single shared board.

    ``specs`` is an ordered tuple of ``(m, n, k, size, version, flow,
    accel_size)`` kernel configurations; each runs as one ModelSession
    step so consecutive matmuls see realistically warm caches.
    """
    from ..execution import ModelSession

    board = make_pynq_z2()
    session = ModelSession(f"matmul-{_model_tag(specs)}", board)
    results = []
    for spec in specs:
        dims_m, dims_n, dims_k, size, version, flow, accel_size = spec
        hw, info = make_matmul_system(version, size, flow=flow,
                                      accel_size=accel_size)
        board.attach_accelerator(hw)
        compiler = AXI4MLIRCompiler(info)
        kernel = compiler.compile_matmul(dims_m, dims_n, dims_k)
        a, b = _data(dims_m, dims_n, dims_k)
        c = np.zeros((dims_m, dims_n), np.int32)
        counters = session.run(kernel, a, b, c, step_key=("matmul",) + spec)
        if not np.array_equal(c, _expected_matmul(a, b)):
            raise AssertionError(f"model matmul wrong for {spec}")
        results.append(counters)
    session.finish()
    return tuple(results)


@lru_cache(maxsize=None)
def conv_model_counters(layers: Tuple) -> Tuple[Tuple[PerfCounters, ...],
                                                Tuple[PerfCounters, ...]]:
    """(manual, generated) per-layer counters, the two legs pooled."""
    from ..execution import run_model_jobs

    for layer in layers:
        _conv_golden(layer)
    manual, generated = run_model_jobs([
        (run_conv_model, (layers, "manual")),
        (run_conv_model, (layers, "generated")),
    ])
    return manual, generated


@lru_cache(maxsize=None)
def matmul_model_counters(*spec_groups: Tuple
                          ) -> Tuple[Tuple[PerfCounters, ...], ...]:
    """Per-spec counters for several matmul models, pooled."""
    from ..execution import run_model_jobs

    return tuple(run_model_jobs(
        [(run_matmul_model, (specs,)) for specs in spec_groups]
    ))
