"""Row generators for every table and figure in the paper's evaluation.

Scale control: the paper's largest problems (dims = 256, full ResNet
spatial extents) make the line-level cache simulation take minutes; by
default the harnesses run a reduced grid that preserves every claimed
*shape*.  Set ``REPRO_FULL_SCALE=1`` to regenerate the full grids.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from ..accelerators.catalog import VERSION_FLOWS
from ..frontends import RESNET18_LAYERS, scaled_layer
from ..frontends.tinybert import (
    TinyBertConfig,
    attention_matmul_macs,
    other_layer_macs,
    tinybert_matmul_shapes,
)
from ..heuristics import best_configuration, square_tile_configuration
from ..soc import TimingModel, make_pynq_z2
from ..soc.timing import TABLE1_OPS_PER_CYCLE
from .harness import (
    conv_model_counters,
    matmul_model_counters,
    measure_cpu_conv,
    measure_cpu_matmul,
    measure_generated_conv,
    measure_generated_matmul,
    measure_manual_conv,
    measure_manual_matmul,
)


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("0", "", "false")


def _matmul_dims() -> List[int]:
    return [64, 128, 256] if full_scale() else [64, 128]


def format_table(rows: Sequence[Dict], columns: Sequence[str]) -> str:
    """Plain-text table for benchmark output."""
    if not rows:
        return "(no rows)"
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1_rows() -> List[Dict]:
    """The accelerator catalog with Table I throughputs."""
    reuse = {1: "Nothing", 2: "Inputs", 3: "Ins/Out",
             4: "Ins/Out (flex size)"}
    opcodes = {1: "sAsBcCrC", 2: "sA, sB, cCrC", 3: "sA, sB, cC, rC",
               4: "sA, sB, cC, rC, cfg"}
    rows = []
    for version in (1, 2, 3, 4):
        for size, ops in sorted(TABLE1_OPS_PER_CYCLE.items()):
            rows.append({
                "type": f"v{version}",
                "possible_reuse": reuse[version],
                "opcodes": opcodes[version],
                "size": size,
                "ops_per_cycle": ops,
                "flows": "/".join(VERSION_FLOWS[version]),
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 — CPU vs accelerator relevance
# ---------------------------------------------------------------------------

def fig10_rows() -> List[Dict]:
    """Runtime characterization: mlir_CPU vs v1 offload, Ns flow."""
    dims_grid = ([16, 32, 64, 128, 256] if full_scale()
                 else [16, 32, 64, 128])
    rows = []
    for dims in dims_grid:
        cpu = measure_cpu_matmul(dims)
        rows.append({
            "dims": dims, "accel_size": 0, "accel_version": "NONE",
            "task_clock_ms": cpu.task_clock_ms(),
        })
        for size in (4, 8, 16):
            if dims < size:
                continue
            counters = measure_generated_matmul(dims, dims, dims, size, 1,
                                                "Ns")
            rows.append({
                "dims": dims, "accel_size": size, "accel_version": "v1",
                "task_clock_ms": counters.task_clock_ms(),
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — flows before the copy optimization
# ---------------------------------------------------------------------------

def fig11_rows() -> List[Dict]:
    """Manual Ns vs generated Ns/As/Bs/Cs, generic (unoptimized) copies."""
    rows = []
    for dims in _matmul_dims():
        for size in (8, 16):
            for version in (2, 3):
                manual = measure_manual_matmul(dims, dims, dims, size,
                                               version, "Ns")
                rows.append({
                    "dims": dims, "accel_size": size,
                    "accel_version": f"v{version}",
                    "impl": "cpp_MANUAL", "flow": "Ns",
                    "task_clock_ms": manual.task_clock_ms(),
                })
                for flow in VERSION_FLOWS[version]:
                    counters = measure_generated_matmul(
                        dims, dims, dims, size, version, flow,
                        specialized=False,
                    )
                    rows.append({
                        "dims": dims, "accel_size": size,
                        "accel_version": f"v{version}",
                        "impl": "mlir_AXI4MLIR", "flow": flow,
                        "task_clock_ms": counters.task_clock_ms(),
                    })
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 — perf counters with/without the MemRef copy optimization
# ---------------------------------------------------------------------------

def fig12_rows(dims: int = 128, size: int = 16, version: int = 3
               ) -> List[Dict]:
    """Counters for v3-16 at dims==128, normalized to the CPU run."""
    cpu = measure_cpu_matmul(dims)
    rows = []
    for optimized in (False, True):
        panel = "12b(optimized)" if optimized else "12a(unoptimized)"
        manual = measure_manual_matmul(dims, dims, dims, size, version, "Ns")
        rows.append({
            "panel": panel, "impl": "cpp_MANUAL", "flow": "Ns",
            **manual.normalized_to(cpu),
        })
        for flow in VERSION_FLOWS[version]:
            counters = measure_generated_matmul(
                dims, dims, dims, size, version, flow,
                specialized=optimized,
            )
            rows.append({
                "panel": panel, "impl": "mlir_AXI4MLIR", "flow": flow,
                **counters.normalized_to(cpu),
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — headline: manual vs generated, matched flows
# ---------------------------------------------------------------------------

def fig13_rows() -> List[Dict]:
    rows = []
    for dims in _matmul_dims():
        for size in (8, 16):
            for version in (2, 3):
                for flow in VERSION_FLOWS[version]:
                    manual = measure_manual_matmul(dims, dims, dims, size,
                                                   version, flow)
                    generated = measure_generated_matmul(dims, dims, dims,
                                                         size, version, flow)
                    rows.append({
                        "dims": dims, "accel_size": size,
                        "accel_version": f"v{version}", "flow": flow,
                        "cpp_MANUAL_ms": manual.task_clock_ms(),
                        "mlir_AXI4MLIR_ms": generated.task_clock_ms(),
                        "speedup": manual.task_clock_ms()
                        / generated.task_clock_ms(),
                        "cache_ref_reduction":
                            1.0 - generated.cache_references
                            / manual.cache_references,
                    })
    return rows


# ---------------------------------------------------------------------------
# Fig. 14 — flexible sizes on v4
# ---------------------------------------------------------------------------

FIG14_QUANTUM = 16
FIG14_CAPACITY = 16 * 16 * 16


def fig14_problems() -> List[tuple]:
    values = [256, 32, 512] if full_scale() else [128, 32, 256]
    from itertools import permutations

    return sorted(set(permutations(values)))


def sweep_rows(journal_path=None, report_path=None) -> List[Dict]:
    """Best-config rows from a smoke run of the autotuning sweep engine.

    Runs (or, when ``journal_path`` points at an interrupted sweep's
    journal, resumes) the crash-safe sweep over the smoke space and
    flattens the per-(kernel, shape) winners into table rows — the
    same shape the figure tables use, so the tuned configurations can
    be compared directly against the heuristic-chosen ones.
    """
    import tempfile

    from ..tuning import SweepDriver, best_rows, smoke_space

    if journal_path is None:
        journal_path = os.path.join(
            tempfile.mkdtemp(prefix="repro-sweep-"), "sweep.jsonl")
    driver = SweepDriver(smoke_space(), journal_path=journal_path,
                         report_path=report_path)
    result = driver.run()
    if not result["complete"]:
        raise RuntimeError("autotuning sweep was interrupted before "
                           "completing; resume it with the same journal")
    return best_rows(result["report"])


def fig14_rows() -> List[Dict]:
    rows = []
    for m, n, k in fig14_problems():
        row: Dict = {"dims": f"{m}_{n}_{k}"}
        for flow in ("As", "Bs", "Cs"):
            choice = square_tile_configuration(
                m, n, k, flow, FIG14_QUANTUM, FIG14_CAPACITY
            )
            counters = measure_generated_matmul(
                m, n, k, 16, 4, flow, accel_size=choice.tiles,
            )
            row[f"{flow}-squareTile_ms"] = counters.task_clock_ms()
        best = best_configuration(m, n, k, FIG14_QUANTUM, FIG14_CAPACITY)
        counters = measure_generated_matmul(
            m, n, k, 16, 4, best.flow, accel_size=best.tiles,
        )
        row["Best_ms"] = counters.task_clock_ms()
        row["Best_config"] = best.label()
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 16 — ResNet18 convolution layers
# ---------------------------------------------------------------------------

def fig16_layers():
    if full_scale():
        return list(RESNET18_LAYERS)
    return [scaled_layer(layer) for layer in RESNET18_LAYERS]


def fig16_rows() -> List[Dict]:
    """Per-layer manual vs generated conv, measured as *model* runs.

    Both implementations execute the full layer sequence back-to-back
    on one shared board each (fig16 is a network, not eleven isolated
    kernels), so every layer after the first sees the realistically
    warm cache its predecessors left behind; the two model legs run in
    parallel on the replay worker pool.
    """
    layers = tuple(fig16_layers())
    manual_counters, generated_counters = conv_model_counters(layers)
    rows = []
    for original, manual, generated in zip(
        RESNET18_LAYERS, manual_counters, generated_counters
    ):
        normalized = generated.normalized_to(manual)
        rows.append({
            "layer": original.label,
            "branch_instructions": normalized["branch-instructions"],
            "cache_references": normalized["cache-references"],
            "task_clock": normalized["task-clock"],
            "speedup": manual.task_clock_ms() / generated.task_clock_ms(),
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 17 — TinyBERT end to end
# ---------------------------------------------------------------------------

def _cpu_mac_seconds(macs: float, timing: TimingModel) -> float:
    return macs * timing.cpu_cycles_per_mac / timing.cpu_freq_hz


def _fig17_specs(shapes, strategy: str) -> tuple:
    """The ordered matmul-kernel configs one fig17 strategy executes."""
    specs = []
    for shape in shapes:
        m, n, k = shape.padded(FIG14_QUANTUM)
        if strategy == "Ns-SquareTile":
            choice = square_tile_configuration(
                m, n, k, "Ns", FIG14_QUANTUM, FIG14_CAPACITY
            )
            flow, tiles = "Ns", choice.tiles
        else:
            best = best_configuration(m, n, k, FIG14_QUANTUM,
                                      FIG14_CAPACITY)
            flow, tiles = best.flow, best.tiles
        specs.append((m, n, k, 16, 4, flow, tiles))
    return tuple(specs)


def fig17_rows(config: TinyBertConfig = TinyBertConfig()) -> List[Dict]:
    """End-to-end TinyBERT time decomposition per compilation strategy.

    Each strategy's matmul schedule runs as one model on a shared
    board (warm-state carry between consecutive matmuls); the two
    strategies run in parallel on the replay worker pool.
    """
    timing = make_pynq_z2().timing
    shapes = tinybert_matmul_shapes(config)
    other_s = _cpu_mac_seconds(other_layer_macs(config), timing)
    attn_s = _cpu_mac_seconds(attention_matmul_macs(config), timing)

    strategy_specs = {
        strategy: _fig17_specs(shapes, strategy)
        for strategy in ("Ns-SquareTile", "AXI4MLIR Best")
    }
    counters_by_strategy = dict(zip(
        strategy_specs,
        matmul_model_counters(*strategy_specs.values()),
    ))

    def gemm_cpu_seconds() -> float:
        return sum(_cpu_mac_seconds(s.macs, timing) for s in shapes)

    def gemm_accel_seconds(strategy: str) -> float:
        return sum(
            counters.task_clock_ms() / 1e3 * shape.count
            for shape, counters in zip(shapes, counters_by_strategy[strategy])
        )

    cpu_total = other_s + attn_s + gemm_cpu_seconds()
    rows = [{
        "strategy": "CPU (MLIR)",
        "other_layers_s": other_s,
        "matmuls_cpu_s": attn_s + gemm_cpu_seconds(),
        "matmuls_acc_s": 0.0,
        "e2e_s": cpu_total,
        "e2e_speedup": 1.0,
        "matmul_speedup": 1.0,
    }]
    for strategy in ("Ns-SquareTile", "AXI4MLIR Best"):
        accel_s = gemm_accel_seconds(strategy)
        total = other_s + attn_s + accel_s
        rows.append({
            "strategy": strategy,
            "other_layers_s": other_s,
            "matmuls_cpu_s": attn_s,
            "matmuls_acc_s": accel_s,
            "e2e_s": total,
            "e2e_speedup": cpu_total / total,
            "matmul_speedup": gemm_cpu_seconds() / accel_s,
        })
    return rows
