"""Experiment harnesses regenerating every table and figure of the paper.

Each ``figNN_rows`` function runs the relevant simulations and returns a
list of result-row dicts (the same series the paper plots); benchmarks
print them as tables, and the paper-claims tests assert their shapes.
"""

from .harness import (
    kernel_cache_stats,
    stage_timings,
    conv_model_counters,
    matmul_model_counters,
    measure_cpu_matmul,
    measure_generated_conv,
    measure_generated_matmul,
    measure_manual_conv,
    measure_manual_matmul,
    run_conv_model,
    run_matmul_model,
)
from .figures import (
    format_table,
    table1_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    fig13_rows,
    fig14_rows,
    fig16_rows,
    fig17_rows,
    sweep_rows,
)

__all__ = [
    "kernel_cache_stats",
    "stage_timings",
    "conv_model_counters", "matmul_model_counters",
    "measure_cpu_matmul", "measure_generated_conv",
    "measure_generated_matmul", "measure_manual_conv",
    "measure_manual_matmul",
    "run_conv_model", "run_matmul_model",
    "format_table", "table1_rows",
    "fig10_rows", "fig11_rows", "fig12_rows", "fig13_rows",
    "fig14_rows", "fig16_rows", "fig17_rows", "sweep_rows",
]
