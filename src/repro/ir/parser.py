"""Textual IR parsing: the inverse of :mod:`repro.ir.printer`.

A recursive-descent parser for the MLIR-flavoured syntax the printer
emits: modules, ``func.func`` definitions, ``scf.for`` loops, generic
operations (``"dialect.op"(%a, %b) {attrs} : (types) -> (types)``) with
nested regions and block arguments, the types of :mod:`repro.ir.types`,
and every attribute kind the printer can produce — including
``affine_map<...>``, ``opcode_map<...>`` and ``opcode_flow<...>``
composite attributes, which are delegated to their existing parsers.

The contract the test suite locks down is *print idempotence*::

    print(parse(print(m))) == print(m)

for every module the builders and passes can produce.  Parsing is
strict: SSA operands must be defined before use, operand types must
match the declared type clause, and op names must be registered by a
dialect module (see :func:`register_dialect_op`) unless
``allow_unregistered=True``.  Every constructed operation carries a
``location`` (``"<file>:<line>"``) so verifier diagnostics can point
back into the source text.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .affine import parse_affine_map
from .attributes import (
    AffineMapAttr,
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    TypeAttr,
    unescape_string,
)
from .core import Block, IRError, Module, Operation, Region, Value
from .types import (
    DYNAMIC,
    INDEX,
    NONE,
    FloatType,
    FunctionType,
    IntegerType,
    MemRefType,
    Type,
)


class ParseError(IRError):
    """Raised on malformed textual IR, with ``file:line:col`` context."""

    def __init__(self, message: str, filename: str = "<mlir>",
                 line: int = 0, col: int = 0):
        super().__init__(f"{filename}:{line}:{col}: {message}")
        self.filename = filename
        self.line = line
        self.col = col


# ---------------------------------------------------------------------------
# Dialect op registry
# ---------------------------------------------------------------------------

#: Fully qualified op name -> dialect namespace ("arith", "accel", ...).
_DIALECT_OPS: Dict[str, str] = {}


def register_dialect_op(name: str, dialect: Optional[str] = None) -> str:
    """Register an op name so the parser re-materializes it as known IR.

    Dialect modules call this at import time for every op they define;
    the parser rejects unregistered names (catching typos in fixtures)
    and the test suite enumerates the registry to guarantee golden-file
    coverage of every op.
    """
    _DIALECT_OPS[name] = dialect or name.split(".", 1)[0]
    return name


def registered_ops(dialect: Optional[str] = None) -> List[str]:
    """All registered op names, optionally filtered by dialect."""
    _ensure_dialects_loaded()
    return sorted(
        name for name, ns in _DIALECT_OPS.items()
        if dialect is None or ns == dialect
    )


def is_registered_op(name: str) -> bool:
    return name in _DIALECT_OPS


register_dialect_op("builtin.module", "builtin")

_DIALECTS_LOADED = False


def _ensure_dialects_loaded() -> None:
    """Import the dialect modules so their registration hooks have run."""
    global _DIALECTS_LOADED
    if _DIALECTS_LOADED:
        return
    from .. import dialects  # noqa: F401  (import for side effects)
    _DIALECTS_LOADED = True


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

#: Identifiers that open a balanced ``<...>`` composite token.
_COMPOSITE_HEADS = ("affine_map", "map", "opcode_map", "opcode_flow",
                    "memref")

_NUMBER_RE = re.compile(
    r"-?(?:0x[0-9a-fA-F]+|\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$.]*")
_NAME_RE = re.compile(r"[A-Za-z0-9_$.]+")


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int):
        self.kind = kind      # ident ssa symbol caret string number punct
        self.text = text      # composite eof
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def _scan_composite(text: str, start: int) -> int:
    """Return the index one past the ``>`` matching the ``<`` at ``start``.

    Skips ``->`` arrows and string literals so affine maps and quoted
    opcode names inside the body do not terminate the scan early.
    """
    depth = 0
    i = start
    while i < len(text):
        ch = text[i]
        if ch == '"':
            i += 1
            while i < len(text) and text[i] != '"':
                i += 2 if text[i] == "\\" else 1
            i += 1
            continue
        if ch == "-" and i + 1 < len(text) and text[i + 1] == ">":
            i += 2
            continue
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def tokenize(text: str, filename: str = "<mlir>") -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def advance_to(end: int) -> int:
        """Move past a token that may span newlines, keeping line counts."""
        nonlocal line, line_start
        newlines = text.count("\n", i, end)
        if newlines:
            line += newlines
            line_start = text.rfind("\n", i, end) + 1
        return end

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        col = i - line_start + 1
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            if j >= n:
                raise ParseError("unterminated string literal",
                                 filename, line, col)
            tokens.append(Token("string", text[i + 1:j], line, col))
            i = advance_to(j + 1)
            continue
        if ch == "%" or ch == "@":
            match = _NAME_RE.match(text, i + 1)
            if not match:
                raise ParseError(f"dangling {ch!r}", filename, line, col)
            kind = "ssa" if ch == "%" else "symbol"
            tokens.append(Token(kind, match.group(0), line, col))
            i = match.end()
            continue
        if ch == "^":
            match = _NAME_RE.match(text, i + 1)
            if not match:
                raise ParseError("dangling '^'", filename, line, col)
            tokens.append(Token("caret", match.group(0), line, col))
            i = match.end()
            continue
        if ch == "-" and text.startswith("->", i):
            tokens.append(Token("punct", "->", line, col))
            i += 2
            continue
        number = _NUMBER_RE.match(text, i)
        if number and (ch.isdigit() or ch == "." or
                       (ch == "-" and number.end() > i + 1)):
            tokens.append(Token("number", number.group(0), line, col))
            i = number.end()
            continue
        ident = _IDENT_RE.match(text, i)
        if ident:
            word = ident.group(0)
            j = ident.end()
            if word in _COMPOSITE_HEADS:
                k = j
                while k < n and text[k] in " \t":
                    k += 1
                if k < n and text[k] == "<":
                    end = _scan_composite(text, k)
                    if end == -1:
                        raise ParseError(
                            f"unterminated {word}<...>", filename, line, col
                        )
                    tokens.append(
                        Token("composite", text[i:end], line, col)
                    )
                    i = advance_to(end)
                    continue
            tokens.append(Token("ident", word, line, col))
            i = j
            continue
        if ch in "(){}[]<>=,:-":
            tokens.append(Token("punct", ch, line, col))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", filename, line, col)
    tokens.append(Token("eof", "", line, n - line_start + 1))
    return tokens


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


class _Scope:
    """Lexically nested SSA name environment (one per function/region)."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Value] = {}

    def define(self, name: str, value: Value) -> None:
        self.names[name] = value

    def lookup(self, name: str) -> Optional[Value]:
        scope: Optional[_Scope] = self
        while scope is not None:
            value = scope.names.get(name)
            if value is not None:
                return value
            scope = scope.parent
        return None


# ---------------------------------------------------------------------------
# Type parsing
# ---------------------------------------------------------------------------

_MEMREF_RE = re.compile(
    r"memref\s*<\s*(?P<dims>(?:(?:\d+|\?)x\s*)*)(?P<elem>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\s*,\s*strided\s*<\s*\[(?P<strides>[^\]]*)\]\s*,\s*"
    r"offset\s*:\s*(?P<offset>\?|-?\d+)\s*>\s*)?\s*>$"
)


def _parse_dim(text: str) -> int:
    return DYNAMIC if text == "?" else int(text)


def _scalar_type(name: str) -> Optional[Type]:
    if name == "index":
        return INDEX
    if name == "none":
        return NONE
    if len(name) > 1 and name[1:].isdigit():
        if name[0] == "i":
            return IntegerType(int(name[1:]))
        if name[0] == "f":
            return FloatType(int(name[1:]))
    return None


def parse_memref_type(text: str, filename: str = "<mlir>",
                      line: int = 0, col: int = 0) -> MemRefType:
    match = _MEMREF_RE.match(text.strip())
    if not match:
        raise ParseError(f"malformed memref type {text!r}",
                         filename, line, col)
    dims = tuple(
        _parse_dim(d) for d in match.group("dims").replace(" ", "")[:-1].split("x")
    ) if match.group("dims") else ()
    element = _scalar_type(match.group("elem"))
    if element is None:
        raise ParseError(
            f"unknown element type {match.group('elem')!r} in {text!r}",
            filename, line, col,
        )
    strides = None
    offset = 0
    if match.group("strides") is not None:
        entries = [s.strip() for s in match.group("strides").split(",") if s.strip()]
        strides = tuple(_parse_dim(s) for s in entries)
        offset = _parse_dim(match.group("offset"))
        if len(strides) != len(dims):
            raise ParseError(
                f"strided layout rank mismatch in {text!r}",
                filename, line, col,
            )
    return MemRefType(dims, element, strides=strides, offset=offset)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class Parser:
    def __init__(self, text: str, filename: str = "<mlir>",
                 allow_unregistered: bool = False):
        self.filename = filename
        self.allow_unregistered = allow_unregistered
        self.tokens = tokenize(text, filename)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.peek()
        return ParseError(message, self.filename, token.line, token.col)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise self.error(
                f"expected {want!r}, got {token.text!r}", token
            )
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def location_of(self, token: Token) -> str:
        return f"{self.filename}:{token.line}"

    # -- entry points -----------------------------------------------------
    def parse_module(self) -> Module:
        _ensure_dialects_loaded()
        module = Module()
        scope = _Scope()
        if self.peek().kind == "ident" and self.peek().text == "module":
            self.next()
            self.expect("punct", "{")
            while not self.accept("punct", "}"):
                module.body.append(self.parse_operation(scope))
        else:
            while self.peek().kind != "eof":
                module.body.append(self.parse_operation(scope))
        self.expect("eof")
        return module

    # -- operations -------------------------------------------------------
    def parse_operation(self, scope: _Scope) -> Operation:
        token = self.peek()
        results: List[str] = []
        if token.kind == "ssa":
            while True:
                results.append(self.expect("ssa").text)
                if not self.accept("punct", ","):
                    break
            self.expect("punct", "=")
            token = self.peek()
        if token.kind == "string":
            return self.parse_generic_op(scope, results)
        if token.kind == "ident" and token.text == "func.func":
            if results:
                raise self.error("func.func cannot produce results", token)
            return self.parse_func(scope)
        if token.kind == "ident" and token.text == "scf.for":
            if results:
                raise self.error(
                    "scf.for with results is not supported", token
                )
            return self.parse_for(scope)
        raise self.error(f"expected an operation, got {token.text!r}", token)

    def _check_registered(self, name: str, token: Token) -> None:
        if not self.allow_unregistered and not is_registered_op(name):
            raise self.error(
                f"unregistered operation {name!r}; known dialects register "
                f"their ops via repro.ir.parser.register_dialect_op", token
            )

    def _resolve(self, token: Token, scope: _Scope) -> Value:
        value = scope.lookup(token.text)
        if value is None:
            raise self.error(f"use of undefined value %{token.text}", token)
        return value

    def parse_generic_op(self, scope: _Scope,
                         results: List[str]) -> Operation:
        name_token = self.expect("string")
        name = name_token.text
        self._check_registered(name, name_token)

        self.expect("punct", "(")
        operand_tokens: List[Token] = []
        if not self.accept("punct", ")"):
            while True:
                operand_tokens.append(self.expect("ssa"))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        operands = [self._resolve(t, scope) for t in operand_tokens]

        attributes: Dict[str, Attribute] = {}
        if self.peek().kind == "punct" and self.peek().text == "{":
            attributes = self.parse_attr_dict()

        in_types: List[Type] = []
        out_types: List[Type] = []
        if self.accept("punct", ":"):
            in_types = self.parse_paren_type_list()
            if self.accept("punct", "->"):
                out_types = self.parse_paren_type_list()

        if len(in_types) != len(operands):
            raise self.error(
                f"{name}: {len(operands)} operands but {len(in_types)} "
                f"operand types", name_token,
            )
        for operand, declared, token in zip(operands, in_types,
                                            operand_tokens):
            if operand.type != declared:
                raise self.error(
                    f"{name}: operand %{token.text} has type "
                    f"{operand.type}, but the type clause says {declared}",
                    token,
                )
        if len(out_types) != len(results):
            raise self.error(
                f"{name}: {len(results)} result names but "
                f"{len(out_types)} result types", name_token,
            )

        op = Operation(name, operands=operands, result_types=out_types,
                       attributes=attributes)
        op.location = self.location_of(name_token)

        while (self.peek().kind == "punct" and self.peek().text == "(" and
               self.peek(1).kind == "punct" and self.peek(1).text == "{"):
            self.parse_region(op, scope)

        for result_name, result in zip(results, op.results):
            scope.define(result_name, result)
        return op

    def parse_region(self, op: Operation, scope: _Scope) -> Region:
        self.expect("punct", "(")
        self.expect("punct", "{")
        region = Region(op)
        op.regions.append(region)
        region_scope = _Scope(scope)

        def at_region_end() -> bool:
            return self.peek().kind == "punct" and self.peek().text == "}"

        if self.peek().kind != "caret" and not at_region_end():
            # Unlabeled entry block (printed without a header when it has
            # no arguments); labeled blocks may still follow it.
            block = region.add_block()
            while self.peek().kind != "caret" and not at_region_end():
                block.append(self.parse_operation(region_scope))
        while self.peek().kind == "caret":
            self.next()
            arg_names: List[str] = []
            arg_types: List[Type] = []
            if self.accept("punct", "("):
                if not self.accept("punct", ")"):
                    while True:
                        arg_names.append(self.expect("ssa").text)
                        self.expect("punct", ":")
                        arg_types.append(self.parse_type())
                        if not self.accept("punct", ","):
                            break
                    self.expect("punct", ")")
            self.expect("punct", ":")
            block = region.add_block(arg_types)
            for arg_name, argument in zip(arg_names, block.arguments):
                region_scope.define(arg_name, argument)
            while self.peek().kind != "caret" and not at_region_end():
                block.append(self.parse_operation(region_scope))
        if not region.blocks:
            region.add_block()
        self.expect("punct", "}")
        self.expect("punct", ")")
        return region

    def parse_func(self, scope: _Scope) -> Operation:
        token = self.expect("ident", "func.func")
        symbol = self.expect("symbol")
        self.expect("punct", "(")
        arg_names: List[str] = []
        arg_types: List[Type] = []
        if not self.accept("punct", ")"):
            while True:
                arg_names.append(self.expect("ssa").text)
                self.expect("punct", ":")
                arg_types.append(self.parse_type())
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        result_types: List[Type] = []
        if self.accept("punct", "->"):
            while True:
                result_types.append(self.parse_type())
                if not self.accept("punct", ","):
                    break
        func_op = Operation(
            "func.func",
            attributes={
                "sym_name": StringAttr(symbol.text),
                "function_type": TypeAttr(
                    FunctionType(tuple(arg_types), tuple(result_types))
                ),
            },
            regions=1,
        )
        func_op.location = self.location_of(token)
        block = func_op.regions[0].add_block(arg_types)
        func_scope = _Scope(scope)
        for arg_name, argument in zip(arg_names, block.arguments):
            func_scope.define(arg_name, argument)
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            block.append(self.parse_operation(func_scope))
        return func_op

    def parse_for(self, scope: _Scope) -> Operation:
        token = self.expect("ident", "scf.for")
        iv = self.expect("ssa")
        self.expect("punct", "=")
        lower = self._resolve(self.expect("ssa"), scope)
        self.expect("ident", "to")
        upper = self._resolve(self.expect("ssa"), scope)
        self.expect("ident", "step")
        step = self._resolve(self.expect("ssa"), scope)
        op = Operation("scf.for", operands=[lower, upper, step], regions=1)
        op.location = self.location_of(token)
        body = op.regions[0].add_block([INDEX])
        body_scope = _Scope(scope)
        body_scope.define(iv.text, body.arguments[0])
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            body.append(self.parse_operation(body_scope))
        return op

    # -- types ------------------------------------------------------------
    def parse_paren_type_list(self) -> List[Type]:
        self.expect("punct", "(")
        types: List[Type] = []
        if not self.accept("punct", ")"):
            while True:
                types.append(self.parse_type())
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        return types

    def parse_type(self) -> Type:
        token = self.peek()
        if token.kind == "composite" and token.text.startswith("memref"):
            self.next()
            return parse_memref_type(token.text, self.filename,
                                     token.line, token.col)
        if token.kind == "ident":
            scalar = _scalar_type(token.text)
            if scalar is not None:
                self.next()
                return scalar
            raise self.error(f"unknown type {token.text!r}", token)
        if token.kind == "punct" and token.text == "(":
            inputs = self.parse_paren_type_list()
            self.expect("punct", "->")
            if self.peek().kind == "punct" and self.peek().text == "(":
                outputs = self.parse_paren_type_list()
            else:
                outputs = [self.parse_type()]
            return FunctionType(tuple(inputs), tuple(outputs))
        raise self.error(f"expected a type, got {token.text!r}", token)

    # -- attributes -------------------------------------------------------
    def parse_attr_dict(self) -> Dict[str, Attribute]:
        self.expect("punct", "{")
        entries: Dict[str, Attribute] = {}
        if not self.accept("punct", "}"):
            while True:
                key_token = self.next()
                if key_token.kind not in ("ident", "string"):
                    raise self.error(
                        f"expected attribute name, got {key_token.text!r}",
                        key_token,
                    )
                key = (unescape_string(key_token.text)
                       if key_token.kind == "string" else key_token.text)
                self.expect("punct", "=")
                entries[key] = self.parse_attr_value()
                if not self.accept("punct", ","):
                    break
            self.expect("punct", "}")
        return entries

    def _number_attr(self, text: str,
                     token: Token) -> Tuple[bool, object]:
        """Return (is_float, value) for a number literal."""
        lowered = text.lower()
        if "x" in lowered:
            return False, int(text, 16)
        if "." in text or "e" in lowered:
            return True, float(text)
        return False, int(text)

    def parse_attr_value(self) -> Attribute:
        token = self.peek()
        if token.kind == "string":
            self.next()
            return StringAttr(unescape_string(token.text))
        if token.kind == "number":
            self.next()
            is_float, value = self._number_attr(token.text, token)
            attr_type = None
            if self.accept("punct", ":"):
                attr_type = self.parse_type()
            if is_float:
                return FloatAttr(value, attr_type)
            return IntegerAttr(value, attr_type)
        if token.kind == "punct" and token.text == "-":
            # Negative special floats: repr() spells them "-inf"/"-nan".
            self.next()
            word = self.expect("ident")
            if word.text in ("inf", "nan"):
                attr_type = None
                if self.accept("punct", ":"):
                    attr_type = self.parse_type()
                return FloatAttr(float("-" + word.text), attr_type)
            raise self.error(f"unexpected '-{word.text}'", word)
        if token.kind == "ident":
            if token.text == "true":
                self.next()
                return BoolAttr(True)
            if token.text == "false":
                self.next()
                return BoolAttr(False)
            if token.text in ("inf", "nan"):
                self.next()
                attr_type = None
                if self.accept("punct", ":"):
                    attr_type = self.parse_type()
                return FloatAttr(float(token.text), attr_type)
            scalar = _scalar_type(token.text)
            if scalar is not None:
                self.next()
                return TypeAttr(scalar)
            raise self.error(
                f"unexpected identifier {token.text!r} in attribute value",
                token,
            )
        if token.kind == "composite":
            self.next()
            head = token.text.split("<", 1)[0].strip()
            if head in ("affine_map", "map"):
                return AffineMapAttr(parse_affine_map(token.text))
            if head == "opcode_map":
                from ..opcodes import parse_opcode_map
                return _opcode_map_attr(parse_opcode_map(token.text))
            if head == "opcode_flow":
                from ..opcodes import parse_opcode_flow
                return _opcode_flow_attr(parse_opcode_flow(token.text))
            if head == "memref":
                return TypeAttr(
                    parse_memref_type(token.text, self.filename,
                                      token.line, token.col)
                )
            raise self.error(f"unknown composite attribute {head!r}", token)
        if token.kind == "punct" and token.text == "[":
            self.next()
            elements: List[Attribute] = []
            if not self.accept("punct", "]"):
                while True:
                    elements.append(self.parse_attr_value())
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "]")
            return ArrayAttr(tuple(elements))
        if token.kind == "punct" and token.text == "{":
            return DictAttr(tuple(self.parse_attr_dict().items()))
        if token.kind == "punct" and token.text == "(":
            return TypeAttr(self.parse_type())
        raise self.error(
            f"expected an attribute value, got {token.text!r}", token
        )


def _opcode_map_attr(value):
    from ..opcodes import OpcodeMapAttr
    return OpcodeMapAttr(value)


def _opcode_flow_attr(value):
    from ..opcodes import OpcodeFlowAttr
    return OpcodeFlowAttr(value)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_module(text: str, filename: str = "<mlir>",
                 allow_unregistered: bool = False,
                 verify: bool = False) -> Module:
    """Parse a textual module (the output of :func:`print_module`).

    ``// line comments`` are skipped, so ``.mlir`` fixture files with
    ``// RUN:`` / ``// CHECK:`` directives parse as-is.  With
    ``verify=True`` the reconstructed module is run through the
    structural verifier before being returned.
    """
    module = Parser(text, filename=filename,
                    allow_unregistered=allow_unregistered).parse_module()
    if verify:
        from .verifier import verify as run_verifier
        run_verifier(module.op)
    return module


def parse_op(text: str, filename: str = "<mlir>",
             allow_unregistered: bool = False) -> Operation:
    """Parse a single top-level operation (e.g. one ``func.func``)."""
    parser = Parser(text, filename=filename,
                    allow_unregistered=allow_unregistered)
    _ensure_dialects_loaded()
    op = parser.parse_operation(_Scope())
    parser.expect("eof")
    return op


def roundtrip(module: Module) -> Module:
    """``parse(print(module))`` — used by round-trip tests."""
    from .printer import print_module
    return parse_module(print_module(module))
