"""Insertion-point-based IR construction helper (MLIR's ``OpBuilder``)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .core import Block, IRError, Operation, Value
from .types import Type


class InsertionPoint:
    """A position within a block where new operations are inserted."""

    def __init__(self, block: Block, index: Optional[int] = None):
        self.block = block
        self.index = len(block.operations) if index is None else index

    @staticmethod
    def at_end(block: Block) -> "InsertionPoint":
        return InsertionPoint(block)

    @staticmethod
    def before(op: Operation) -> "InsertionPoint":
        block = op.block()
        return InsertionPoint(block, block.operations.index(op))

    @staticmethod
    def after(op: Operation) -> "InsertionPoint":
        block = op.block()
        return InsertionPoint(block, block.operations.index(op) + 1)


class Builder:
    """Creates operations at a movable insertion point.

    The constant cache de-duplicates ``arith.constant`` ops per block, which
    keeps the emitted host code free of repeated literals (the paper's
    listings declare each constant once at function entry).
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self._ip = insertion_point
        self._stack: List[InsertionPoint] = []
        self._constant_cache: Dict[Tuple[int, object, Type], Value] = {}

    # -- insertion point management ----------------------------------------
    @property
    def insertion_point(self) -> InsertionPoint:
        if self._ip is None:
            raise IRError("builder has no insertion point")
        return self._ip

    def set_insertion_point(self, ip: InsertionPoint) -> None:
        self._ip = ip

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._ip = InsertionPoint.at_end(block)

    def push_insertion_point(self, ip: InsertionPoint) -> None:
        if self._ip is not None:
            self._stack.append(self._ip)
        self._ip = ip

    def pop_insertion_point(self) -> None:
        if not self._stack:
            raise IRError("insertion point stack is empty")
        self._ip = self._stack.pop()

    # -- op creation ---------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        ip = self.insertion_point
        ip.block.insert(ip.index, op)
        ip.index += 1
        return op

    def create(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[dict] = None,
        regions: int = 0,
    ) -> Operation:
        return self.insert(
            Operation(name, operands, result_types, attributes, regions)
        )

    # -- constants -----------------------------------------------------------
    def cached_constant(self, value, type: Type, make) -> Value:
        """Return an existing constant in the current block or build one."""
        block = self.insertion_point.block
        key = (id(block), value, type)
        cached = self._constant_cache.get(key)
        if cached is not None:
            return cached
        result = make()
        self._constant_cache[key] = result
        return result
