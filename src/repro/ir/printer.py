"""Textual IR printing in an MLIR-flavoured syntax.

The printer assigns ``%0, %1, ...`` names to SSA values per function (block
arguments of the entry block get ``%arg0`` style names, loop induction
variables reuse stored hint names when available) so that printed modules
resemble the paper's listings (Figs. 2 and 6b).
"""

from __future__ import annotations

from typing import Dict, List

from .attributes import Attribute, StringAttr
from .core import Block, Module, Operation, Region, Value
from .types import FunctionType


class _NameScope:
    def __init__(self):
        self.names: Dict[Value, str] = {}
        self.counter = 0

    def name(self, value: Value) -> str:
        existing = self.names.get(value)
        if existing is not None:
            return existing
        fresh = f"%{self.counter}"
        self.counter += 1
        self.names[value] = fresh
        return fresh

    def assign(self, value: Value, name: str) -> str:
        self.names[value] = name
        return name


def _format_attr_dict(attributes: Dict[str, Attribute],
                      skip: tuple = ()) -> str:
    entries = [
        f"{key} = {value}"
        for key, value in attributes.items()
        if key not in skip
    ]
    if not entries:
        return ""
    return " {" + ", ".join(entries) + "}"


def _print_block(block: Block, scope: _NameScope, lines: List[str],
                 indent: int, index: int) -> None:
    pad = "  " * indent
    if block.arguments:
        args = ", ".join(
            f"{scope.name(a)}: {a.type}" for a in block.arguments
        )
        lines.append(f"{pad}^bb{index}({args}):")
    elif index > 0:
        # Argument-less non-entry blocks still need a label so the textual
        # parser can tell where one block ends and the next begins.
        lines.append(f"{pad}^bb{index}:")
    for op in block.operations:
        _print_op(op, scope, lines, indent)


def _print_region(region: Region, scope: _NameScope, lines: List[str],
                  indent: int) -> None:
    for i, block in enumerate(region.blocks):
        _print_block(block, scope, lines, indent, index=i)


def _print_op(op: Operation, scope: _NameScope, lines: List[str],
              indent: int) -> None:
    pad = "  " * indent

    if op.name == "func.func":
        _print_func(op, scope, lines, indent)
        return

    results = ", ".join(scope.name(r) for r in op.results)
    prefix = f"{results} = " if results else ""

    if op.name == "scf.for":
        lower, upper, step = op.operands[:3]
        body = op.regions[0].entry_block
        iv = scope.name(body.arguments[0])
        header = (
            f"{pad}{prefix}scf.for {iv} = {scope.name(lower)} "
            f"to {scope.name(upper)} step {scope.name(step)} {{"
        )
        lines.append(header)
        for nested in body.operations:
            _print_op(nested, scope, lines, indent + 1)
        lines.append(f"{pad}}}")
        return

    operands = ", ".join(scope.name(v) for v in op.operands)
    attrs = _format_attr_dict(op.attributes)
    types = ""
    if op.operands or op.results:
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        if out_types:
            types = f" : ({in_types}) -> ({out_types})"
        else:
            types = f" : ({in_types})"

    line = f"{pad}{prefix}\"{op.name}\"({operands}){attrs}{types}"
    lines.append(line)
    for region in op.regions:
        lines.append(f"{pad}({{")
        _print_region(region, scope, lines, indent + 1)
        lines.append(f"{pad}}})")


def _print_func(op: Operation, scope: _NameScope, lines: List[str],
                indent: int) -> None:
    pad = "  " * indent
    sym = op.get_attr("sym_name")
    name = sym.value if isinstance(sym, StringAttr) else "<anonymous>"
    func_type = op.get_attr("function_type")
    entry = op.regions[0].entry_block
    arg_strs = []
    for i, argument in enumerate(entry.arguments):
        arg_name = scope.assign(argument, f"%arg{i}")
        arg_strs.append(f"{arg_name}: {argument.type}")
    result_types = ""
    if isinstance(func_type, Attribute):
        ft = getattr(func_type, "value", None)
        if isinstance(ft, FunctionType) and ft.results:
            result_types = " -> " + ", ".join(str(t) for t in ft.results)
    lines.append(f"{pad}func.func @{name}({', '.join(arg_strs)}){result_types} {{")
    for nested in entry.operations:
        _print_op(nested, scope, lines, indent + 1)
    lines.append(f"{pad}}}")


def print_op(op: Operation) -> str:
    scope = _NameScope()
    lines: List[str] = []
    _print_op(op, scope, lines, 0)
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines: List[str] = ["module {"]
    scope = _NameScope()
    for op in module.body.operations:
        _print_op(op, scope, lines, 1)
    lines.append("}")
    return "\n".join(lines)
