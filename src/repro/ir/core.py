"""Core SSA IR object model: values, operations, blocks, regions, modules.

A deliberately small re-creation of MLIR's object model.  Operations are
generic (a name plus operands/results/attributes/regions); dialect modules
provide typed constructors and accessors on top.  Use-def chains are
maintained eagerly so transformation passes can rewrite IR safely.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .attributes import Attribute, attr
from .types import FunctionType, Type


class IRError(RuntimeError):
    """Raised for malformed IR manipulations (detached ops, bad indices...)."""


class Value:
    """An SSA value: either an operation result or a block argument."""

    def __init__(self, type: Type):
        self.type = type
        self.uses: List[Tuple["Operation", int]] = []

    @property
    def owner(self):
        raise NotImplementedError

    def replace_all_uses_with(self, replacement: "Value") -> None:
        if replacement is self:
            return
        for operation, index in list(self.uses):
            operation._set_operand(index, replacement)

    def has_uses(self) -> bool:
        return bool(self.uses)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.type}>"


class OpResult(Value):
    def __init__(self, type: Type, op: "Operation", index: int):
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op


class BlockArgument(Value):
    def __init__(self, type: Type, block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block


class Operation:
    """A generic operation.

    ``name`` is the fully qualified MLIR-style op name (``"scf.for"``,
    ``"accel.send"``).  ``attributes`` maps attribute names to
    :class:`~repro.ir.attributes.Attribute` instances; plain Python values
    are normalized through :func:`~repro.ir.attributes.attr`.
    """

    def __init__(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, object]] = None,
        regions: int = 0,
    ):
        self.name = name
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = {}
        if attributes:
            for key, value in attributes.items():
                self.attributes[key] = attr(value)
        self.regions: List[Region] = [Region(self) for _ in range(regions)]
        self.parent: Optional[Block] = None
        #: Source location (``"<file>:<line>"``) when this op was created by
        #: the textual parser; ``None`` for programmatically built IR.
        self.location: Optional[str] = None
        for operand in operands:
            self._append_operand(operand)

    # -- operands ---------------------------------------------------------
    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(f"operand of {self.name} must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value.uses.append((self, index))

    def _set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.uses.remove((self, index))
        self._operands[index] = value
        value.uses.append((self, index))

    def set_operand(self, index: int, value: Value) -> None:
        """Public operand replacement (bounds-checked)."""
        if not 0 <= index < len(self._operands):
            raise IRError(f"operand index {index} out of range for {self.name}")
        self._set_operand(index, value)

    def drop_all_operands(self) -> None:
        for index, operand in enumerate(self._operands):
            operand.uses.remove((self, index))
        self._operands.clear()

    # -- results ----------------------------------------------------------
    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(f"{self.name} has {len(self.results)} results, not 1")
        return self.results[0]

    # -- attributes ---------------------------------------------------------
    def get_attr(self, key: str, default=None):
        return self.attributes.get(key, default)

    def set_attr(self, key: str, value) -> None:
        self.attributes[key] = attr(value)

    # -- structure ----------------------------------------------------------
    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent is None or self.parent.parent is None:
            return None
        return self.parent.parent.parent

    def block(self) -> "Block":
        if self.parent is None:
            raise IRError(f"{self.name} is detached")
        return self.parent

    def erase(self) -> None:
        """Remove from the parent block and sever all use-def edges."""
        for result in self.results:
            if result.has_uses():
                raise IRError(
                    f"cannot erase {self.name}: result {result.index} "
                    f"still has uses"
                )
        self.drop_all_operands()
        for region in self.regions:
            for blk in list(region.blocks):
                for op in list(blk.operations):
                    op.drop_all_operands()
        if self.parent is not None:
            self.parent.operations.remove(self)
            self.parent = None

    def move_before(self, other: "Operation") -> None:
        """Detach this op and re-insert it right before ``other``."""
        if other.parent is None:
            raise IRError("cannot move before a detached operation")
        if self.parent is not None:
            self.parent.operations.remove(self)
        block = other.parent
        index = block.operations.index(other)
        block.operations.insert(index, self)
        self.parent = block

    def move_after(self, other: "Operation") -> None:
        if other.parent is None:
            raise IRError("cannot move after a detached operation")
        if self.parent is not None:
            self.parent.operations.remove(self)
        block = other.parent
        index = block.operations.index(other)
        block.operations.insert(index + 1, self)
        self.parent = block

    def walk(self, post_order: bool = False) -> Iterator["Operation"]:
        """Yield this op and every nested op (pre-order by default)."""
        if not post_order:
            yield self
        for region in self.regions:
            for blk in region.blocks:
                for op in list(blk.operations):
                    yield from op.walk(post_order)
        if post_order:
            yield self

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation (and nested regions).

        ``value_map`` maps old values to new ones; operands not present in
        the map are kept as-is (they dominate the clone site).
        """
        value_map = value_map if value_map is not None else {}
        cloned = Operation(
            self.name,
            operands=[value_map.get(v, v) for v in self._operands],
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            regions=len(self.regions),
        )
        for old_result, new_result in zip(self.results, cloned.results):
            value_map[old_result] = new_result
        for old_region, new_region in zip(self.regions, cloned.regions):
            for old_block in old_region.blocks:
                new_block = new_region.add_block(
                    [a.type for a in old_block.arguments]
                )
                for old_arg, new_arg in zip(old_block.arguments,
                                            new_block.arguments):
                    value_map[old_arg] = new_arg
                for op in old_block.operations:
                    new_block.append(op.clone(value_map))
        return cloned

    def __repr__(self) -> str:
        return f"<Operation {self.name}>"


class Block:
    """A straight-line sequence of operations with block arguments."""

    def __init__(self, arg_types: Sequence[Type] = (),
                 parent: Optional["Region"] = None):
        self.arguments: List[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self.operations: List[Operation] = []
        self.parent = parent

    def append(self, op: Operation) -> Operation:
        if op.parent is not None:
            raise IRError(f"{op.name} is already attached to a block")
        self.operations.append(op)
        op.parent = self
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        if op.parent is not None:
            raise IRError(f"{op.name} is already attached to a block")
        self.operations.insert(index, op)
        op.parent = self
        return op

    def add_argument(self, type: Type) -> BlockArgument:
        argument = BlockArgument(type, self, len(self.arguments))
        self.arguments.append(argument)
        return argument

    @property
    def terminator(self) -> Optional[Operation]:
        return self.operations[-1] if self.operations else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, parent: Optional[Operation] = None):
        self.blocks: List[Block] = []
        self.parent = parent

    def add_block(self, arg_types: Sequence[Type] = ()) -> Block:
        block = Block(arg_types, parent=self)
        self.blocks.append(block)
        return block

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


# ---------------------------------------------------------------------------
# Structural top-level ops
# ---------------------------------------------------------------------------


class Module:
    """Convenience wrapper around a ``builtin.module`` operation."""

    def __init__(self):
        self.op = Operation("builtin.module", regions=1)
        self.op.regions[0].add_block()

    @property
    def body(self) -> Block:
        return self.op.regions[0].entry_block

    def add_function(self, func_op: Operation) -> Operation:
        if func_op.name != "func.func":
            raise IRError(f"expected a func.func, got {func_op.name}")
        return self.body.append(func_op)

    def functions(self) -> List[Operation]:
        return [op for op in self.body if op.name == "func.func"]

    def lookup(self, symbol: str) -> Operation:
        from .attributes import StringAttr

        for op in self.body:
            name = op.get_attr("sym_name")
            if isinstance(name, StringAttr) and name.value == symbol:
                return op
        raise KeyError(f"no symbol {symbol!r} in module")

    def walk(self) -> Iterator[Operation]:
        yield from self.op.walk()

    def __str__(self) -> str:
        from .printer import print_module

        return print_module(self)


def make_func(
    name: str,
    input_types: Sequence[Type],
    result_types: Sequence[Type] = (),
    arg_names: Sequence[str] = (),
) -> Operation:
    """Create an empty ``func.func`` with an entry block."""
    func_op = Operation(
        "func.func",
        attributes={
            "sym_name": name,
            "function_type": FunctionType(tuple(input_types),
                                          tuple(result_types)),
        },
        regions=1,
    )
    func_op.regions[0].add_block(input_types)
    if arg_names:
        func_op.set_attr("arg_names", list(arg_names))
    return func_op


def func_entry_block(func_op: Operation) -> Block:
    return func_op.regions[0].entry_block


def verify_op(op: Operation,
              verifiers: Optional[Dict[str, Callable[[Operation], None]]] = None
              ) -> None:
    """Run structural checks plus registered per-op verifiers, recursively."""
    from .verifier import verify

    verify(op, verifiers)
