"""Miniature MLIR-style IR core: types, attributes, affine maps, SSA IR."""

from .affine import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineMap,
    AffineParseError,
    parse_affine_map,
)
from .attributes import (
    AffineMapAttr,
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    TypeAttr,
    attr,
    unwrap,
)
from .builder import Builder, InsertionPoint
from .core import (
    Block,
    BlockArgument,
    IRError,
    Module,
    Operation,
    OpResult,
    Region,
    Value,
    func_entry_block,
    make_func,
)
from .parser import (
    ParseError,
    parse_module,
    parse_op,
    register_dialect_op,
    registered_ops,
    roundtrip,
)
from .printer import print_module, print_op
from .types import (
    DYNAMIC,
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    INDEX,
    NONE,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    Type,
    element_type_from_string,
)
from .verifier import VerificationError, register_verifier, verify

__all__ = [
    "AffineBinaryExpr", "AffineConstantExpr", "AffineDimExpr", "AffineExpr",
    "AffineMap", "AffineParseError", "parse_affine_map",
    "AffineMapAttr", "ArrayAttr", "Attribute", "BoolAttr", "DictAttr",
    "FloatAttr", "IntegerAttr", "StringAttr", "TypeAttr", "attr", "unwrap",
    "Builder", "InsertionPoint",
    "Block", "BlockArgument", "IRError", "Module", "Operation", "OpResult",
    "Region", "Value", "func_entry_block", "make_func",
    "ParseError", "parse_module", "parse_op", "register_dialect_op",
    "registered_ops", "roundtrip",
    "print_module", "print_op",
    "DYNAMIC", "F32", "F64", "I1", "I8", "I16", "I32", "I64", "INDEX", "NONE",
    "FloatType", "FunctionType", "IndexType", "IntegerType", "MemRefType",
    "NoneType", "Type", "element_type_from_string",
    "VerificationError", "register_verifier", "verify",
]
