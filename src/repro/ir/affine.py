"""Affine expressions and maps.

Implements the subset of MLIR's affine machinery that AXI4MLIR relies on:

* ``affine_map<(m, n, k) -> (m, k)>`` — indexing maps on ``linalg.generic``
  (paper Fig. 2a) that select which loop indices address each operand;
* ``affine_map<(m, n, k) -> (m, k, n)>`` — the ``permutation_map`` trait
  attribute (paper Fig. 6a) that reorders the generated loop nest;
* ``map<(m, n, k) -> (4, 4, 4)>`` — the ``accel_dim`` trait attribute giving
  the accelerator tile size per dimension.

Expressions form a small AST (dim refs, constants, add/mul/mod/floordiv)
with structural equality, evaluation, and a recursive-descent parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class AffineExpr:
    """Base class of affine expression nodes."""

    def evaluate(self, dims: Sequence[int]) -> int:
        raise NotImplementedError

    def used_dims(self) -> frozenset:
        raise NotImplementedError

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        return AffineBinaryExpr("+", self, _as_expr(other))

    def __mul__(self, other: "AffineExpr") -> "AffineExpr":
        return AffineBinaryExpr("*", self, _as_expr(other))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


def _as_expr(value) -> "AffineExpr":
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineConstantExpr(value)
    raise TypeError(f"cannot convert {value!r} to an affine expression")


@dataclass(frozen=True)
class AffineDimExpr(AffineExpr):
    """A reference to the ``position``-th map dimension."""

    position: int

    def evaluate(self, dims: Sequence[int]) -> int:
        return dims[self.position]

    def used_dims(self) -> frozenset:
        return frozenset({self.position})

    def __str__(self) -> str:
        return f"d{self.position}"


@dataclass(frozen=True)
class AffineConstantExpr(AffineExpr):
    value: int

    def evaluate(self, dims: Sequence[int]) -> int:
        return self.value

    def used_dims(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "mod": lambda a, b: a % b,
    "floordiv": lambda a, b: a // b,
}


@dataclass(frozen=True)
class AffineBinaryExpr(AffineExpr):
    kind: str
    lhs: AffineExpr
    rhs: AffineExpr

    def __post_init__(self) -> None:
        if self.kind not in _BINARY_OPS:
            raise ValueError(f"unknown affine operator {self.kind!r}")

    def evaluate(self, dims: Sequence[int]) -> int:
        return _BINARY_OPS[self.kind](
            self.lhs.evaluate(dims), self.rhs.evaluate(dims)
        )

    def used_dims(self) -> frozenset:
        return self.lhs.used_dims() | self.rhs.used_dims()

    def __str__(self) -> str:
        if self.kind in ("mod", "floordiv"):
            return f"({self.lhs} {self.kind} {self.rhs})"
        return f"({self.lhs} {self.kind} {self.rhs})"


@dataclass(frozen=True)
class AffineMap:
    """``(d0, ..., dN-1) -> (expr0, ..., exprM-1)`` with optional dim names.

    ``dim_names`` preserves the user's spelling (``m, n, k``) for printing;
    it is cosmetic and does not affect equality of the underlying exprs.
    """

    num_dims: int
    results: Tuple[AffineExpr, ...]
    dim_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))
        object.__setattr__(self, "dim_names", tuple(self.dim_names))
        if self.dim_names and len(self.dim_names) != self.num_dims:
            raise ValueError("dim_names length must match num_dims")
        for expr in self.results:
            bad = [d for d in expr.used_dims() if d >= self.num_dims]
            if bad:
                raise ValueError(
                    f"expression {expr} references dims {bad} out of range "
                    f"for a {self.num_dims}-dim map"
                )

    # -- constructors ----------------------------------------------------
    @staticmethod
    def identity(num_dims: int, dim_names: Sequence[str] = ()) -> "AffineMap":
        return AffineMap(
            num_dims,
            tuple(AffineDimExpr(i) for i in range(num_dims)),
            tuple(dim_names),
        )

    @staticmethod
    def permutation(perm: Sequence[int], dim_names: Sequence[str] = ()) -> "AffineMap":
        if sorted(perm) != list(range(len(perm))):
            raise ValueError(f"{list(perm)} is not a permutation")
        return AffineMap(
            len(perm),
            tuple(AffineDimExpr(i) for i in perm),
            tuple(dim_names),
        )

    @staticmethod
    def constant(values: Sequence[int], num_dims: int,
                 dim_names: Sequence[str] = ()) -> "AffineMap":
        return AffineMap(
            num_dims,
            tuple(AffineConstantExpr(v) for v in values),
            tuple(dim_names),
        )

    # -- queries ----------------------------------------------------------
    @property
    def num_results(self) -> int:
        return len(self.results)

    def is_projected_permutation(self) -> bool:
        """True when every result is a distinct dim ref (like (m,n,k)->(m,k))."""
        seen = set()
        for expr in self.results:
            if not isinstance(expr, AffineDimExpr):
                return False
            if expr.position in seen:
                return False
            seen.add(expr.position)
        return True

    def is_permutation(self) -> bool:
        return (
            self.is_projected_permutation()
            and self.num_results == self.num_dims
        )

    def permutation_vector(self) -> Tuple[int, ...]:
        """The dim positions selected by each result, for permutation maps."""
        if not self.is_projected_permutation():
            raise ValueError(f"{self} is not a (projected) permutation")
        return tuple(expr.position for expr in self.results)  # type: ignore[union-attr]

    def evaluate(self, dims: Sequence[int]) -> Tuple[int, ...]:
        if len(dims) != self.num_dims:
            raise ValueError(
                f"map expects {self.num_dims} dims, got {len(dims)}"
            )
        return tuple(expr.evaluate(dims) for expr in self.results)

    def compose_permutation(self, other: "AffineMap") -> "AffineMap":
        """Apply ``other`` (a permutation) to this map's input space."""
        if not other.is_permutation():
            raise ValueError("compose_permutation requires a permutation map")
        perm = other.permutation_vector()
        remap: Dict[int, int] = {old: new for new, old in enumerate(perm)}

        def rewrite(expr: AffineExpr) -> AffineExpr:
            if isinstance(expr, AffineDimExpr):
                return AffineDimExpr(remap[expr.position])
            if isinstance(expr, AffineConstantExpr):
                return expr
            if isinstance(expr, AffineBinaryExpr):
                return AffineBinaryExpr(
                    expr.kind, rewrite(expr.lhs), rewrite(expr.rhs)
                )
            raise TypeError(f"unknown expr {expr!r}")

        names = tuple(other.dim_names[p] for p in perm) if other.dim_names else ()
        return AffineMap(
            self.num_dims,
            tuple(rewrite(e) for e in self.results),
            names or self.dim_names,
        )

    def __str__(self) -> str:
        names = self.dim_names or tuple(f"d{i}" for i in range(self.num_dims))

        def fmt(expr: AffineExpr) -> str:
            if isinstance(expr, AffineDimExpr):
                return names[expr.position]
            if isinstance(expr, AffineConstantExpr):
                return str(expr.value)
            if isinstance(expr, AffineBinaryExpr):
                return f"({fmt(expr.lhs)} {expr.kind} {fmt(expr.rhs)})"
            raise TypeError(f"unknown expr {expr!r}")

        dims = ", ".join(names)
        results = ", ".join(fmt(e) for e in self.results)
        return f"affine_map<({dims}) -> ({results})>"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class AffineParseError(ValueError):
    """Raised when an affine map string is malformed."""


class _Tokenizer:
    """Splits an affine expression body into identifier/number/symbol tokens."""

    SYMBOLS = ("->", "(", ")", ",", "+", "-", "*")

    def __init__(self, text: str):
        self.tokens: List[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if text.startswith("->", i):
                self.tokens.append("->")
                i += 2
                continue
            if ch in "(),+-*":
                self.tokens.append(ch)
                i += 1
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                self.tokens.append(text[i:j])
                i = j
                continue
            if ch.isdigit():
                j = i
                while j < len(text) and text[j].isdigit():
                    j += 1
                self.tokens.append(text[i:j])
                i = j
                continue
            raise AffineParseError(f"unexpected character {ch!r} in {text!r}")
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        if not token:
            raise AffineParseError("unexpected end of affine map")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise AffineParseError(f"expected {token!r}, got {got!r}")


def parse_affine_map(text: str) -> AffineMap:
    """Parse ``affine_map<(m, n, k) -> (m, k)>`` or ``map<...>`` strings.

    Supports ``+``, ``-``, ``*``, ``mod``, ``floordiv`` with conventional
    precedence, integer literals, and named dimensions.
    """
    body = text.strip()
    for prefix in ("affine_map", "map"):
        if body.startswith(prefix):
            body = body[len(prefix):].strip()
            break
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]

    tokens = _Tokenizer(body)
    tokens.expect("(")
    dim_names: List[str] = []
    if tokens.peek() != ")":
        while True:
            name = tokens.next()
            if not (name[0].isalpha() or name[0] == "_"):
                raise AffineParseError(f"bad dimension name {name!r}")
            dim_names.append(name)
            if tokens.peek() == ",":
                tokens.next()
                continue
            break
    tokens.expect(")")
    tokens.expect("->")
    tokens.expect("(")

    dim_index = {name: i for i, name in enumerate(dim_names)}
    if len(dim_index) != len(dim_names):
        raise AffineParseError(f"duplicate dimension names in {text!r}")

    def parse_primary() -> AffineExpr:
        token = tokens.next()
        if token == "(":
            expr = parse_add()
            tokens.expect(")")
            return expr
        if token == "-":
            inner = parse_primary()
            return AffineBinaryExpr("-", AffineConstantExpr(0), inner)
        if token.isdigit():
            return AffineConstantExpr(int(token))
        if token in dim_index:
            return AffineDimExpr(dim_index[token])
        raise AffineParseError(f"unknown identifier {token!r} in {text!r}")

    def parse_mul() -> AffineExpr:
        expr = parse_primary()
        while tokens.peek() in ("*", "mod", "floordiv"):
            op = tokens.next()
            expr = AffineBinaryExpr(op, expr, parse_primary())
        return expr

    def parse_add() -> AffineExpr:
        expr = parse_mul()
        while tokens.peek() in ("+", "-"):
            op = tokens.next()
            expr = AffineBinaryExpr(op, expr, parse_mul())
        return expr

    results: List[AffineExpr] = []
    if tokens.peek() != ")":
        while True:
            results.append(parse_add())
            if tokens.peek() == ",":
                tokens.next()
                continue
            break
    tokens.expect(")")
    if tokens.peek():
        raise AffineParseError(f"trailing tokens in {text!r}")

    return AffineMap(len(dim_names), tuple(results), tuple(dim_names))
