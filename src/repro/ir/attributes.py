"""Attributes: compile-time constant metadata attached to operations.

Mirrors MLIR's attribute system in miniature.  AXI4MLIR's new attributes
(``opcode_map``, ``opcode_flow`` — paper Figs. 7 and 8) live in
:mod:`repro.opcodes` and subclass :class:`Attribute` so they slot into the
same dictionaries as the builtin ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from .affine import AffineMap
from .types import Type


class Attribute:
    """Base class of all attributes."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True)
class IntegerAttr(Attribute):
    value: int
    type: Type = None  # type: ignore[assignment]

    def __str__(self) -> str:
        if self.type is None:
            return str(self.value)
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class FloatAttr(Attribute):
    value: float
    type: Type = None  # type: ignore[assignment]

    def __str__(self) -> str:
        if self.type is None:
            return repr(self.value)
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class BoolAttr(Attribute):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


#: Escapes applied when printing string attributes; the parser inverts them.
_STRING_ESCAPES = (("\\", "\\\\"), ('"', '\\"'), ("\n", "\\n"),
                   ("\t", "\\t"), ("\r", "\\r"))


def escape_string(value: str) -> str:
    """Escape a raw string for the textual IR form."""
    for raw, escaped in _STRING_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def unescape_string(value: str) -> str:
    """Invert :func:`escape_string` (used by the textual parser)."""
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            mapped = {"\\": "\\", '"': '"', "n": "\n",
                      "t": "\t", "r": "\r"}.get(nxt)
            if mapped is not None:
                out.append(mapped)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


@dataclass(frozen=True)
class StringAttr(Attribute):
    value: str

    def __str__(self) -> str:
        return f'"{escape_string(self.value)}"'


@dataclass(frozen=True)
class TypeAttr(Attribute):
    value: Type

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    elements: Tuple[Attribute, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "elements", tuple(self.elements))

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> Attribute:
        return self.elements[index]

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


@dataclass(frozen=True)
class DictAttr(Attribute):
    """An immutable string-keyed attribute dictionary."""

    entries: Tuple[Tuple[str, Attribute], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if isinstance(self.entries, Mapping):
            object.__setattr__(self, "entries", tuple(self.entries.items()))
        else:
            object.__setattr__(self, "entries", tuple(self.entries))

    def __contains__(self, key: str) -> bool:
        return any(k == key for k, _ in self.entries)

    def __getitem__(self, key: str) -> Attribute:
        for k, v in self.entries:
            if k == key:
                return v
        raise KeyError(key)

    def get(self, key: str, default=None):
        for k, v in self.entries:
            if k == key:
                return v
        return default

    def keys(self):
        return [k for k, _ in self.entries]

    def items(self):
        return list(self.entries)

    def __str__(self) -> str:
        body = ", ".join(f"{k} = {v}" for k, v in self.entries)
        return "{" + body + "}"


@dataclass(frozen=True)
class AffineMapAttr(Attribute):
    value: AffineMap

    def __str__(self) -> str:
        return str(self.value)


def attr(value) -> Attribute:
    """Wrap a plain Python value in the matching attribute class.

    The builder API accepts raw ints/strs/bools/lists for convenience; this
    is the single normalization point.
    """
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr(value)
    if isinstance(value, float):
        return FloatAttr(value)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, AffineMap):
        return AffineMapAttr(value)
    if isinstance(value, Type):
        return TypeAttr(value)
    if isinstance(value, (list, tuple)):
        return ArrayAttr(tuple(attr(v) for v in value))
    if isinstance(value, Mapping):
        return DictAttr(tuple((k, attr(v)) for k, v in value.items()))
    raise TypeError(f"cannot convert {value!r} to an attribute")


def unwrap(attribute) -> object:
    """Best-effort inverse of :func:`attr` for leaf attribute kinds."""
    if isinstance(attribute, (IntegerAttr, FloatAttr, BoolAttr, StringAttr,
                              TypeAttr, AffineMapAttr)):
        return attribute.value
    if isinstance(attribute, ArrayAttr):
        return [unwrap(e) for e in attribute.elements]
    if isinstance(attribute, DictAttr):
        return {k: unwrap(v) for k, v in attribute.entries}
    return attribute
