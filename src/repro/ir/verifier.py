"""Structural IR verification.

Checks the invariants the transformation passes rely on:

* every operand of an op is defined before use (dominance within a block,
  or defined in an enclosing region);
* use-def bookkeeping is consistent (every operand records its use, every
  recorded use points back at the operand slot);
* blocks containing a terminator have it in last position;
* per-op verifiers registered by dialects hold.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from .core import Block, BlockArgument, IRError, Operation, OpResult, Value

#: Ops that must terminate their block when present.
TERMINATORS = {"func.return", "scf.yield", "linalg.yield"}

_OP_VERIFIERS: Dict[str, Callable[[Operation], None]] = {}


def register_verifier(op_name: str):
    """Decorator used by dialect modules to attach a per-op verifier."""

    def decorate(fn: Callable[[Operation], None]):
        _OP_VERIFIERS[op_name] = fn
        return fn

    return decorate


class VerificationError(IRError):
    """Raised when IR invariants are violated."""


def op_diag(op: Operation) -> str:
    """``"<op name> at <location>"`` when the op has a source location.

    Parser-constructed operations carry a ``"<file>:<line>"`` location, so
    verifier diagnostics can point back into the ``.mlir`` source.
    """
    location = getattr(op, "location", None)
    if location:
        return f"{op.name} (at {location})"
    return op.name


def _check_use_def(op: Operation) -> None:
    for index, operand in enumerate(op.operands):
        if (op, index) not in operand.uses:
            raise VerificationError(
                f"{op.name}: operand #{index} does not record its use"
            )
    for result in op.results:
        for user, index in result.uses:
            if user.operands[index] is not result:
                raise VerificationError(
                    f"{op.name}: stale use record on result #{result.index}"
                )


def _verify_block(block: Block, visible: Set[Value],
                  verifiers: Dict[str, Callable[[Operation], None]]) -> None:
    visible = set(visible)
    visible.update(block.arguments)
    for position, op in enumerate(block.operations):
        if op.parent is not block:
            raise VerificationError(f"{op.name}: wrong parent block link")
        for index, operand in enumerate(op.operands):
            if operand not in visible:
                raise VerificationError(
                    f"{op.name}: operand #{index} ({operand!r}) is not "
                    f"defined before use"
                )
        _check_use_def(op)
        if op.name in TERMINATORS and position != len(block.operations) - 1:
            raise VerificationError(
                f"{op.name} must be the last operation in its block"
            )
        custom = verifiers.get(op.name)
        if custom is not None:
            custom(op)
        for region in op.regions:
            for nested in region.blocks:
                _verify_block(nested, visible, verifiers)
        visible.update(op.results)


def verify(op: Operation,
           extra_verifiers: Optional[Dict[str, Callable[[Operation], None]]] = None
           ) -> None:
    """Verify ``op`` and everything nested inside it."""
    verifiers = dict(_OP_VERIFIERS)
    if extra_verifiers:
        verifiers.update(extra_verifiers)
    _check_use_def(op)
    custom = verifiers.get(op.name)
    if custom is not None:
        custom(op)
    for region in op.regions:
        for block in region.blocks:
            _verify_block(block, set(), verifiers)


def dominates(a: Operation, b: Operation) -> bool:
    """True when ``a`` executes before ``b`` (same block, or a encloses b)."""
    block_b: Optional[Block] = b.parent
    while block_b is not None:
        if a.parent is block_b:
            ops = block_b.operations
            ancestor = b
            while ancestor.parent is not block_b:
                parent_op = ancestor.parent_op
                if parent_op is None:
                    return False
                ancestor = parent_op
            return ops.index(a) < ops.index(ancestor)
        parent_op = block_b.parent.parent if block_b.parent else None
        block_b = parent_op.parent if parent_op else None
    return False


def defining_op(value: Value) -> Optional[Operation]:
    if isinstance(value, OpResult):
        return value.op
    if isinstance(value, BlockArgument):
        return None
    return None
