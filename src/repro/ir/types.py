"""Type system for the miniature MLIR-style IR.

Types are immutable value objects: two structurally identical types compare
equal and hash equal, mirroring MLIR's uniqued type storage.  The textual
forms follow MLIR syntax (``i32``, ``f32``, ``index``, ``memref<4x4xf32>``)
so printed IR looks like the listings in the AXI4MLIR paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Sentinel used for dynamic dimensions in shapes, printed as ``?``.
DYNAMIC = -1


class Type:
    """Base class of all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True)
class IndexType(Type):
    """Target-width integer used for loop bounds and subscripts."""

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True)
class IntegerType(Type):
    """Fixed-width (signless) integer type, e.g. ``i32``."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"integer width must be positive, got {self.width}")

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE float type, e.g. ``f32`` or ``f64``."""

    width: int

    def __post_init__(self) -> None:
        if self.width not in (16, 32, 64):
            raise ValueError(f"unsupported float width {self.width}")

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class NoneType(Type):
    """Unit type for ops that produce no meaningful value."""

    def __str__(self) -> str:
        return "none"


def _format_dim(dim: int) -> str:
    return "?" if dim == DYNAMIC else str(dim)


@dataclass(frozen=True)
class MemRefType(Type):
    """An N-dimensional strided buffer reference (MLIR ``memref``).

    ``strides`` / ``offset`` describe a strided layout; when ``strides`` is
    ``None`` the layout is the canonical row-major (identity) layout.
    ``offset`` of :data:`DYNAMIC` means the offset is only known at runtime,
    which is what ``memref.subview`` produces.
    """

    shape: Tuple[int, ...]
    element_type: Type
    strides: Optional[Tuple[int, ...]] = None
    offset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(self.shape))
        if self.strides is not None:
            object.__setattr__(self, "strides", tuple(self.strides))
            if len(self.strides) != len(self.shape):
                raise ValueError(
                    f"strides rank {len(self.strides)} does not match "
                    f"shape rank {len(self.shape)}"
                )
        for dim in self.shape:
            if dim < 0 and dim != DYNAMIC:
                raise ValueError(f"invalid dimension {dim}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        return all(dim != DYNAMIC for dim in self.shape)

    def num_elements(self) -> int:
        """Total element count; requires a static shape."""
        if not self.has_static_shape:
            raise ValueError(f"shape of {self} is not static")
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def row_major_strides(self) -> Tuple[int, ...]:
        """Canonical strides for a densely packed row-major layout."""
        if not self.has_static_shape:
            raise ValueError(f"shape of {self} is not static")
        strides = [1] * self.rank
        for axis in range(self.rank - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.shape[axis + 1]
        return tuple(strides)

    def layout_strides(self) -> Tuple[int, ...]:
        """Strides of this memref: explicit ones, or row-major defaults."""
        if self.strides is not None:
            return self.strides
        return self.row_major_strides()

    def is_contiguous_row_major(self) -> bool:
        """True when elements are densely packed in row-major order."""
        return self.strides is None or self.strides == self.row_major_strides()

    def innermost_unit_stride(self) -> bool:
        """True when the last dimension is unit stride (Sec. IV-B copy opt)."""
        strides = self.layout_strides()
        return self.rank == 0 or strides[-1] == 1

    def __str__(self) -> str:
        dims = "".join(f"{_format_dim(d)}x" for d in self.shape)
        if self.strides is None and self.offset == 0:
            return f"memref<{dims}{self.element_type}>"
        strides = ", ".join(_format_dim(s) for s in self.layout_strides())
        offset = _format_dim(self.offset)
        return (
            f"memref<{dims}{self.element_type}, "
            f"strided<[{strides}], offset: {offset}>>"
        )


@dataclass(frozen=True)
class FunctionType(Type):
    """A function signature ``(inputs) -> (results)``."""

    inputs: Tuple[Type, ...] = field(default_factory=tuple)
    results: Tuple[Type, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "results", tuple(self.results))

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        if len(self.results) == 1:
            return f"({ins}) -> {self.results[0]}"
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


# Commonly used singleton-ish instances.  Types are value objects, so these
# are purely a convenience to avoid re-constructing them at every use site.
INDEX = IndexType()
I1 = IntegerType(1)
I8 = IntegerType(8)
I16 = IntegerType(16)
I32 = IntegerType(32)
I64 = IntegerType(64)
F32 = FloatType(32)
F64 = FloatType(64)
NONE = NoneType()


def element_type_from_string(name: str) -> Type:
    """Parse a scalar type name such as ``i32`` or ``f32``.

    Used by the accelerator configuration parser, where the JSON file spells
    the accelerator data type as a string (Fig. 5, ``"data_type": int32``).
    """
    normalized = name.strip().lower()
    aliases = {
        "int8": "i8",
        "int16": "i16",
        "int32": "i32",
        "int64": "i64",
        "float32": "f32",
        "float64": "f64",
        "float": "f32",
        "double": "f64",
    }
    normalized = aliases.get(normalized, normalized)
    if normalized == "index":
        return INDEX
    if normalized.startswith("i") and normalized[1:].isdigit():
        return IntegerType(int(normalized[1:]))
    if normalized.startswith("f") and normalized[1:].isdigit():
        return FloatType(int(normalized[1:]))
    raise ValueError(f"unknown element type {name!r}")
