"""Deterministic fault injection for the degradation ladder.

Every layer of the execution pipeline has a graceful-degradation
fallback (metrics plan -> live metrics plane, synthesis -> recording,
native C -> pure Python, trace replay -> per-tile execution, disk
store -> memory-only, service worker -> restart + requeue).  This
module lets tests and CI *prove* those rungs: a seeded registry
decides, per call site, whether an injected fault fires, and the hook
points in ``store.py``, ``soc/_native.py``, ``execution/metrics.py``,
``execution/model_plan.py``, ``execution/replay.py``,
``execution/synthesize.py`` and the ``service`` package translate a
firing into the exact failure the fallback is designed to absorb
(``model.plan:fail`` degrades fused model-plan steps to the per-kernel
metrics-plan path; ``service.worker:crash`` kills a pool worker
mid-request).  The autotuning sweep adds three sites of its own:
``tuning.journal:io`` fails journal appends (the sweep degrades to
memory-only progress tracking), ``tuning.worker:crash`` kills sweep
workers mid-point, and ``tuning.point:poison`` makes specific points
crash every worker that touches them until quarantined.

Grammar (``REPRO_FAULTS``)::

    REPRO_FAULTS="store.read:io@0.3;native.compile:fail;store.lock:timeout@0.1"

i.e. ``;``-separated ``site:kind[@probability]`` clauses.  Probability
defaults to 1.0 (always fire).  ``lock`` is accepted as an alias for
the registered site name ``store.lock``.  Unknown sites or kinds raise
``FaultConfigError`` at parse time so typos fail loudly instead of
silently injecting nothing.

Determinism: each site draws from its own ``random.Random`` stream
seeded by ``(REPRO_FAULTS_SEED, site)``, so the firing schedule of one
site never depends on how often other sites are consulted, and a fixed
seed reproduces the exact same schedule across runs and platforms.  A
malformed (non-integer) ``REPRO_FAULTS_SEED`` warns once and falls
back to the default seed 0 — like every other ``REPRO_*`` knob, it
degrades instead of erroring.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Dict, Optional, Tuple

#: Env var holding the fault spec (see module docstring for grammar).
FAULTS_ENV = "REPRO_FAULTS"

#: Env var holding the integer seed for the per-site streams.
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Hook points wired into the codebase.  Keys are the canonical site
#: names; values document which failure each kind simulates.
SITES = {
    "store.read": ("io", "corrupt"),
    "store.write": ("io",),
    "store.lock": ("timeout",),
    "native.compile": ("fail",),
    "metrics.plan": ("fail",),
    "model.plan": ("fail",),
    "replay": ("fail",),
    "synth": ("fail",),
    "service.worker": ("crash",),
    "service.rpc": ("io",),
    "service.queue": ("full",),
    "tuning.journal": ("io",),
    "tuning.worker": ("crash",),
    "tuning.point": ("poison",),
}

#: Accepted shorthand for site names.
_ALIASES = {"lock": "store.lock"}


class FaultConfigError(ValueError):
    """REPRO_FAULTS contains an unknown site/kind or a bad probability."""


class _FaultClause:
    __slots__ = ("site", "kind", "probability", "seed", "stream")

    def __init__(self, site: str, kind: str, probability: float,
                 seed: int) -> None:
        self.site = site
        self.kind = kind
        self.probability = probability
        # Kept for keyed_fires(), whose draws are pure functions of
        # (seed, site, key) rather than stream positions.
        self.seed = seed
        # Seed folds in the site name so each site has an independent,
        # reproducible stream regardless of consultation order.
        self.stream = random.Random(f"{seed}:{site}")


def parse_faults(spec: str, seed: int = 0) -> Dict[str, _FaultClause]:
    """Parse a ``REPRO_FAULTS`` spec into per-site clauses."""
    clauses: Dict[str, _FaultClause] = {}
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        head, _, prob_text = clause.partition("@")
        site_text, sep, kind = head.partition(":")
        if not sep or not kind:
            raise FaultConfigError(
                f"fault clause {clause!r} is not of the form "
                f"'site:kind[@probability]'"
            )
        site = _ALIASES.get(site_text.strip(), site_text.strip())
        kind = kind.strip()
        if site not in SITES:
            raise FaultConfigError(
                f"unknown fault site {site!r}; known sites: "
                f"{sorted(SITES)}"
            )
        if kind not in SITES[site]:
            raise FaultConfigError(
                f"site {site!r} does not support kind {kind!r}; "
                f"supported: {list(SITES[site])}"
            )
        if prob_text:
            try:
                probability = float(prob_text)
            except ValueError:
                raise FaultConfigError(
                    f"bad probability {prob_text!r} in {clause!r}"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise FaultConfigError(
                    f"probability {probability} out of [0, 1] in {clause!r}"
                )
        else:
            probability = 1.0
        if site in clauses:
            raise FaultConfigError(f"duplicate clause for site {site!r}")
        clauses[site] = _FaultClause(site, kind, probability, seed)
    return clauses


#: Counters of fired faults per site, surfaced via ``diagnostics()``.
FAULT_COUNTERS: Dict[str, int] = {}

_lock = threading.Lock()
_memo_key: Optional[Tuple[str, str]] = None
_memo_clauses: Dict[str, _FaultClause] = {}


def _fresh_lock_after_fork() -> None:
    # A child forked while another thread held _lock (e.g. a service
    # worker replacement forked mid-dispatch) would inherit it locked
    # and deadlock on its first fires() call.  Stream/memo state is
    # deliberately kept — restarted workers inheriting the parent's
    # pristine streams is part of the determinism contract.
    global _lock
    _lock = threading.Lock()


os.register_at_fork(after_in_child=_fresh_lock_after_fork)


def _active_clauses() -> Dict[str, _FaultClause]:
    """Clauses for the current env, re-read each call.

    Memoized on the (spec, seed) text so monkeypatched env changes take
    effect immediately while the common no-faults path stays cheap.
    """
    global _memo_key, _memo_clauses
    spec = os.environ.get(FAULTS_ENV, "")
    seed_text = os.environ.get(FAULTS_SEED_ENV, "0")
    key = (spec, seed_text)
    if key == _memo_key:
        return _memo_clauses
    try:
        seed = int(seed_text)
    except ValueError:
        # A bad seed degrades (default seed) instead of erroring: the
        # same one-shot-warning contract as every other REPRO_* knob.
        from .envutil import warn_once_malformed_env

        warn_once_malformed_env(FAULTS_SEED_ENV, seed_text, 0)
        seed = 0
    clauses = parse_faults(spec, seed) if spec else {}
    with _lock:
        _memo_key = key
        _memo_clauses = clauses
    return clauses


def faults_active() -> bool:
    """True when any fault clause is configured."""
    return bool(_active_clauses())


def fires(site: str) -> Optional[str]:
    """Consult the registry at a hook point.

    Returns the fault *kind* to inject (e.g. ``"io"``) when the site's
    clause fires this draw, else ``None``.  Each consultation advances
    the site's private stream, so a probability clause yields a
    deterministic firing schedule for a fixed seed.
    """
    clauses = _active_clauses()
    clause = clauses.get(site)
    if clause is None:
        return None
    with _lock:
        if clause.probability < 1.0 and \
                clause.stream.random() >= clause.probability:
            return None
        FAULT_COUNTERS[site] = FAULT_COUNTERS.get(site, 0) + 1
    return clause.kind


def keyed_fires(site: str, key: str) -> Optional[str]:
    """Consult the registry with a caller-supplied identity key.

    Unlike :func:`fires`, the draw is a pure function of
    ``(seed, site, key)`` — no stream position — so the verdict for a
    given key is identical no matter how many times or in what order
    sites were consulted, across processes, and across restarts.  The
    sweep driver keys on point digests: whether a candidate point
    crashes its worker must not depend on where a previous run was
    SIGKILLed, or resumed sweeps could not reproduce an uninterrupted
    run's report bit for bit.  Fired draws are counted; non-firing
    consultations are free and repeatable.
    """
    clause = _active_clauses().get(site)
    if clause is None:
        return None
    draw = random.Random(f"{clause.seed}:{site}:{key}").random()
    if draw >= clause.probability:
        return None
    with _lock:
        FAULT_COUNTERS[site] = FAULT_COUNTERS.get(site, 0) + 1
    return clause.kind


def fault_counters() -> Dict[str, int]:
    """Snapshot of fired-fault counts per site."""
    with _lock:
        return dict(FAULT_COUNTERS)


def merge_fault_counters(delta: Dict[str, int]) -> None:
    """Fold a pool worker's fired-fault deltas into this process."""
    with _lock:
        for site, count in delta.items():
            FAULT_COUNTERS[site] = FAULT_COUNTERS.get(site, 0) + count


def reset_faults() -> None:
    """Clear counters and memoized clauses (tests)."""
    global _memo_key, _memo_clauses
    with _lock:
        FAULT_COUNTERS.clear()
        _memo_key = None
        _memo_clauses = {}


class InjectedFault(RuntimeError):
    """Raised by hook points for kinds simulating hard failures."""
