"""The AXI DMA runtime library (paper Sec. III-A).

``AxiRuntime`` is the call surface the generated host code (and the
hand-written baselines) drive:

* ``dma_init``                    — map the DMA regions, configure the engine
  (one-time cost per application);
* ``send_literal`` / ``send_memref`` / ``send_dim`` / ``send_idx`` —
  ``copy_to_dma_region`` staging calls that advance a byte offset so
  several logical transfers batch into one transaction;
* ``flush_send``                  — ``dma_start_send`` + ``dma_wait_send_completion``;
* ``recv_memref``                 — wait for accelerator output, transfer it,
  and unpack (optionally accumulating) into a memref.

Two knobs model the paper's comparisons: ``specialized_copies`` toggles
the Sec. IV-B MemRef-copy optimization (Fig. 12a vs 12b), and
``call_style`` distinguishes compiler-specialized call overhead from the
generic hand-written driver library (``cpp_MANUAL``).
"""

from __future__ import annotations

from typing import Optional

from ..soc.board import Board
from ..soc.dma_engine import DmaEngine
from .copy import (
    CopyKinds,
    stage_memref_to_region,
    stage_word,
    unstage_region_to_memref,
)
from .memref import MemRefDescriptor

CALL_STYLE_GENERATED = "generated"
CALL_STYLE_MANUAL = "manual"


class AxiRuntime:
    """The DMA library bound to one board (and its accelerator)."""

    def __init__(self, board: Board, specialized_copies: bool = True,
                 call_style: str = CALL_STYLE_GENERATED,
                 copy_style: Optional[str] = None):
        if call_style not in (CALL_STYLE_GENERATED, CALL_STYLE_MANUAL):
            raise ValueError(f"unknown call style {call_style!r}")
        self.board = board
        self.call_style = call_style
        if copy_style is None:
            if call_style == CALL_STYLE_MANUAL:
                copy_style = CopyKinds.MANUAL
            elif specialized_copies:
                copy_style = CopyKinds.SPECIALIZED
            else:
                copy_style = CopyKinds.GENERIC
        if copy_style not in CopyKinds.ALL:
            raise ValueError(f"unknown copy style {copy_style!r}")
        self.copy_style = copy_style
        self.dma: Optional[DmaEngine] = None
        timing = board.timing
        if call_style == CALL_STYLE_GENERATED:
            self._call_cost = (timing.generated_call_cycles,
                               timing.generated_call_branches)
        else:
            self._call_cost = (timing.manual_call_cycles,
                               timing.manual_call_branches)

    # -- internal ----------------------------------------------------------
    def _charge_call(self) -> None:
        self.board.host_work(*self._call_cost)

    def _require_dma(self) -> DmaEngine:
        if self.dma is None:
            raise RuntimeError("dma_init must be called before transfers")
        return self.dma

    # -- library calls ----------------------------------------------------
    def dma_init(self, dma_id: int, input_address: int,
                 input_buffer_size: int, output_address: int,
                 output_buffer_size: int) -> None:
        """Initialize the engine and mmap the staging regions.

        ``input_address``/``output_address`` are recorded for fidelity
        with the paper's interface, but the simulated regions get their
        own addresses from the board's memory allocator.
        """
        del input_address, output_address  # simulated allocator decides
        board = self.board
        self.dma = DmaEngine(dma_id, input_buffer_size, output_buffer_size,
                             board.memory, board.timing)
        board.install_dma(self.dma)
        init_cycles = board.timing.dma_init_s * board.timing.cpu_freq_hz
        board.host_work(init_cycles, branches=init_cycles / 100.0)

    def send_literal(self, literal: int, offset: int) -> int:
        dma = self._require_dma()
        self._charge_call()
        return stage_word(self.board, dma.input_words,
                          dma.input_region.base, offset, literal)

    def send_memref(self, desc: MemRefDescriptor, offset: int) -> int:
        dma = self._require_dma()
        self._charge_call()
        return stage_memref_to_region(
            self.board, desc, dma.input_words, dma.input_region.base,
            offset, self.copy_style,
        )

    def send_dim(self, desc: MemRefDescriptor, dim: int, offset: int) -> int:
        dma = self._require_dma()
        self._charge_call()
        return stage_word(self.board, dma.input_words,
                          dma.input_region.base, offset, desc.sizes[dim])

    def send_idx(self, value: int, offset: int) -> int:
        dma = self._require_dma()
        self._charge_call()
        return stage_word(self.board, dma.input_words,
                          dma.input_region.base, offset, int(value))

    def flush_send(self, offset: int) -> int:
        """Transmit the staged batch ``[0, offset)`` and block on it."""
        if offset == 0:
            return 0
        dma = self._require_dma()
        board = self.board
        timing = board.timing
        board.host_work(timing.dma_start_cycles, timing.dma_start_branches)
        transfer_seconds = dma.start_send(offset, 0)
        board.advance_transfer(transfer_seconds)
        board.counters.dma_bytes_to_accel += offset
        board.counters.dma_transactions += 1
        if board.accelerator is not None:
            accel_cycles = board.accelerator.process_stream()
            board.schedule_accel_cycles(accel_cycles)
        return 0

    def recv_memref(self, desc: MemRefDescriptor, offset: int,
                    accumulate: bool = False) -> None:
        """Wait for output, transfer it, unpack into ``desc``."""
        dma = self._require_dma()
        board = self.board
        timing = board.timing
        self._charge_call()
        board.host_work(timing.dma_start_cycles, timing.dma_start_branches)
        board.wait_for_accelerator()
        length = desc.num_bytes()
        transfer_seconds = dma.start_recv(length, offset)
        board.advance_transfer(transfer_seconds)
        board.counters.dma_bytes_from_accel += length
        board.counters.dma_transactions += 1
        unstage_region_to_memref(
            board, desc, dma.output_words, dma.output_region.base,
            offset, self.copy_style, accumulate,
        )

    def flush_send_nonblocking(self, offset: int) -> int:
        """``dma_start_send`` without the completion wait (Sec. V).

        The engine snapshots the staged bytes at start time, so the host
        may immediately refill the staging region — this models an ideal
        double buffer.  The accelerator sees the data when the burst
        lands; :meth:`wait_sends` (or any receive) synchronizes.
        """
        if offset == 0:
            return 0
        dma = self._require_dma()
        board = self.board
        timing = board.timing
        board.host_work(timing.dma_start_cycles, timing.dma_start_branches)
        transfer_seconds = dma.start_send(offset, 0)
        start = max(board.clock, board.dma_busy_until)
        completion = start + transfer_seconds
        board.dma_busy_until = completion
        board.counters.dma_bytes_to_accel += offset
        board.counters.dma_transactions += 1
        if board.accelerator is not None:
            accel_cycles = board.accelerator.process_stream()
            board.schedule_accel_cycles(accel_cycles,
                                        data_arrival=completion)
        return 0

    def wait_sends(self) -> None:
        """Block until every outstanding non-blocking send completes."""
        self.board.stall_until(self.board.dma_busy_until)

    # -- host-side helpers (loop bookkeeping for emitted code) ------------
    def loop_iteration(self) -> None:
        timing = self.board.timing
        self.board.host_work(timing.loop_iteration_cycles,
                             timing.loop_iteration_branches)

    def subview_setup(self) -> None:
        self.board.host_work(self.board.timing.subview_cycles)

    def make_memref(self, array, name: str = "buffer") -> MemRefDescriptor:
        """Wrap a numpy array, allocating a simulated address range."""
        region = self.board.memory.allocate(
            int(array.nbytes), name
        )
        return MemRefDescriptor.from_numpy(array, region.base, name)
