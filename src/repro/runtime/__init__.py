"""AXI4MLIR runtime: MemRef descriptors, copy kernels, the DMA library.

This is the Python analogue of the paper's "Custom AXI DMA Library"
(Sec. III-A): a small set of calls the generated host code uses to stage
data into DMA regions, start/await transfers, and receive results.  All
calls execute functionally against the simulated board *and* charge the
performance model.
"""

from .memref import MemRefDescriptor
from .copy import CopyKinds
from .dma import AxiRuntime, CALL_STYLE_GENERATED, CALL_STYLE_MANUAL
from .double_buffer import DoubleBufferedRuntime

__all__ = [
    "MemRefDescriptor", "CopyKinds",
    "AxiRuntime", "CALL_STYLE_GENERATED", "CALL_STYLE_MANUAL",
    "DoubleBufferedRuntime",
]
