"""Double-buffered runtime: overlapping transfers with compute (Sec. V).

The paper lists double buffering as ongoing work on top of its
"infrastructure supporting non-blocking transfers and transfer
completion checks".  This runtime drops in for :class:`AxiRuntime`
without recompiling the kernel: every ``flush_send`` becomes
non-blocking (the engine snapshots staged data, so the host refills the
staging buffer immediately), and receives still synchronize through the
accelerator-ready timestamp.  The result is transfer/compute overlap
wherever the flow allows it.
"""

from __future__ import annotations

from .dma import AxiRuntime
from .memref import MemRefDescriptor


class DoubleBufferedRuntime(AxiRuntime):
    """AxiRuntime with non-blocking sends (ideal double buffering)."""

    def flush_send(self, offset: int) -> int:
        return self.flush_send_nonblocking(offset)

    def recv_memref(self, desc: MemRefDescriptor, offset: int,
                    accumulate: bool = False) -> None:
        # Ensure stream ordering: output data follows all queued input.
        self.wait_sends()
        super().recv_memref(desc, offset, accumulate=accumulate)
