"""Staging copy kernels between MemRefs and DMA regions (Sec. IV-B).

Three cost styles are modelled, matching the paper's comparisons:

* :data:`CopyKinds.GENERIC` — the rank-agnostic recursive copy MLIR
  lowers to: one load + store per element, a branch per element, two
  cache references per element.  This is AXI4MLIR's copy *before* the
  Sec. IV-B optimization (Fig. 12a), and remains the fallback whenever
  the innermost stride is not 1.
* :data:`CopyKinds.SPECIALIZED` — when the innermost dimension is
  unit-stride the compiler emits ``std::memcpy`` per contiguous row and
  the platform compiler inlines a vectorized copy: two references per
  cache *line*, one branch per row (Fig. 12b).  The per-row setup makes
  short rows (conv ``fHW == 1`` windows) unprofitable, reproducing the
  Fig. 16 regression.
* :data:`CopyKinds.MANUAL` — the hand-written C++ baseline's staging
  loop over bare arrays: tight pointer arithmetic, cheaper than the
  MemRef-generic path, costlier than inlined memcpy.

All styles are functionally identical (tests assert it); they differ
only in charged costs.

Charging is vectorized: all row start addresses come from one strided
numpy expression over the descriptor (the per-geometry row-offset
pattern is memoized, so repeated identical tile shapes reuse the
precomputed deltas), per-row line counts and cycle/reference/branch
sums are computed analytically, and the cache model sees a single
batched touch per copy.  ``charge_memref_copy_reference`` keeps the
original per-row scalar loop as the cross-checked reference; a property
test asserts both paths produce identical counters.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Tuple

import numpy as np

from .memref import MemRefDescriptor


class CopyKinds:
    GENERIC = "generic"
    SPECIALIZED = "specialized"
    MANUAL = "manual"

    ALL = (GENERIC, SPECIALIZED, MANUAL)


def _row_prefix_indices(sizes: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
    """Iterate over all index prefixes addressing innermost rows."""
    if len(sizes) <= 1:
        yield ()
        return
    yield from np.ndindex(*sizes[:-1])


def _row_geometry(desc: MemRefDescriptor) -> Tuple[int, int]:
    """(row_length_elements, inner_stride) of the innermost dimension."""
    if desc.rank == 0:
        return 1, 1
    return desc.sizes[-1], desc.strides[-1]


@lru_cache(maxsize=4096)
def _row_linear_offsets(outer_sizes: Tuple[int, ...],
                        outer_strides: Tuple[int, ...]) -> np.ndarray:
    """Linear element offsets of every innermost row, in ndindex order.

    Depends only on the tile geometry, so flow sweeps that stage the
    same tile shape thousands of times reuse one precomputed array.
    """
    offsets = np.zeros(1, dtype=np.int64)
    for size, stride in zip(outer_sizes, outer_strides):
        offsets = (offsets[:, None] + stride
                   * np.arange(size, dtype=np.int64)[None, :]).reshape(-1)
    offsets.setflags(write=False)
    return offsets


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``
    without the Python loop: ones everywhere, block-start corrections at
    the boundaries, one cumulative sum.
    """
    keep = counts > 0
    if not keep.all():
        starts, counts = starts[keep], counts[keep]
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = counts.cumsum()
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return out.cumsum()


class _CopyPlan:
    """Precomputed per-geometry deltas for one copy's cache footprint.

    A copy's line addresses are fully determined by the tile geometry
    plus the *line alignments* of its two base addresses, so everything
    shape-dependent — per-row line offsets, the source/destination row
    interleaving, and the analytic line-count sums the specialized path
    charges — is computed once and reused for every copy with the same
    signature (repeated tile geometries are the common case in every
    flow sweep).  Per copy only two integer adds and a gather remain.
    """

    __slots__ = ("src_rel", "dst_rel", "perm", "num_rows",
                 "half_lines", "dst_lines", "num_lines", "num_src",
                 "_buf", "_seqs", "_seq_cap", "_fill_columns")

    def __init__(self, rel_bytes, src_align: int, dst_align: int,
                 span_src: int, row_bytes: int, line: int):
        rb = np.asarray(rel_bytes, dtype=np.int64)
        num_rows = int(rb.size)
        src_first = (src_align + rb) // line
        src_last = (src_align + rb + span_src - 1) // line
        dst_off = dst_align + row_bytes * np.arange(num_rows,
                                                    dtype=np.int64)
        dst_first = dst_off // line
        dst_last = (dst_off + row_bytes - 1) // line
        src_counts = src_last - src_first + 1
        dst_counts = dst_last - dst_first + 1
        # The charged counts use the reference's raw expressions (no
        # empty-range guard), matching bit-for-bit: every per-row term
        # is a multiple of 0.5 far below 2**52, so the vectorized sum
        # is exact and therefore identical to the scalar accumulation.
        half_lines = float(int((src_counts + dst_counts).sum())) / 2.0
        dst_lines = int(dst_counts.sum())
        use_src, use_dst = span_src > 0, row_bytes > 0
        empty = np.empty(0, dtype=np.int64)
        src_rel = _concat_ranges(src_first, src_counts) if use_src \
            else empty
        dst_rel = _concat_ranges(dst_first, dst_counts) if use_dst \
            else empty
        num_src = int(src_rel.size)
        # perm interleaves per-row blocks — src block then dst block —
        # over the [src_rel | dst_rel] concatenation.
        if use_src:
            src_starts = np.concatenate(
                ([0], src_counts.cumsum()[:-1])) if num_rows else empty
        if use_dst:
            dst_starts = num_src + (np.concatenate(
                ([0], dst_counts.cumsum()[:-1])) if num_rows else empty)
        if use_src and use_dst:
            starts = np.empty(2 * num_rows, dtype=np.int64)
            counts = np.empty(2 * num_rows, dtype=np.int64)
            starts[0::2], counts[0::2] = src_starts, src_counts
            starts[1::2], counts[1::2] = dst_starts, dst_counts
        elif use_src:
            starts, counts = src_starts, src_counts
        elif use_dst:
            starts, counts = dst_starts, dst_counts
        else:
            starts = counts = empty
        perm = _concat_ranges(starts, counts)
        self.src_rel = src_rel
        self.dst_rel = dst_rel
        self.perm = perm.astype(np.intp, copy=False)
        self.num_rows = num_rows
        self.num_src = num_src
        self.half_lines = half_lines
        self.dst_lines = dst_lines
        self.num_lines = int(perm.size)
        self._buf = np.empty(num_src + len(dst_rel), dtype=np.int64)
        self._seqs: dict = {}
        # Bound the memo by total stored lines (~2 MB of ints per plan).
        self._seq_cap = max(8, 262144 // max(self.num_lines, 1))

    def line_sequence(self, src_line: int, dst_line: int) -> list:
        """The copy's interleaved line addresses for concrete bases.

        Tile sweeps revisit the same (tile base, staging offset) pairs
        every outer-loop iteration, so the realized sequences are
        memoized per plan (the lists are treated as read-only).
        """
        key = (src_line, dst_line)
        seq = self._seqs.get(key)
        if seq is None:
            if len(self._seqs) >= self._seq_cap:
                self._seqs.clear()
            buf = self._buf
            num_src = self.num_src
            np.add(self.src_rel, src_line, out=buf[:num_src])
            np.add(self.dst_rel, dst_line, out=buf[num_src:])
            seq = buf.take(self.perm).tolist()
            self._seqs[key] = seq
        return seq


_COPY_PLANS: dict = {}


def plan_for_geometry(sizes: Tuple[int, ...], strides: Tuple[int, ...],
                      itemsize: int, src_align: int, dst_align: int,
                      span_src: int, row_bytes: int, line: int) -> _CopyPlan:
    """The memoized copy plan for one tile geometry + base alignments.

    Shared by the per-tile charge path and the trace-replay executor,
    which charges whole runs of identical copies through one plan.
    """
    key = (sizes, strides, itemsize, src_align, dst_align, span_src, line)
    plan = _COPY_PLANS.get(key)
    if plan is None:
        if len(_COPY_PLANS) > 16384:
            _COPY_PLANS.clear()
        rel_bytes = (_row_linear_offsets(sizes[:-1], strides[:-1])
                     * itemsize if sizes else
                     np.zeros(1, dtype=np.int64))
        plan = _CopyPlan(rel_bytes, src_align, dst_align,
                         span_src, row_bytes, line)
        _COPY_PLANS[key] = plan
    return plan


def _copy_plan(desc: MemRefDescriptor, src_start: int, dst_start: int,
               span_src: int, row_bytes: int, line: int) -> _CopyPlan:
    return plan_for_geometry(desc.sizes, desc.strides, desc.itemsize,
                             src_start % line, dst_start % line,
                             span_src, row_bytes, line)


def copy_charge_terms(plan: _CopyPlan, style: str, use_fast: bool,
                      row_length: int, accumulate: bool, timing):
    """Base charge terms of one copy with the given plan.

    Returns ``(cycles, references, branches, extra_cycles,
    extra_references)`` where the extras are the accumulate
    (read-modify-write) surcharges.  This is the single source of the
    cost formulas: :func:`charge_memref_copy` applies the terms per
    copy, the trace-replay executor applies them per plan group —
    keeping the two paths bit-identical by construction.
    """
    if use_fast:
        cycles = (timing.memcpy_row_setup_cycles * plan.num_rows
                  + timing.memcpy_cycles_per_line * plan.half_lines)
        references = timing.memcpy_references_per_line * plan.half_lines
        branches = timing.memcpy_branches_per_row * plan.num_rows
        if accumulate:
            extra_references = (timing.memcpy_references_per_line
                                * plan.dst_lines)
            extra_cycles = 0.5 * row_length * plan.num_rows
        else:
            extra_references = extra_cycles = 0.0
        return cycles, references, branches, extra_cycles, extra_references
    elements = plan.num_rows * row_length
    if style == CopyKinds.MANUAL:
        per_elem = (timing.manual_copy_cycles,
                    timing.manual_copy_references,
                    timing.manual_copy_branches)
    else:
        per_elem = (timing.element_copy_cycles,
                    timing.element_copy_references,
                    timing.element_copy_branches)
    cycles = per_elem[0] * elements
    references = per_elem[1] * elements
    branches = per_elem[2] * elements
    if accumulate:
        extra_references = elements
        extra_cycles = 1.0 * elements
    else:
        extra_references = extra_cycles = 0.0
    return cycles, references, branches, extra_cycles, extra_references


def _require_word_multiple(desc: MemRefDescriptor) -> None:
    if desc.itemsize % 4:
        raise ValueError(
            f"cannot stage dtype {desc.dtype} through the 32-bit DMA "
            f"region: element size {desc.itemsize} is not a multiple of "
            f"4 bytes"
        )


def words_view(desc: MemRefDescriptor) -> np.ndarray:
    """The memref contents flattened to 32-bit words (row-major).

    Elements wider than one word (``i64``/``f64``) stage as multiple
    consecutive words; sub-word element types are rejected.
    """
    _require_word_multiple(desc)
    flat = np.ascontiguousarray(desc.view()).reshape(-1)
    return flat.view(np.uint32)


def charge_memref_copy(board, desc: MemRefDescriptor, region_base: int,
                       offset_bytes: int, style: str,
                       accumulate: bool = False) -> None:
    """Charge cycles/references/branches and touch caches for one copy.

    ``region_base + offset_bytes`` is where the packed data lands in (or
    comes from) the DMA region; the memref-side address pattern follows
    the descriptor's strides.  ``accumulate`` models the read-modify-
    write receive (the destination tile is read as well as written).
    """
    if style not in CopyKinds.ALL:
        raise ValueError(f"unknown copy style {style!r}")
    timing = board.timing
    counters = board.counters
    caches = board.caches
    itemsize = desc.itemsize
    if desc.rank:
        row_length = desc.sizes[-1]
        inner_stride = desc.strides[-1]
        src_start = desc.base_address + desc.offset * itemsize
    else:
        row_length = 1
        inner_stride = 1
        src_start = desc.base_address
    line = caches.line_size

    use_fast_path = style == CopyKinds.SPECIALIZED and inner_stride == 1
    cycles = 0.0
    row_bytes = row_length * itemsize
    dst_start = region_base + offset_bytes
    src_bytes = row_bytes if use_fast_path \
        else ((row_length - 1) * abs(inner_stride) + 1) * itemsize
    plan = _copy_plan(desc, src_start, dst_start, src_bytes, row_bytes,
                      line)
    # The extras model the accumulate read-modify-write (destination
    # rows are read again).  On the non-fast path the cache footprint
    # is the same set of lines the fast path touches; intra-copy reuse
    # of a line always hits (tile << L1).
    base_cycles, references, branches, extra_cycles, extra_references = \
        copy_charge_terms(plan, style, use_fast_path, row_length,
                          accumulate, timing)
    cycles += base_cycles
    counters.cache_references += references
    counters.branch_instructions += branches
    if accumulate:
        counters.cache_references += extra_references
        cycles += extra_cycles

    # One batched touch for the whole copy, preserving the reference
    # path's source-row/destination-row interleaving (rows may conflict
    # in the same cache sets, so order matters for eviction behaviour).
    cycles += caches.touch_lines_batch(
        plan.line_sequence(src_start // line, dst_start // line), counters
    )

    counters.cpu_cycles += cycles
    board.advance_cpu(cycles)


def charge_memref_copy_reference(board, desc: MemRefDescriptor,
                                 region_base: int, offset_bytes: int,
                                 style: str,
                                 accumulate: bool = False) -> None:
    """The original per-row scalar charging loop (reference semantics).

    Retained verbatim so property tests can assert the vectorized
    :func:`charge_memref_copy` produces bit-identical counters.
    """
    if style not in CopyKinds.ALL:
        raise ValueError(f"unknown copy style {style!r}")
    timing = board.timing
    counters = board.counters
    caches = board.caches
    row_length, inner_stride = _row_geometry(desc)
    elements = desc.num_elements()
    itemsize = desc.itemsize
    line = caches.line_size

    use_fast_path = style == CopyKinds.SPECIALIZED and inner_stride == 1
    cycles = 0.0

    if use_fast_path:
        row_bytes = row_length * itemsize
        region_cursor = region_base + offset_bytes
        for prefix in _row_prefix_indices(desc.sizes):
            src_start = desc.element_address(tuple(prefix) + (0,)) \
                if desc.rank else desc.base_address
            lines_src = (src_start + row_bytes - 1) // line - src_start // line + 1
            lines_dst = ((region_cursor + row_bytes - 1) // line
                         - region_cursor // line + 1)
            cycles += (timing.memcpy_row_setup_cycles
                       + timing.memcpy_cycles_per_line
                       * (lines_src + lines_dst) / 2.0)
            counters.cache_references += (
                timing.memcpy_references_per_line * (lines_src + lines_dst) / 2.0
            )
            counters.branch_instructions += timing.memcpy_branches_per_row
            cycles += caches.touch_range(src_start, row_bytes, counters)
            cycles += caches.touch_range(region_cursor, row_bytes, counters)
            if accumulate:
                # Read-modify-write: the destination rows are read again.
                counters.cache_references += (
                    timing.memcpy_references_per_line * lines_dst
                )
                cycles += 0.5 * row_length
            region_cursor += row_bytes
    else:
        if style == CopyKinds.MANUAL:
            per_elem = (timing.manual_copy_cycles,
                        timing.manual_copy_references,
                        timing.manual_copy_branches)
        else:
            per_elem = (timing.element_copy_cycles,
                        timing.element_copy_references,
                        timing.element_copy_branches)
        cycles += per_elem[0] * elements
        counters.cache_references += per_elem[1] * elements
        counters.branch_instructions += per_elem[2] * elements
        if accumulate:
            counters.cache_references += elements
            cycles += 1.0 * elements
        # The cache footprint is the same set of lines the fast path
        # touches; intra-copy reuse of a line always hits (tile << L1).
        region_cursor = region_base + offset_bytes
        row_span_bytes = ((row_length - 1) * abs(inner_stride) + 1) * itemsize
        row_bytes = row_length * itemsize
        for prefix in _row_prefix_indices(desc.sizes):
            src_start = desc.element_address(tuple(prefix) + (0,)) \
                if desc.rank else desc.base_address
            cycles += caches.touch_range(src_start, row_span_bytes, counters)
            cycles += caches.touch_range(region_cursor, row_bytes, counters)
            region_cursor += row_bytes
    counters.cpu_cycles += cycles
    board.advance_cpu(cycles)


def stage_memref_to_region(board, desc: MemRefDescriptor,
                           region_words: np.ndarray, region_base: int,
                           offset_bytes: int, style: str) -> int:
    """Functionally pack a memref tile into the DMA input region.

    Returns the advanced offset.  This is ``copy_to_dma_region`` of the
    paper's library, with the packing layout being plain row-major.
    """
    if offset_bytes % 4:
        raise ValueError(f"offset {offset_bytes} is not word-aligned")
    _require_word_multiple(desc)
    num_bytes = desc.num_bytes()
    start = offset_bytes // 4
    end = start + num_bytes // 4
    if end > region_words.size:
        raise ValueError(
            f"DMA input region overflow: need {end * 4} bytes, "
            f"have {region_words.size * 4}"
        )
    # Pack straight from the strided view into the region: one copy,
    # no contiguous intermediate.
    target = region_words[start:end].view(desc.dtype)
    if desc.rank:
        np.copyto(target.reshape(desc.sizes), desc.view())
    else:
        target[0] = desc.view()
    charge_memref_copy(board, desc, region_base, offset_bytes, style)
    return offset_bytes + num_bytes


def unstage_region_to_memref(board, desc: MemRefDescriptor,
                             region_words: np.ndarray, region_base: int,
                             offset_bytes: int, style: str,
                             accumulate: bool) -> None:
    """Copy received data from the DMA output region back into a memref."""
    if offset_bytes % 4:
        raise ValueError(f"offset {offset_bytes} is not word-aligned")
    _require_word_multiple(desc)
    count_words = desc.num_bytes() // 4
    start = offset_bytes // 4
    end = start + count_words
    if end > region_words.size:
        raise ValueError(
            f"DMA output region underflow: need {end * 4} bytes, "
            f"have {region_words.size * 4}"
        )
    data = region_words[start:end].view(desc.dtype).reshape(desc.sizes)
    view = desc.view()
    if accumulate:
        np.add(view, data, out=view)
    else:
        np.copyto(view, data)
    charge_memref_copy(board, desc, region_base, offset_bytes, style,
                       accumulate=accumulate)


def stage_word(board, region_words: np.ndarray, region_base: int,
               offset_bytes: int, word: int) -> int:
    """Stage one 32-bit literal/dimension/index word."""
    if offset_bytes % 4:
        raise ValueError(f"offset {offset_bytes} is not word-aligned")
    index = offset_bytes // 4
    if index >= region_words.size:
        raise ValueError("DMA input region overflow staging a word")
    region_words[index] = word & 0xFFFFFFFF
    counters = board.counters
    counters.cache_references += 1
    cycles = 2.0 + board.caches.touch_word(
        region_base + offset_bytes, counters
    )
    counters.cpu_cycles += cycles
    board.advance_cpu(cycles)
    return offset_bytes + 4
