"""Staging copy kernels between MemRefs and DMA regions (Sec. IV-B).

Three cost styles are modelled, matching the paper's comparisons:

* :data:`CopyKinds.GENERIC` — the rank-agnostic recursive copy MLIR
  lowers to: one load + store per element, a branch per element, two
  cache references per element.  This is AXI4MLIR's copy *before* the
  Sec. IV-B optimization (Fig. 12a), and remains the fallback whenever
  the innermost stride is not 1.
* :data:`CopyKinds.SPECIALIZED` — when the innermost dimension is
  unit-stride the compiler emits ``std::memcpy`` per contiguous row and
  the platform compiler inlines a vectorized copy: two references per
  cache *line*, one branch per row (Fig. 12b).  The per-row setup makes
  short rows (conv ``fHW == 1`` windows) unprofitable, reproducing the
  Fig. 16 regression.
* :data:`CopyKinds.MANUAL` — the hand-written C++ baseline's staging
  loop over bare arrays: tight pointer arithmetic, cheaper than the
  MemRef-generic path, costlier than inlined memcpy.

All styles are functionally identical (tests assert it); they differ
only in charged costs.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .memref import MemRefDescriptor


class CopyKinds:
    GENERIC = "generic"
    SPECIALIZED = "specialized"
    MANUAL = "manual"

    ALL = (GENERIC, SPECIALIZED, MANUAL)


def _row_prefix_indices(sizes: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
    """Iterate over all index prefixes addressing innermost rows."""
    if len(sizes) <= 1:
        yield ()
        return
    yield from np.ndindex(*sizes[:-1])


def _row_geometry(desc: MemRefDescriptor) -> Tuple[int, int]:
    """(row_length_elements, inner_stride) of the innermost dimension."""
    if desc.rank == 0:
        return 1, 1
    return desc.sizes[-1], desc.strides[-1]


def words_view(desc: MemRefDescriptor) -> np.ndarray:
    """The memref contents flattened to 32-bit words (row-major)."""
    flat = np.ascontiguousarray(desc.view()).reshape(-1)
    return flat.view(np.uint32)


def charge_memref_copy(board, desc: MemRefDescriptor, region_base: int,
                       offset_bytes: int, style: str,
                       accumulate: bool = False) -> None:
    """Charge cycles/references/branches and touch caches for one copy.

    ``region_base + offset_bytes`` is where the packed data lands in (or
    comes from) the DMA region; the memref-side address pattern follows
    the descriptor's strides.  ``accumulate`` models the read-modify-
    write receive (the destination tile is read as well as written).
    """
    if style not in CopyKinds.ALL:
        raise ValueError(f"unknown copy style {style!r}")
    timing = board.timing
    counters = board.counters
    caches = board.caches
    row_length, inner_stride = _row_geometry(desc)
    elements = desc.num_elements()
    itemsize = desc.itemsize
    line = caches.line_size

    use_fast_path = style == CopyKinds.SPECIALIZED and inner_stride == 1
    cycles = 0.0

    if use_fast_path:
        row_bytes = row_length * itemsize
        region_cursor = region_base + offset_bytes
        for prefix in _row_prefix_indices(desc.sizes):
            src_start = desc.element_address(tuple(prefix) + (0,)) \
                if desc.rank else desc.base_address
            lines_src = (src_start + row_bytes - 1) // line - src_start // line + 1
            lines_dst = ((region_cursor + row_bytes - 1) // line
                         - region_cursor // line + 1)
            cycles += (timing.memcpy_row_setup_cycles
                       + timing.memcpy_cycles_per_line
                       * (lines_src + lines_dst) / 2.0)
            counters.cache_references += (
                timing.memcpy_references_per_line * (lines_src + lines_dst) / 2.0
            )
            counters.branch_instructions += timing.memcpy_branches_per_row
            cycles += caches.touch_range(src_start, row_bytes, counters)
            cycles += caches.touch_range(region_cursor, row_bytes, counters)
            if accumulate:
                # Read-modify-write: the destination rows are read again.
                counters.cache_references += (
                    timing.memcpy_references_per_line * lines_dst
                )
                cycles += 0.5 * row_length
            region_cursor += row_bytes
    else:
        if style == CopyKinds.MANUAL:
            per_elem = (timing.manual_copy_cycles,
                        timing.manual_copy_references,
                        timing.manual_copy_branches)
        else:
            per_elem = (timing.element_copy_cycles,
                        timing.element_copy_references,
                        timing.element_copy_branches)
        cycles += per_elem[0] * elements
        counters.cache_references += per_elem[1] * elements
        counters.branch_instructions += per_elem[2] * elements
        if accumulate:
            counters.cache_references += elements
            cycles += 1.0 * elements
        # The cache footprint is the same set of lines the fast path
        # touches; intra-copy reuse of a line always hits (tile << L1).
        region_cursor = region_base + offset_bytes
        row_span_bytes = ((row_length - 1) * abs(inner_stride) + 1) * itemsize
        row_bytes = row_length * itemsize
        for prefix in _row_prefix_indices(desc.sizes):
            src_start = desc.element_address(tuple(prefix) + (0,)) \
                if desc.rank else desc.base_address
            cycles += caches.touch_range(src_start, row_span_bytes, counters)
            cycles += caches.touch_range(region_cursor, row_bytes, counters)
            region_cursor += row_bytes

    counters.cpu_cycles += cycles
    board.advance_cpu(cycles)


def stage_memref_to_region(board, desc: MemRefDescriptor,
                           region_words: np.ndarray, region_base: int,
                           offset_bytes: int, style: str) -> int:
    """Functionally pack a memref tile into the DMA input region.

    Returns the advanced offset.  This is ``copy_to_dma_region`` of the
    paper's library, with the packing layout being plain row-major.
    """
    if offset_bytes % 4:
        raise ValueError(f"offset {offset_bytes} is not word-aligned")
    words = words_view(desc)
    start = offset_bytes // 4
    end = start + words.size
    if end > region_words.size:
        raise ValueError(
            f"DMA input region overflow: need {end * 4} bytes, "
            f"have {region_words.size * 4}"
        )
    region_words[start:end] = words
    charge_memref_copy(board, desc, region_base, offset_bytes, style)
    return offset_bytes + words.size * 4


def unstage_region_to_memref(board, desc: MemRefDescriptor,
                             region_words: np.ndarray, region_base: int,
                             offset_bytes: int, style: str,
                             accumulate: bool) -> None:
    """Copy received data from the DMA output region back into a memref."""
    if offset_bytes % 4:
        raise ValueError(f"offset {offset_bytes} is not word-aligned")
    count = desc.num_elements()
    start = offset_bytes // 4
    end = start + count
    if end > region_words.size:
        raise ValueError(
            f"DMA output region underflow: need {end * 4} bytes, "
            f"have {region_words.size * 4}"
        )
    data = region_words[start:end].view(desc.dtype).reshape(desc.sizes)
    view = desc.view()
    if accumulate:
        view += data
    else:
        view[...] = data
    charge_memref_copy(board, desc, region_base, offset_bytes, style,
                       accumulate=accumulate)


def stage_word(board, region_words: np.ndarray, region_base: int,
               offset_bytes: int, word: int) -> int:
    """Stage one 32-bit literal/dimension/index word."""
    if offset_bytes % 4:
        raise ValueError(f"offset {offset_bytes} is not word-aligned")
    index = offset_bytes // 4
    if index >= region_words.size:
        raise ValueError("DMA input region overflow staging a word")
    region_words[index] = np.uint32(word & 0xFFFFFFFF)
    counters = board.counters
    counters.cache_references += 1
    cycles = 2.0 + board.caches.touch_range(
        region_base + offset_bytes, 4, counters
    )
    counters.cpu_cycles += cycles
    board.advance_cpu(cycles)
    return offset_bytes + 4
