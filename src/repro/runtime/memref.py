"""MemRef descriptors: the Fig. 3 struct, backed by numpy storage.

A descriptor is ``(allocated, aligned, offset, sizes[N], strides[N])``
plus a simulated base address so the cache model sees realistic line
addresses.  Subviews share storage and adjust offset/sizes, exactly like
``memref.subview`` results.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


class MemRefDescriptor:
    """A strided N-d buffer reference over a flat numpy allocation."""

    def __init__(
        self,
        allocated: np.ndarray,
        offset: int,
        sizes: Sequence[int],
        strides: Sequence[int],
        base_address: int = 0,
        name: str = "memref",
    ):
        if allocated.ndim != 1:
            raise ValueError("backing storage must be a flat array")
        self.allocated = allocated
        self.aligned = allocated
        self.offset = int(offset)
        self.sizes: Tuple[int, ...] = tuple(int(s) for s in sizes)
        self.strides: Tuple[int, ...] = tuple(int(s) for s in strides)
        self.base_address = int(base_address)
        self.name = name
        if len(self.sizes) != len(self.strides):
            raise ValueError("sizes/strides rank mismatch")
        # Hot-path metadata as plain attributes (the staging kernels
        # read these once per copied tile).
        self.rank = len(self.sizes)
        self.dtype = allocated.dtype
        self.itemsize = allocated.dtype.itemsize
        total = 1
        for size in self.sizes:
            total *= size
        self._num_elements = total

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def from_numpy(array: np.ndarray, base_address: int = 0,
                   name: str = "memref") -> "MemRefDescriptor":
        """Wrap a (contiguous) numpy array as a rank-N memref."""
        contiguous = np.ascontiguousarray(array)
        flat = contiguous.reshape(-1)
        strides = [1] * contiguous.ndim
        for axis in range(contiguous.ndim - 2, -1, -1):
            strides[axis] = strides[axis + 1] * contiguous.shape[axis + 1]
        return MemRefDescriptor(
            flat, 0, contiguous.shape, strides, base_address, name
        )

    # -- shape queries ----------------------------------------------------------
    def num_elements(self) -> int:
        return self._num_elements

    def num_bytes(self) -> int:
        return self._num_elements * self.itemsize

    def is_contiguous(self) -> bool:
        expected = 1
        for size, stride in zip(reversed(self.sizes), reversed(self.strides)):
            if size != 1 and stride != expected:
                return False
            expected *= size
        return True

    def innermost_unit_stride(self) -> bool:
        return self.rank == 0 or self.strides[-1] == 1

    # -- addressing ---------------------------------------------------------
    def linear_index(self, indices: Sequence[int]) -> int:
        if len(indices) != self.rank:
            raise IndexError(
                f"{self.name}: rank-{self.rank} memref indexed with "
                f"{len(indices)} subscripts"
            )
        linear = self.offset
        for index, size, stride in zip(indices, self.sizes, self.strides):
            if not 0 <= index < size:
                raise IndexError(
                    f"{self.name}: index {index} out of bounds for size {size}"
                )
            linear += index * stride
        return linear

    def element_address(self, indices: Sequence[int]) -> int:
        """Simulated byte address of one element (for the cache model)."""
        return self.base_address + self.linear_index(indices) * self.itemsize

    def row_start_bytes(self, row_indices: Sequence[int]) -> int:
        """Byte address of the first element of an innermost row."""
        return self.element_address(tuple(row_indices) + (0,) * 1) \
            if self.rank else self.base_address

    # -- element access ---------------------------------------------------------
    def load(self, indices: Sequence[int]):
        return self.allocated[self.linear_index(indices)]

    def store(self, value, indices: Sequence[int]) -> None:
        self.allocated[self.linear_index(indices)] = value

    # -- views ------------------------------------------------------------------
    def view(self) -> np.ndarray:
        """A numpy view with this descriptor's shape/strides (no copy)."""
        if self.rank == 0:
            return self.allocated[self.offset:self.offset + 1].reshape(())
        itemsize = self.itemsize
        byte_strides = tuple(s * itemsize for s in self.strides)
        try:
            # Direct construction is several times cheaper than
            # as_strided and views are built once per staged tile.
            return np.ndarray(self.sizes, self.dtype,
                              self.allocated.data, self.offset * itemsize,
                              byte_strides)
        except (ValueError, TypeError):
            # Exotic layouts (e.g. negative strides) fall back to the
            # unchecked construction.
            return np.lib.stride_tricks.as_strided(
                self.allocated[self.offset:],
                shape=self.sizes,
                strides=byte_strides,
                writeable=True,
            )

    def to_numpy(self) -> np.ndarray:
        return np.array(self.view())

    def subview(self, offsets: Sequence[int],
                sizes: Sequence[int],
                strides: Optional[Sequence[int]] = None,
                name: Optional[str] = None) -> "MemRefDescriptor":
        """A window sharing this descriptor's storage."""
        if len(offsets) != self.rank or len(sizes) != self.rank:
            raise IndexError(
                f"{self.name}: subview offsets/sizes must have rank "
                f"{self.rank}"
            )
        relative = tuple(strides) if strides else (1,) * self.rank
        new_offset = self.offset
        new_strides = []
        for offset, rel, size, full, stride in zip(
            offsets, relative, sizes, self.sizes, self.strides
        ):
            if offset < 0 or offset + (size - 1) * rel >= full + rel - 1:
                if offset < 0 or offset + size * rel > full:
                    raise IndexError(
                        f"{self.name}: subview [{offset}:{offset}+{size}*"
                        f"{rel}] exceeds dimension of size {full}"
                    )
            new_offset += offset * stride
            new_strides.append(stride * rel)
        # Subviews are built once per staged tile; skip __init__'s
        # re-validation (the loop above already bounds-checked).
        sub = MemRefDescriptor.__new__(MemRefDescriptor)
        sub.allocated = self.allocated
        sub.aligned = self.allocated
        sub.offset = new_offset
        sub.sizes = tuple(sizes)
        sub.strides = tuple(new_strides)
        sub.base_address = self.base_address
        sub.name = name or f"{self.name}.sub"
        sub.rank = self.rank
        sub.dtype = self.dtype
        sub.itemsize = self.itemsize
        total = 1
        for size in sub.sizes:
            total *= size
        sub._num_elements = total
        return sub

    def __repr__(self) -> str:
        return (
            f"MemRefDescriptor({self.name}, sizes={self.sizes}, "
            f"strides={self.strides}, offset={self.offset}, "
            f"dtype={self.dtype})"
        )
