"""Simulated SoC substrate (the paper's PYNQ-Z2 stand-in).

The paper evaluates on a Zynq-7000: a dual-core ARM Cortex-A9 at 650 MHz
(32 KiB L1D, 512 KiB shared L2) driving FPGA accelerators at 200 MHz over
AXI-Stream DMA.  This package provides a first-order behavioural +
performance model of that system:

* :mod:`repro.soc.perf`     — the three perf counters the paper reports
  (task-clock, cache-references, branch-instructions) plus supporting ones;
* :mod:`repro.soc.timing`   — all timing/cost constants in one place;
* :mod:`repro.soc.cache`    — set-associative LRU caches and a hierarchy;
* :mod:`repro.soc.memory`   — a flat address space with a bump allocator;
* :mod:`repro.soc.axi`      — AXI-Stream FIFO channels;
* :mod:`repro.soc.dma_engine` — the DMA engine with staging regions;
* :mod:`repro.soc.board`    — assembles everything into a `Board`.
"""

from .axi import AxiStreamFifo
from .board import Board, make_pynq_z2
from .cache import Cache, CacheHierarchy
from .dma_engine import DmaEngine
from .memory import MainMemory
from .perf import PerfCounters
from .timing import TimingModel

__all__ = [
    "AxiStreamFifo", "Board", "make_pynq_z2", "Cache", "CacheHierarchy",
    "DmaEngine", "MainMemory", "PerfCounters", "TimingModel",
]
