"""AXI-Stream FIFO channels.

An AXI-Stream moves a variable-length burst of words in FIFO order
(paper Sec. II-B).  For simulation speed the FIFO stores numpy word
*chunks* rather than individual words; the accelerator side consumes a
requested number of words across chunk boundaries, which preserves exact
stream semantics while letting large bursts stay vectorized.
"""

from __future__ import annotations

from typing import List

import numpy as np


class StreamUnderflow(RuntimeError):
    """Raised when an accelerator pops more words than were streamed.

    On real hardware this deadlocks the accelerator; failing loudly in
    simulation turns driver-codegen bugs into test failures.
    """


class AxiStreamFifo:
    """One direction of an AXI-Stream connection (32-bit words)."""

    def __init__(self, name: str = "axis"):
        self.name = name
        self._chunks: List[np.ndarray] = []
        self._available = 0
        self.total_words_pushed = 0
        self.total_transactions = 0

    def __len__(self) -> int:
        return self._available

    def push(self, words: np.ndarray) -> None:
        """Append a burst of 32-bit words."""
        flat = np.ascontiguousarray(words).reshape(-1)
        if flat.dtype.itemsize != 4:
            raise ValueError(
                f"{self.name}: AXI-Stream carries 32-bit words, got "
                f"{flat.dtype}"
            )
        if flat.size == 0:
            return
        self._chunks.append(flat)
        self._available += flat.size
        self.total_words_pushed += flat.size
        self.total_transactions += 1

    def pop(self, count: int, dtype=np.int32) -> np.ndarray:
        """Consume exactly ``count`` words; raises on underflow."""
        if count < 0:
            raise ValueError(f"cannot pop {count} words")
        if count > self._available:
            raise StreamUnderflow(
                f"{self.name}: requested {count} words, only "
                f"{self._available} available"
            )
        if count == 0:
            return np.empty(0, dtype=dtype)
        head = self._chunks[0]
        if head.size >= count:
            # Fast path: the head chunk covers the request (bursts are
            # pushed whole, so this is the overwhelmingly common case).
            if head.size == count:
                self._chunks.pop(0)
                out = head
            else:
                out = head[:count]
                self._chunks[0] = head[count:]
            self._available -= count
            return out.view(dtype) if out.dtype != dtype else out
        parts: List[np.ndarray] = []
        remaining = count
        while remaining:
            head = self._chunks[0]
            if head.size <= remaining:
                parts.append(head)
                remaining -= head.size
                self._chunks.pop(0)
            else:
                parts.append(head[:remaining])
                self._chunks[0] = head[remaining:]
                remaining = 0
        self._available -= count
        if not parts:
            return np.empty(0, dtype=dtype)
        # Single-part pops hand out the chunk (or a slice of it) without
        # copying; consumers treat popped words as read-only.
        out = np.concatenate(parts) if len(parts) > 1 else parts[0]
        return out.view(dtype) if out.dtype != dtype else out

    def pop_word(self) -> int:
        """Consume exactly one word (the opcode-fetch fast path)."""
        if not self._available:
            raise StreamUnderflow(f"{self.name}: empty")
        head = self._chunks[0]
        word = int(head[0])
        if head.size == 1:
            self._chunks.pop(0)
        else:
            self._chunks[0] = head[1:]
        self._available -= 1
        return word

    def peek_word(self) -> int:
        if not self._available:
            raise StreamUnderflow(f"{self.name}: empty")
        return int(self._chunks[0][0])

    def clear(self) -> None:
        self._chunks.clear()
        self._available = 0

    def checkpoint(self):
        """Snapshot for transactional pops (chunk arrays are immutable)."""
        return list(self._chunks), self._available

    def restore(self, snapshot) -> None:
        self._chunks, self._available = list(snapshot[0]), snapshot[1]
