"""Performance counters mirroring the paper's ``perf`` metrics (Sec. IV-B).

The paper profiles three CPU events with the Linux ``perf`` tool:
``task-clock``, ``cache-references``, and ``branch-instructions``.  The
simulation populates the same counters (plus a few internal ones useful
for debugging and ablations).  Counters are plain floats/ints; arithmetic
helpers support the normalized plots (Figs. 12 and 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class PerfCounters:
    """Counter bundle for one measured execution."""

    #: CPU busy cycles (instructions, address arithmetic, copies).
    cpu_cycles: float = 0.0
    #: Cycles the CPU spent blocked on DMA/accelerator completion.
    stall_cycles: float = 0.0
    #: Branch instructions retired (loop back-edges, call/ret, polling).
    branch_instructions: float = 0.0
    #: L1D cache accesses (the ``perf`` ``cache-references`` proxy).
    cache_references: float = 0.0
    #: L1D misses (simulated).
    cache_misses: float = 0.0
    #: L2 accesses / misses (simulated).
    l2_references: float = 0.0
    l2_misses: float = 0.0
    #: DMA traffic in bytes and discrete transactions.
    dma_bytes_to_accel: int = 0
    dma_bytes_from_accel: int = 0
    dma_transactions: int = 0
    #: Accelerator busy cycles (at accelerator frequency).
    accel_cycles: float = 0.0
    #: Wall-clock seconds of the simulated timeline.
    elapsed_seconds: float = 0.0

    def task_clock_ms(self) -> float:
        """The ``perf task-clock`` analogue: time the task occupied a CPU.

        The host driver blocks (busy-waits) on transfers, so stall time
        counts toward task-clock, exactly as on the real board.
        """
        return self.elapsed_seconds * 1e3

    # -- arithmetic -------------------------------------------------------
    # The field-name tuple is hoisted to module level (_COUNTER_FIELDS,
    # below) so snapshot/delta pairs taken around every measurement skip
    # the dataclasses.fields() introspection.
    def add(self, other: "PerfCounters") -> "PerfCounters":
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def copy(self) -> "PerfCounters":
        clone = PerfCounters()
        for name in _COUNTER_FIELDS:
            setattr(clone, name, getattr(self, name))
        return clone

    def delta_since(self, snapshot: "PerfCounters") -> "PerfCounters":
        result = PerfCounters()
        for name in _COUNTER_FIELDS:
            setattr(result, name,
                    getattr(self, name) - getattr(snapshot, name))
        return result

    def normalized_to(self, baseline: "PerfCounters") -> dict:
        """Fractions of a baseline run, as plotted in Figs. 12 and 16."""

        def ratio(value: float, reference: float) -> float:
            return value / reference if reference else 0.0

        return {
            "branch-instructions": ratio(self.branch_instructions,
                                         baseline.branch_instructions),
            "cache-references": ratio(self.cache_references,
                                      baseline.cache_references),
            "task-clock": ratio(self.task_clock_ms(),
                                baseline.task_clock_ms()),
        }

    def as_dict(self) -> dict:
        result = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        result["task_clock_ms"] = self.task_clock_ms()
        return result

    def __str__(self) -> str:
        return (
            f"task-clock {self.task_clock_ms():.3f} ms, "
            f"cache-references {self.cache_references:.0f}, "
            f"branch-instructions {self.branch_instructions:.0f}"
        )


_COUNTER_FIELDS = tuple(f.name for f in fields(PerfCounters))


@dataclass
class PerfReport:
    """A labelled set of counters, used by the benchmark harnesses."""

    label: str
    counters: PerfCounters
    parameters: dict = field(default_factory=dict)

    def row(self) -> dict:
        row = {"label": self.label, **self.parameters}
        row.update(
            task_clock_ms=self.counters.task_clock_ms(),
            cache_references=self.counters.cache_references,
            branch_instructions=self.counters.branch_instructions,
        )
        return row
