"""Flat main-memory model with a bump allocator.

The simulation does not store bytes here — numpy arrays hold the data —
but every host buffer needs a distinct *address range* so the cache
simulator sees realistic line addresses and conflict behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class MemoryRegion:
    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class MainMemory:
    """Bump allocator over a simulated physical address space."""

    #: Default base keeps address 0 unused (catches uninitialized addrs).
    DEFAULT_BASE = 0x1000_0000

    def __init__(self, base: int = DEFAULT_BASE, alignment: int = 64):
        self._next = base
        self.alignment = alignment
        self.regions: List[MemoryRegion] = []
        self._by_name: Dict[str, MemoryRegion] = {}

    def allocate(self, size: int, name: str = "buffer",
                 alignment: int = 0) -> MemoryRegion:
        """Reserve an address range; returns the region descriptor."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        align = alignment or self.alignment
        base = (self._next + align - 1) // align * align
        # Pad between regions by one line to avoid false sharing in the sim.
        self._next = base + size + align
        region = MemoryRegion(name=name, base=base, size=size)
        self.regions.append(region)
        unique = name
        suffix = 1
        while unique in self._by_name:
            suffix += 1
            unique = f"{name}#{suffix}"
        self._by_name[unique] = region
        return region

    def region_named(self, name: str) -> MemoryRegion:
        return self._by_name[name]

    def find_region(self, address: int) -> MemoryRegion:
        for region in self.regions:
            if region.contains(address):
                return region
        raise KeyError(f"address {address:#x} is not in any region")

    def total_allocated(self) -> int:
        return sum(r.size for r in self.regions)
