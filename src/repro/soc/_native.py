"""Optional C-accelerated kernels for the trace-replay hot loops.

Two loops in the replay executor are inherently sequential and dominate
its runtime when executed in Python:

* the set-associative LRU state machine over the run's full cache-line
  stream (integer decisions only), and
* the timeline replay (the exact chain of clock/stall/accelerator
  floating-point operations, where summation order fixes the bits).

Both are tiny, dependency-free state machines, so when a system C
compiler is available they are compiled once per process into a shared
library and driven through :mod:`ctypes`.  The C code performs exactly
the same operations as the Python reference paths (IEEE double
arithmetic with contraction disabled), so results are bit-identical —
property tests exercise both backends.

No compiler, a failed compile, or ``REPRO_NO_NATIVE=1`` simply disables
the fast path; callers fall back to the Python implementations.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
from typing import Optional

_SOURCE = r"""
#include <stdint.h>

/* Fused L1->L2 set-associative LRU pass over a line-address stream.
 * Way arrays hold MRU at slot 0, LRU last; -1 marks an empty slot.
 * codes[i]: 0 = L1 hit, 1 = L1 miss/L2 hit, 2 = L1 miss/L2 miss.
 * Semantics match Cache.access_line / CacheHierarchy.touch_lines_batch
 * exactly (hit moves to MRU; miss inserts at MRU and evicts LRU). */
void lru_hierarchy_batch(const int64_t *lines, int64_t n,
                         int64_t *s1, int64_t ns1, int64_t a1, int64_t m1,
                         int64_t *s2, int64_t ns2, int64_t a2, int64_t m2,
                         uint8_t *codes)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t line = lines[i];
        int64_t set = (m1 >= 0) ? (line & m1) : (line % ns1);
        int64_t *w = s1 + set * a1;
        int found = 0;
        for (int64_t j = 0; j < a1; j++) {
            if (w[j] == line) {
                for (int64_t k = j; k > 0; k--) w[k] = w[k - 1];
                w[0] = line;
                found = 1;
                break;
            }
        }
        if (found) { codes[i] = 0; continue; }
        for (int64_t k = a1 - 1; k > 0; k--) w[k] = w[k - 1];
        w[0] = line;
        set = (m2 >= 0) ? (line & m2) : (line % ns2);
        int64_t *w2 = s2 + set * a2;
        found = 0;
        for (int64_t j = 0; j < a2; j++) {
            if (w2[j] == line) {
                for (int64_t k = j; k > 0; k--) w2[k] = w2[k - 1];
                w2[0] = line;
                found = 1;
                break;
            }
        }
        if (found) { codes[i] = 1; continue; }
        for (int64_t k = a2 - 1; k > 0; k--) w2[k] = w2[k - 1];
        w2[0] = line;
        codes[i] = 2;
    }
}

/* The replay timeline: one entry per charge step, with the exact
 * floating-point operation sequence of the per-tile runtime (see
 * ReplayExecutor._run_timeline for the Python reference). */
void timeline_batch(const int8_t *sync, const double *cyc,
                    const double *brs, const double *rfs,
                    const double *rf2, const double *taux,
                    const double *acaux, int64_t n, int32_t db,
                    double f, double af, double dsc, double dsb,
                    double pollp, double pollb, double *state)
{
    double cpu = state[0], branch = state[1], refs = state[2];
    double stall = state[3], accel = state[4], clock = state[5];
    double ready = state[6], busy = state[7], accel_total = state[8];
    for (int64_t i = 0; i < n; i++) {
        int s = sync[i];
        if (s == 0) {
            double c = cyc[i];
            cpu += c;
            branch += brs[i];
            refs += rfs[i];
            double r2 = rf2[i];
            if (r2 != 0.0) refs += r2;
            clock += c / f;
        } else if (s == 1) {
            cpu += dsc; branch += dsb; clock += dsc / f;
            double t = taux[i];
            double arrival;
            if (db) {
                double start = clock > busy ? clock : busy;
                busy = start + t;
                arrival = busy;
            } else {
                if (t > 0.0) {
                    double ts = clock + t;
                    if (ts > clock) {
                        double sc = (ts - clock) * f;
                        stall += sc;
                        branch += (sc / pollp) * pollb;
                        clock = ts;
                    }
                }
                arrival = clock;
            }
            double ac = acaux[i];
            double s2v = ready > arrival ? ready : arrival;
            ready = s2v + ac / af;
            accel += ac;
            accel_total += ac;
        } else if (s == 2) {
            cpu += dsc; branch += dsb; clock += dsc / f;
            if (ready > clock) {
                double sc = (ready - clock) * f;
                stall += sc;
                branch += (sc / pollp) * pollb;
                clock = ready;
            }
            double t = taux[i];
            if (t > 0.0) {
                double ts = clock + t;
                if (ts > clock) {
                    double sc = (ts - clock) * f;
                    stall += sc;
                    branch += (sc / pollp) * pollb;
                    clock = ts;
                }
            }
        } else {
            if (busy > clock) {
                double sc = (busy - clock) * f;
                stall += sc;
                branch += (sc / pollp) * pollb;
                clock = busy;
            }
        }
    }
    state[0] = cpu; state[1] = branch; state[2] = refs; state[3] = stall;
    state[4] = accel; state[5] = clock; state[6] = ready; state[7] = busy;
    state[8] = accel_total;
}
"""

_lib: Optional[ctypes.CDLL] = None
_tried = False
_build_dir: Optional[str] = None


def _cleanup() -> None:
    if _build_dir is not None:
        shutil.rmtree(_build_dir, ignore_errors=True)


def native_lib() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable."""
    global _lib, _tried, _build_dir
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_NO_NATIVE", "") == "1":
        return None
    compiler = (os.environ.get("CC") or shutil.which("cc")
                or shutil.which("gcc") or shutil.which("clang"))
    if compiler is None:
        return None
    try:
        _build_dir = tempfile.mkdtemp(prefix="repro-native-")
        atexit.register(_cleanup)
        source = os.path.join(_build_dir, "kernels.c")
        shared = os.path.join(_build_dir, "kernels.so")
        with open(source, "w") as handle:
            handle.write(_SOURCE)
        # -ffp-contract=off: no fused multiply-adds — the timeline must
        # round after every operation exactly like the Python runtime.
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-ffp-contract=off",
             source, "-o", shared],
            capture_output=True, timeout=120,
        )
        if result.returncode != 0:
            return None
        lib = ctypes.CDLL(shared)
        i64p = ctypes.POINTER(ctypes.c_int64)
        f64p = ctypes.POINTER(ctypes.c_double)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        i8p = ctypes.POINTER(ctypes.c_int8)
        lib.lru_hierarchy_batch.argtypes = [
            i64p, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            u8p,
        ]
        lib.lru_hierarchy_batch.restype = None
        lib.timeline_batch.argtypes = [
            i8p, f64p, f64p, f64p, f64p, f64p, f64p,
            ctypes.c_int64, ctypes.c_int32,
            ctypes.c_double, ctypes.c_double, ctypes.c_double,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, f64p,
        ]
        lib.timeline_batch.restype = None
        _lib = lib
    except Exception:
        _lib = None
    return _lib
