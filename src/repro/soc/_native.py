"""Optional C-accelerated kernels for the trace-replay hot loops.

Four loops in the trace/replay machinery are inherently sequential and
dominate its runtime when executed in Python:

* the set-associative LRU state machine over the run's full cache-line
  stream (integer decisions only) — the flat per-line variant, the
  event-fused variant (per-event hit/miss tallies accumulated inside
  the same pass, so the first-run timeline+LRU fusion needs no
  Python-side repeat/bincount step), and the descriptor-driven variant
  ``lru_copy_event_stream`` the metrics-plane build uses: it generates
  each copy event's lines on the fly from the alignment-group tables,
  so a whole build is one native call with no materialized line
  stream;
* the timeline replay (the exact chain of clock/stall/accelerator
  floating-point operations, where summation order fixes the bits);
* the accelerator stream decoders (matmul and conv control units):
  per-item state machines that turn the staged word/tile stream into
  instruction records.

All are tiny, dependency-free state machines, so when a system C
compiler is available they are compiled once per process into a shared
library and driven through :mod:`ctypes`.  The C code performs exactly
the same operations as the Python reference paths (IEEE double
arithmetic with contraction disabled), so results are bit-identical —
property tests exercise both backends.

No compiler, a failed compile, or ``REPRO_NO_NATIVE=1`` simply disables
the fast path; callers fall back to the Python implementations.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
import threading as _threading
import warnings
from contextlib import contextmanager as _contextmanager
from typing import Optional

from .. import faults

_SOURCE = r"""
#include <stdint.h>

/* Fused L1->L2 set-associative LRU pass over a line-address stream.
 * Way arrays hold MRU at slot 0, LRU last; -1 marks an empty slot.
 * codes[i]: 0 = L1 hit, 1 = L1 miss/L2 hit, 2 = L1 miss/L2 miss.
 * Semantics match Cache.access_line / CacheHierarchy.touch_lines_batch
 * exactly (hit moves to MRU; miss inserts at MRU and evicts LRU). */
void lru_hierarchy_batch(const int64_t *lines, int64_t n,
                         int64_t *s1, int64_t ns1, int64_t a1, int64_t m1,
                         int64_t *s2, int64_t ns2, int64_t a2, int64_t m2,
                         uint8_t *codes)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t line = lines[i];
        int64_t set = (m1 >= 0) ? (line & m1) : (line % ns1);
        int64_t *w = s1 + set * a1;
        int found = 0;
        for (int64_t j = 0; j < a1; j++) {
            if (w[j] == line) {
                for (int64_t k = j; k > 0; k--) w[k] = w[k - 1];
                w[0] = line;
                found = 1;
                break;
            }
        }
        if (found) { codes[i] = 0; continue; }
        for (int64_t k = a1 - 1; k > 0; k--) w[k] = w[k - 1];
        w[0] = line;
        set = (m2 >= 0) ? (line & m2) : (line % ns2);
        int64_t *w2 = s2 + set * a2;
        found = 0;
        for (int64_t j = 0; j < a2; j++) {
            if (w2[j] == line) {
                for (int64_t k = j; k > 0; k--) w2[k] = w2[k - 1];
                w2[0] = line;
                found = 1;
                break;
            }
        }
        if (found) { codes[i] = 1; continue; }
        for (int64_t k = a2 - 1; k > 0; k--) w2[k] = w2[k - 1];
        w2[0] = line;
        codes[i] = 2;
    }
}

/* Event-fused variant of lru_hierarchy_batch for the metrics-plane
 * build: the same LRU state machine, but hit/miss outcomes are tallied
 * straight into per-event accumulators (bounds[e] .. bounds[e+1] index
 * the chunk's line stream), so the caller needs no per-line code array,
 * no event-id expansion, and no bincount pass. */
void lru_hierarchy_events(const int64_t *lines, const int64_t *bounds,
                          int64_t n_events,
                          int64_t *s1, int64_t ns1, int64_t a1, int64_t m1,
                          int64_t *s2, int64_t ns2, int64_t a2, int64_t m2,
                          int64_t *l1_hits, int64_t *l1_miss,
                          int64_t *l2_miss)
{
    for (int64_t e = 0; e < n_events; e++) {
        int64_t h1 = 0, mi1 = 0, mi2 = 0;
        for (int64_t i = bounds[e]; i < bounds[e + 1]; i++) {
            int64_t line = lines[i];
            int64_t set = (m1 >= 0) ? (line & m1) : (line % ns1);
            int64_t *w = s1 + set * a1;
            int found = 0;
            for (int64_t j = 0; j < a1; j++) {
                if (w[j] == line) {
                    for (int64_t k = j; k > 0; k--) w[k] = w[k - 1];
                    w[0] = line;
                    found = 1;
                    break;
                }
            }
            if (found) { h1++; continue; }
            for (int64_t k = a1 - 1; k > 0; k--) w[k] = w[k - 1];
            w[0] = line;
            mi1++;
            set = (m2 >= 0) ? (line & m2) : (line % ns2);
            int64_t *w2 = s2 + set * a2;
            found = 0;
            for (int64_t j = 0; j < a2; j++) {
                if (w2[j] == line) {
                    for (int64_t k = j; k > 0; k--) w2[k] = w2[k - 1];
                    w2[0] = line;
                    found = 1;
                    break;
                }
            }
            if (found) continue;
            for (int64_t k = a2 - 1; k > 0; k--) w2[k] = w2[k - 1];
            w2[0] = line;
            mi2++;
        }
        l1_hits[e] += h1;
        l1_miss[e] += mi1;
        l2_miss[e] += mi2;
    }
}

/* One-call fused classification of a whole metrics-plane build: the
 * same LRU hierarchy state machine as lru_hierarchy_events, but the
 * line stream is generated on the fly from per-event descriptors
 * instead of being materialized by fill_copy_lines first (no O(lines)
 * temporary, no chunking).  ev_group[e] is the event's alignment-group
 * id (-1 = single staged word, -2 = no cache traffic); ev_row[e]
 * indexes the concatenated src/dst line-start arrays for copy events,
 * or word_lines for word events.  Column j of group g is
 * src+rel[grp_off[g]+j] or dst+rel[grp_off[g]+j] depending on
 * from_dst, exactly like fill_copy_lines, so the touch order (and
 * therefore every LRU decision) is identical to the two-pass path.
 * A touch of the line accessed immediately before is short-circuited
 * to an L1 hit without consulting the way arrays: the previous access
 * left that line at MRU of its L1 set, so the full lookup would count
 * a hit and shift nothing.  Staged-word streams are dominated by such
 * runs (16 consecutive words per 64-byte line). */
void lru_copy_event_stream(const int64_t *ev_group, const int64_t *ev_row,
                           int64_t n_events,
                           const int64_t *grp_off, const int64_t *grp_width,
                           const int64_t *src_rows, const int64_t *dst_rows,
                           const uint8_t *from_dst, const int64_t *rel,
                           const int64_t *word_lines,
                           int64_t *s1, int64_t ns1, int64_t a1, int64_t m1,
                           int64_t *s2, int64_t ns2, int64_t a2, int64_t m2,
                           int64_t *l1_hits, int64_t *l1_miss,
                           int64_t *l2_miss)
{
    int64_t last = INT64_MIN;
    for (int64_t e = 0; e < n_events; e++) {
        int64_t g = ev_group[e];
        if (g == -2) continue;
        int64_t width, off = 0, src = 0, dst = 0;
        if (g == -1) {
            int64_t line = word_lines[ev_row[e]];
            if (line == last) { l1_hits[e] += 1; continue; }
            width = 1;
            src = line;
        } else {
            width = grp_width[g];
            off = grp_off[g];
            src = src_rows[ev_row[e]];
            dst = dst_rows[ev_row[e]];
        }
        int64_t h1 = 0, mi1 = 0, mi2 = 0;
        for (int64_t j = 0; j < width; j++) {
            int64_t line = (g == -1) ? src
                : ((from_dst[off + j] ? dst : src) + rel[off + j]);
            if (line == last) { h1++; continue; }
            last = line;
            int64_t set = (m1 >= 0) ? (line & m1) : (line % ns1);
            int64_t *w = s1 + set * a1;
            int found = 0;
            for (int64_t j1 = 0; j1 < a1; j1++) {
                if (w[j1] == line) {
                    for (int64_t k = j1; k > 0; k--) w[k] = w[k - 1];
                    w[0] = line;
                    found = 1;
                    break;
                }
            }
            if (found) { h1++; continue; }
            for (int64_t k = a1 - 1; k > 0; k--) w[k] = w[k - 1];
            w[0] = line;
            mi1++;
            set = (m2 >= 0) ? (line & m2) : (line % ns2);
            int64_t *w2 = s2 + set * a2;
            found = 0;
            for (int64_t j2 = 0; j2 < a2; j2++) {
                if (w2[j2] == line) {
                    for (int64_t k = j2; k > 0; k--) w2[k] = w2[k - 1];
                    w2[0] = line;
                    found = 1;
                    break;
                }
            }
            if (found) continue;
            for (int64_t k = a2 - 1; k > 0; k--) w2[k] = w2[k - 1];
            w2[0] = line;
            mi2++;
        }
        l1_hits[e] += h1;
        l1_miss[e] += mi1;
        l2_miss[e] += mi2;
    }
}

/* Copy-event line-stream assembly for the metrics-plane build: one
 * copy event covers `width` consecutive slots of the global stream at
 * `slots[i]`; column j of the block is src_lines[i]+rel[j] when
 * from_dst[j] == 0, else dst_lines[i]+rel[j] (rel already permuted to
 * the access order of the copy plan).  Equivalent to the numpy
 * hstack/take/scatter sequence, without the temporaries. */
void fill_copy_lines(const int64_t *slots, int64_t n,
                     const int64_t *src_lines, const int64_t *dst_lines,
                     const uint8_t *from_dst, const int64_t *rel,
                     int64_t width, int64_t *lines)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t *row = lines + slots[i];
        int64_t s = src_lines[i], d = dst_lines[i];
        for (int64_t j = 0; j < width; j++)
            row[j] = (from_dst[j] ? d : s) + rel[j];
    }
}

/* Accelerator stream decoders.  The staged stream arrives as parallel
 * arrays (is_word, value = word value or tile class, index = tile
 * ordinal within its class, cum = word-count prefix sum) plus per-flush
 * item limits.  Both decoders replicate the Python reference loops in
 * trace.py exactly on the success path; any assumption violation
 * returns nonzero and the caller re-runs the Python decoder for the
 * precise diagnostic.  Packed operand refs are (class << 40) | index,
 * matching DecodedPlan.pack. */

#define MICRO_LOAD_A 0
#define MICRO_LOAD_B 1
#define MICRO_COMPUTE 2
#define MICRO_PUSH_C 3
#define MICRO_CONFIGURE 4
#define MICRO_RESET 5

int64_t decode_matmul_stream(
    const uint8_t *is_word, const int64_t *value, const int64_t *index,
    const int64_t *cum, int64_t n_items,
    const int64_t *flush_limits, int64_t n_flush,
    const int64_t *literals, const int64_t *prog_off, const int64_t *prog,
    int64_t n_opcodes,
    int64_t quantum, int64_t capacity, double ops_per_cycle, int64_t tile0,
    int64_t *comp_a, int64_t *comp_b, int64_t *comp_m, int64_t *comp_n,
    int64_t *comp_k, int64_t *comp_push,
    int64_t *push_counts, int64_t *push_flush, int64_t *out_words,
    double *flush_cycles, int64_t *flush_instr,
    int64_t *final_state, int64_t *counts)
{
    int64_t tm = tile0, tn = tile0, tk = tile0;
    int64_t a_src = -1, b_src = -1;
    int64_t n_comp = 0, n_push = 0, pending_start = 0;
    int64_t head = 0;
    int64_t needs[32];
    if (n_opcodes > 32) return 1;
    for (int64_t o = 0; o < n_opcodes; o++) {
        int64_t total = 0;
        for (int64_t p = prog_off[o]; p < prog_off[o + 1]; p++) {
            if (prog[p] == MICRO_LOAD_A) total += tm * tk;
            else if (prog[p] == MICRO_LOAD_B) total += tk * tn;
            else if (prog[p] == MICRO_CONFIGURE) total += 3;
        }
        needs[o] = total;
    }
    for (int64_t f = 0; f < n_flush; f++) {
        int64_t limit = flush_limits[f];
        double cycles = 0.0;
        int64_t instructions = 0;
        while (head < limit) {
            if (!is_word[head]) return 1;
            int64_t lit = value[head];
            int64_t op = -1;
            for (int64_t o = 0; o < n_opcodes; o++)
                if (literals[o] == lit) { op = o; break; }
            if (op < 0) return 1;
            if (cum[limit] - cum[head] - 1 < needs[op]) break;
            head++;
            double oc = 0.0;
            for (int64_t p = prog_off[op]; p < prog_off[op + 1]; p++) {
                int64_t micro = prog[p];
                if (micro == MICRO_LOAD_A) {
                    if (head >= limit || is_word[head]
                            || cum[head + 1] - cum[head] != tm * tk)
                        return 1;
                    a_src = (value[head] << 40) | index[head];
                    head++;
                } else if (micro == MICRO_LOAD_B) {
                    if (head >= limit || is_word[head]
                            || cum[head + 1] - cum[head] != tk * tn)
                        return 1;
                    b_src = (value[head] << 40) | index[head];
                    head++;
                } else if (micro == MICRO_COMPUTE) {
                    comp_a[n_comp] = a_src;
                    comp_b[n_comp] = b_src;
                    comp_m[n_comp] = tm;
                    comp_n[n_comp] = tn;
                    comp_k[n_comp] = tk;
                    comp_push[n_comp] = -1;
                    n_comp++;
                    oc += 2.0 * (double)(tm * tn * tk) / ops_per_cycle;
                } else if (micro == MICRO_PUSH_C) {
                    for (int64_t j = pending_start; j < n_comp; j++)
                        comp_push[j] = n_push;
                    push_counts[n_push] = n_comp - pending_start;
                    push_flush[n_push] = f;
                    out_words[n_push] = tm * tn;
                    n_push++;
                    pending_start = n_comp;
                } else if (micro == MICRO_CONFIGURE) {
                    int64_t cfg[3];
                    for (int64_t c = 0; c < 3; c++) {
                        if (head >= limit || !is_word[head]) return 1;
                        cfg[c] = value[head];
                        head++;
                    }
                    tm = cfg[0]; tn = cfg[1]; tk = cfg[2];
                    if (tm <= 0 || tn <= 0 || tk <= 0) return 1;
                    if (tm % quantum || tn % quantum || tk % quantum)
                        return 1;
                    if (tm * tk > capacity || tk * tn > capacity
                            || tm * tn > capacity)
                        return 1;
                    a_src = -1; b_src = -1;
                    pending_start = n_comp;
                    for (int64_t o = 0; o < n_opcodes; o++) {
                        int64_t total = 0;
                        for (int64_t p = prog_off[o]; p < prog_off[o + 1];
                             p++) {
                            if (prog[p] == MICRO_LOAD_A) total += tm * tk;
                            else if (prog[p] == MICRO_LOAD_B)
                                total += tk * tn;
                            else if (prog[p] == MICRO_CONFIGURE) total += 3;
                        }
                        needs[o] = total;
                    }
                } else if (micro == MICRO_RESET) {
                    a_src = -1; b_src = -1;
                    pending_start = n_comp;
                } else {
                    return 1;
                }
            }
            cycles += oc;
            instructions++;
        }
        flush_cycles[f] = cycles;
        flush_instr[f] = instructions;
    }
    if (head != n_items) return 1;
    if (pending_start != n_comp) return 1;
    final_state[0] = tm; final_state[1] = tn; final_state[2] = tk;
    final_state[3] = a_src; final_state[4] = b_src;
    counts[0] = n_comp; counts[1] = n_push;
    return 0;
}

int64_t decode_conv_stream(
    const uint8_t *is_word, const int64_t *value, const int64_t *index,
    const int64_t *cum, int64_t n_items,
    const int64_t *flush_limits, int64_t n_flush,
    int64_t lit_sico, int64_t lit_sf, int64_t lit_ro,
    int64_t lit_fsize, int64_t lit_ic,
    int64_t max_ic, int64_t max_fhw, int64_t max_slice,
    double ops_per_cycle,
    int64_t *comp_a, int64_t *comp_b, int64_t *comp_k, int64_t *comp_push,
    int64_t *push_counts, int64_t *push_flush, int64_t *out_words,
    double *flush_cycles, int64_t *flush_instr,
    int64_t *final_state, int64_t *counts)
{
    int64_t ic = 1, fhw = 1;
    int64_t filter_src = -1, filter_words = 1;
    int64_t n_comp = 0, n_push = 0, pending_start = 0;
    int64_t head = 0;
    for (int64_t f = 0; f < n_flush; f++) {
        int64_t limit = flush_limits[f];
        double cycles = 0.0;
        int64_t instructions = 0;
        while (head < limit) {
            if (!is_word[head]) return 1;
            int64_t lit = value[head];
            int64_t window = ic * fhw * fhw;
            int64_t needs;
            if (lit == lit_sico || lit == lit_sf) needs = window;
            else if (lit == lit_ro) needs = 0;
            else if (lit == lit_fsize || lit == lit_ic) needs = 1;
            else return 1;
            if (cum[limit] - cum[head] - 1 < needs) break;
            head++;
            if (lit == lit_fsize) {
                if (head >= limit || !is_word[head]) return 1;
                int64_t v = value[head];
                head++;
                if (v < 1 || v > max_fhw) return 1;
                fhw = v;
            } else if (lit == lit_ic) {
                if (head >= limit || !is_word[head]) return 1;
                int64_t v = value[head];
                head++;
                if (v < 1 || v > max_ic) return 1;
                ic = v;
            } else if (lit == lit_sf) {
                if (head >= limit || is_word[head]
                        || cum[head + 1] - cum[head] != window)
                    return 1;
                filter_src = (value[head] << 40) | index[head];
                head++;
                filter_words = window;
                pending_start = n_comp;
            } else if (lit == lit_sico) {
                if (n_comp - pending_start >= max_slice) return 1;
                if (filter_words != window) return 1;
                if (head >= limit || is_word[head]
                        || cum[head + 1] - cum[head] != window)
                    return 1;
                comp_a[n_comp] = (value[head] << 40) | index[head];
                head++;
                comp_b[n_comp] = filter_src;
                comp_k[n_comp] = window;
                comp_push[n_comp] = -1;
                n_comp++;
                cycles += 2.0 * (double)window / ops_per_cycle;
            } else {  /* rO */
                if (pending_start == n_comp) return 1;
                for (int64_t j = pending_start; j < n_comp; j++)
                    comp_push[j] = n_push;
                push_counts[n_push] = n_comp - pending_start;
                push_flush[n_push] = f;
                out_words[n_push] = n_comp - pending_start;
                n_push++;
                pending_start = n_comp;
            }
            instructions++;
        }
        flush_cycles[f] = cycles;
        flush_instr[f] = instructions;
    }
    if (head != n_items) return 1;
    if (pending_start != n_comp) return 1;
    final_state[0] = ic; final_state[1] = fhw; final_state[2] = filter_src;
    counts[0] = n_comp; counts[1] = n_push;
    return 0;
}

/* The replay timeline: one entry per charge step, with the exact
 * floating-point operation sequence of the per-tile runtime (see
 * ReplayExecutor._run_timeline for the Python reference). */
void timeline_batch(const int8_t *sync, const double *cyc,
                    const double *brs, const double *rfs,
                    const double *rf2, const double *taux,
                    const double *acaux, int64_t n, int32_t db,
                    double f, double af, double dsc, double dsb,
                    double pollp, double pollb, double *state)
{
    double cpu = state[0], branch = state[1], refs = state[2];
    double stall = state[3], accel = state[4], clock = state[5];
    double ready = state[6], busy = state[7], accel_total = state[8];
    for (int64_t i = 0; i < n; i++) {
        int s = sync[i];
        if (s == 0) {
            double c = cyc[i];
            cpu += c;
            branch += brs[i];
            refs += rfs[i];
            double r2 = rf2[i];
            if (r2 != 0.0) refs += r2;
            clock += c / f;
        } else if (s == 1) {
            cpu += dsc; branch += dsb; clock += dsc / f;
            double t = taux[i];
            double arrival;
            if (db) {
                double start = clock > busy ? clock : busy;
                busy = start + t;
                arrival = busy;
            } else {
                if (t > 0.0) {
                    double ts = clock + t;
                    if (ts > clock) {
                        double sc = (ts - clock) * f;
                        stall += sc;
                        branch += (sc / pollp) * pollb;
                        clock = ts;
                    }
                }
                arrival = clock;
            }
            double ac = acaux[i];
            double s2v = ready > arrival ? ready : arrival;
            ready = s2v + ac / af;
            accel += ac;
            accel_total += ac;
        } else if (s == 2) {
            cpu += dsc; branch += dsb; clock += dsc / f;
            if (ready > clock) {
                double sc = (ready - clock) * f;
                stall += sc;
                branch += (sc / pollp) * pollb;
                clock = ready;
            }
            double t = taux[i];
            if (t > 0.0) {
                double ts = clock + t;
                if (ts > clock) {
                    double sc = (ts - clock) * f;
                    stall += sc;
                    branch += (sc / pollp) * pollb;
                    clock = ts;
                }
            }
        } else {
            if (busy > clock) {
                double sc = (busy - clock) * f;
                stall += sc;
                branch += (sc / pollp) * pollb;
                clock = busy;
            }
        }
    }
    state[0] = cpu; state[1] = branch; state[2] = refs; state[3] = stall;
    state[4] = accel; state[5] = clock; state[6] = ready; state[7] = busy;
    state[8] = accel_total;
}
"""

_lib: Optional[ctypes.CDLL] = None
_tried = False
_build_dir: Optional[str] = None

#: Scoped suppression (see suspend_native): service workers run
#: requests with the native seam pre-disabled while the server's
#: native circuit breaker is open, without disturbing the probe memo.
_suspension = _threading.local()


def native_suspended() -> bool:
    """True while inside a :func:`suspend_native` scope on this thread."""
    return getattr(_suspension, "count", 0) > 0


@_contextmanager
def suspend_native():
    """Force the pure-Python kernels for the duration of the scope.

    Unlike ``REPRO_NO_NATIVE=1`` this works even after a successful
    probe: the memoized library is simply not handed out.  Results are
    bit-identical either way; only latency changes.
    """
    _suspension.count = getattr(_suspension, "count", 0) + 1
    try:
        yield
    finally:
        _suspension.count -= 1

#: Why the library is (un)available: "untried", "ok", "disabled"
#: (REPRO_NO_NATIVE=1), "no-compiler", "compile-failed", "load-failed",
#: or "fault-injected".  The memo makes degradation one-shot: the
#: failed toolchain probe is never re-attempted (and re-paid) on later
#: calls this process.
_status = "untried"


def native_status() -> dict:
    """Availability + reason memo (surfaced via ``diagnostics()``)."""
    return {"available": _lib is not None, "status": _status}


def _degrade(status: str, detail: str = "") -> None:
    """Record an unexpected degradation and warn exactly once.

    ``REPRO_NO_NATIVE=1`` is a request, not a degradation, so it does
    not warn; everything else does — a silently missing fast path is
    the kind of 10x slowdown users should hear about once.
    """
    global _status
    _status = status
    message = f"native fast path unavailable ({status})"
    if detail:
        message += f": {detail}"
    message += "; falling back to the pure-Python implementations"
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _cleanup() -> None:
    if _build_dir is not None:
        shutil.rmtree(_build_dir, ignore_errors=True)


def native_lib() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable."""
    global _lib, _tried, _build_dir, _status
    if native_suspended():
        return None
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_NO_NATIVE", "") == "1":
        _status = "disabled"
        return None
    if faults.fires("native.compile") == "fail":
        _degrade("fault-injected")
        return None
    compiler = (os.environ.get("CC") or shutil.which("cc")
                or shutil.which("gcc") or shutil.which("clang"))
    if compiler is None:
        _degrade("no-compiler")
        return None
    try:
        _build_dir = tempfile.mkdtemp(prefix="repro-native-")
        atexit.register(_cleanup)
        source = os.path.join(_build_dir, "kernels.c")
        shared = os.path.join(_build_dir, "kernels.so")
        with open(source, "w") as handle:
            handle.write(_SOURCE)
        # -ffp-contract=off: no fused multiply-adds — the timeline must
        # round after every operation exactly like the Python runtime.
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-ffp-contract=off",
             source, "-o", shared],
            capture_output=True, timeout=120,
        )
        if result.returncode != 0:
            _degrade("compile-failed",
                     result.stderr.decode(errors="replace").strip()[:200])
            return None
        lib = ctypes.CDLL(shared)
        i64p = ctypes.POINTER(ctypes.c_int64)
        f64p = ctypes.POINTER(ctypes.c_double)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        i8p = ctypes.POINTER(ctypes.c_int8)
        lib.lru_hierarchy_batch.argtypes = [
            i64p, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            u8p,
        ]
        lib.lru_hierarchy_batch.restype = None
        lib.lru_hierarchy_events.argtypes = [
            i64p, i64p, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            i64p, i64p, i64p,
        ]
        lib.lru_hierarchy_events.restype = None
        lib.lru_copy_event_stream.argtypes = [
            i64p, i64p, ctypes.c_int64,
            i64p, i64p, i64p, i64p, u8p, i64p, i64p,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            i64p, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            i64p, i64p, i64p,
        ]
        lib.lru_copy_event_stream.restype = None
        lib.fill_copy_lines.argtypes = [
            i64p, ctypes.c_int64, i64p, i64p, u8p, i64p,
            ctypes.c_int64, i64p,
        ]
        lib.fill_copy_lines.restype = None
        lib.decode_matmul_stream.argtypes = [
            u8p, i64p, i64p, i64p, ctypes.c_int64,
            i64p, ctypes.c_int64,
            i64p, i64p, i64p, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_double,
            ctypes.c_int64,
            i64p, i64p, i64p, i64p, i64p, i64p,
            i64p, i64p, i64p,
            f64p, i64p,
            i64p, i64p,
        ]
        lib.decode_matmul_stream.restype = ctypes.c_int64
        lib.decode_conv_stream.argtypes = [
            u8p, i64p, i64p, i64p, ctypes.c_int64,
            i64p, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_double,
            i64p, i64p, i64p, i64p,
            i64p, i64p, i64p,
            f64p, i64p,
            i64p, i64p,
        ]
        lib.decode_conv_stream.restype = ctypes.c_int64
        lib.timeline_batch.argtypes = [
            i8p, f64p, f64p, f64p, f64p, f64p, f64p,
            ctypes.c_int64, ctypes.c_int32,
            ctypes.c_double, ctypes.c_double, ctypes.c_double,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, f64p,
        ]
        lib.timeline_batch.restype = None
        _lib = lib
        _status = "ok"
    except Exception as exc:
        _lib = None
        _degrade("load-failed", str(exc)[:200])
    return _lib
