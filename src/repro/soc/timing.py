"""Timing and cost model constants for the simulated SoC.

Every cost used by the simulation lives here so that calibration and
ablation studies can tweak a single object.  Defaults approximate the
paper's PYNQ-Z2 platform:

* Cortex-A9 host at 650 MHz, in-order-ish scalar cost model;
* accelerators synthesized at 200 MHz (Table I);
* AXI-Stream over a 64-bit HP port: 8 bytes per fabric cycle (~1.6 GB/s);
* DMA transactions with driver (MMIO) setup cost on the CPU side and a
  fixed engine latency;
* one-time initialization cost for ``dma_init`` — ``mmap`` of the DMA
  regions plus engine configuration — which is what makes offload
  irrelevant for small problems (Fig. 10).

The copy-kernel costs encode the Sec. IV-B observation: the generic
MemRef copy is a recursive, element-at-a-time loop (2 cache references
and a branch per element), while the specialized ``memcpy`` path moves
whole cache lines with vector registers (2 references per line, one
branch per row).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimingModel:
    # -- clocks ----------------------------------------------------------
    cpu_freq_hz: float = 650e6
    accel_freq_hz: float = 200e6

    # -- cache latencies (extra cycles on top of the access itself) ------
    l1_hit_extra_cycles: float = 0.0
    l1_miss_penalty_cycles: float = 10.0
    l2_miss_penalty_cycles: float = 80.0

    # -- generic (recursive, strided) element-wise MemRef copy ------------
    element_copy_cycles: float = 6.0
    element_copy_references: float = 2.0
    element_copy_branches: float = 1.0

    # -- specialized contiguous (inlined memcpy) MemRef copy ---------------
    memcpy_cycles_per_line: float = 4.0
    memcpy_references_per_line: float = 2.0
    memcpy_branches_per_row: float = 1.0
    memcpy_row_setup_cycles: float = 4.0

    # -- hand-written raw-array copy (the cpp_MANUAL staging loop) --------
    # A tight C loop over bare pointers: cheaper per element than the
    # rank-generic MemRef copy, costlier than the vectorized memcpy path.
    manual_copy_cycles: float = 4.0
    manual_copy_references: float = 1.2
    manual_copy_branches: float = 0.5

    # -- runtime library call overheads -----------------------------------
    #: Compiler-specialized call: constants folded, no stride checks.
    generated_call_cycles: float = 8.0
    generated_call_branches: float = 1.0
    #: Generic hand-written driver call: argument marshalling, dimension
    #: and stride checks (the SECDA-TFLite-style library path).
    manual_call_cycles: float = 30.0
    manual_call_branches: float = 4.0

    # -- loop bookkeeping --------------------------------------------------
    loop_iteration_cycles: float = 2.0
    loop_iteration_branches: float = 1.0
    subview_cycles: float = 8.0

    # -- DMA engine --------------------------------------------------------
    #: CPU cycles to program one DMA transaction (MMIO writes + barrier).
    dma_start_cycles: float = 150.0
    dma_start_branches: float = 2.0
    #: Fixed engine latency per transaction, seconds.
    dma_latency_s: float = 0.2e-6
    #: AXI-Stream payload width in bytes per accelerator cycle (the
    #: Zynq HP ports are 64-bit: 8 bytes/cycle at the fabric clock).
    axi_bytes_per_cycle: float = 8.0
    #: One-time cost of accel.dma_init (mmap + engine setup), seconds.
    dma_init_s: float = 0.6e-3
    #: Busy-wait poll period while blocked, in CPU cycles.
    poll_period_cycles: float = 30.0
    poll_branches: float = 1.0

    # -- CPU reference kernels (analytic, per multiply-accumulate) --------
    cpu_cycles_per_mac: float = 3.5
    cpu_references_per_mac: float = 1.0
    cpu_branches_per_mac: float = 0.5
    #: Fraction of CPU-kernel references that miss L1 / L2 when the
    #: working set exceeds the respective capacity.
    cpu_l1_miss_fraction: float = 0.06
    cpu_l2_miss_fraction: float = 0.25

    # -- derived helpers ----------------------------------------------------
    def cpu_seconds(self, cycles: float) -> float:
        return cycles / self.cpu_freq_hz

    def accel_seconds(self, cycles: float) -> float:
        return cycles / self.accel_freq_hz

    def axi_transfer_seconds(self, num_bytes: int) -> float:
        cycles = num_bytes / self.axi_bytes_per_cycle
        return self.accel_seconds(cycles)


#: Table I throughputs: accelerator tile size -> arithmetic OPs per cycle.
TABLE1_OPS_PER_CYCLE = {4: 10, 8: 60, 16: 112}


def matmul_ops_per_cycle(size: int) -> float:
    """OPs/cycle for a (possibly non-Table-I) tile size.

    Table I sizes use the published numbers; other sizes interpolate with
    the same trend (throughput grows a bit below quadratically with size).
    """
    if size in TABLE1_OPS_PER_CYCLE:
        return float(TABLE1_OPS_PER_CYCLE[size])
    # Fit through (4,10), (8,60), (16,112): piecewise-linear in log2(size).
    import math

    points = sorted(TABLE1_OPS_PER_CYCLE.items())
    if size <= points[0][0]:
        return points[0][1] * (size / points[0][0]) ** 2
    if size >= points[-1][0]:
        return points[-1][1] * (size / points[-1][0]) ** 2
    for (s0, t0), (s1, t1) in zip(points, points[1:]):
        if s0 <= size <= s1:
            frac = (math.log2(size) - math.log2(s0)) / (
                math.log2(s1) - math.log2(s0)
            )
            return t0 + frac * (t1 - t0)
    raise AssertionError("unreachable")
