"""DMA engine model: staging regions + transfers to/from an accelerator.

The host CPU programs the engine via the runtime library; the engine
moves bytes between its memory-mapped regions and the accelerator's
AXI-Stream FIFOs.  Timing: each transaction costs CPU setup cycles
(charged by the runtime), a fixed engine latency, and the stream
transfer time at the AXI payload bandwidth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .memory import MainMemory, MemoryRegion
from .timing import TimingModel


class DmaEngine:
    """One DMA engine bound to one accelerator's in/out streams."""

    def __init__(self, dma_id: int, input_size: int, output_size: int,
                 memory: MainMemory, timing: TimingModel):
        self.dma_id = dma_id
        self.timing = timing
        if input_size % 4 or output_size % 4:
            raise ValueError("DMA region sizes must be word multiples")
        self.input_region: MemoryRegion = memory.allocate(
            input_size, f"dma{dma_id}.in"
        )
        self.output_region: MemoryRegion = memory.allocate(
            output_size, f"dma{dma_id}.out"
        )
        self.input_words = np.zeros(input_size // 4, dtype=np.uint32)
        self.output_words = np.zeros(output_size // 4, dtype=np.uint32)
        self.accelerator = None
        self.transactions = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def attach(self, accelerator) -> None:
        self.accelerator = accelerator

    # -- send path ---------------------------------------------------------
    def start_send(self, length_bytes: int, offset_bytes: int = 0) -> float:
        """Push ``length_bytes`` from the input region into the stream.

        Returns the transfer time in seconds (the caller blocks on it,
        mirroring ``dma_wait_send_completion``).
        """
        if self.accelerator is None:
            raise RuntimeError("DMA engine has no attached accelerator")
        if length_bytes % 4 or offset_bytes % 4:
            raise ValueError("DMA transfers are word-aligned")
        start = offset_bytes // 4
        count = length_bytes // 4
        if start + count > self.input_words.size:
            raise ValueError(
                f"send of {length_bytes}B at offset {offset_bytes} exceeds "
                f"input region of {self.input_words.size * 4}B"
            )
        if count == 0:
            return 0.0
        burst = self.input_words[start:start + count].copy().view(np.int32)
        self.accelerator.in_fifo.push(burst)
        self.transactions += 1
        self.bytes_sent += length_bytes
        return self.timing.dma_latency_s + self.timing.axi_transfer_seconds(
            length_bytes
        )

    # -- receive path -----------------------------------------------------
    def available_output_words(self) -> int:
        if self.accelerator is None:
            return 0
        return len(self.accelerator.out_fifo)

    def start_recv(self, length_bytes: int, offset_bytes: int = 0) -> float:
        """Pull ``length_bytes`` from the stream into the output region."""
        if self.accelerator is None:
            raise RuntimeError("DMA engine has no attached accelerator")
        if length_bytes % 4 or offset_bytes % 4:
            raise ValueError("DMA transfers are word-aligned")
        start = offset_bytes // 4
        count = length_bytes // 4
        if start + count > self.output_words.size:
            raise ValueError(
                f"recv of {length_bytes}B at offset {offset_bytes} exceeds "
                f"output region of {self.output_words.size * 4}B"
            )
        if count == 0:
            return 0.0
        words = self.accelerator.out_fifo.pop(count, dtype=np.uint32)
        self.output_words[start:start + count] = words
        self.transactions += 1
        self.bytes_received += length_bytes
        return self.timing.dma_latency_s + self.timing.axi_transfer_seconds(
            length_bytes
        )
