"""The simulated board: CPU + caches + memory + DMA + accelerator.

``Board`` owns the global timeline (``clock`` in seconds) and the
:class:`~repro.soc.perf.PerfCounters`.  Host work advances the clock at
the CPU frequency; DMA transfers and accelerator compute advance it via
the blocking runtime calls, with busy-wait polling charged while the CPU
is stalled (that is what the paper's ``task-clock`` measures).
"""

from __future__ import annotations

from typing import Optional

from .cache import CacheHierarchy, hierarchy_from_cpu_info
from .memory import MainMemory
from .perf import PerfCounters
from .timing import TimingModel


class Board:
    """One simulated SoC instance."""

    def __init__(self, timing: Optional[TimingModel] = None,
                 caches: Optional[CacheHierarchy] = None,
                 memory: Optional[MainMemory] = None):
        self.timing = timing or TimingModel()
        self.memory = memory or MainMemory()
        self.caches = caches or CacheHierarchy(self.timing)
        self.counters = PerfCounters()
        self.clock = 0.0
        self.accelerator = None
        self.dma = None
        #: Timestamp at which the accelerator finishes its queued work.
        self.accel_ready_at = 0.0
        #: Timestamp at which the DMA engine finishes its queued sends
        #: (used by non-blocking transfers / double buffering).
        self.dma_busy_until = 0.0

    # -- timeline ---------------------------------------------------------
    # ``counters.elapsed_seconds`` mirrors ``clock`` but is only synced
    # when a measurement is taken (snapshot/measure_since) — the wall
    # clock advances millions of times per run and writing the mirror
    # on every step showed up in profiles.

    def advance_cpu(self, cycles: float) -> None:
        """Advance the wall clock by CPU-busy cycles (counters unchanged)."""
        self.clock += cycles / self.timing.cpu_freq_hz

    def host_work(self, cycles: float, branches: float = 0.0,
                  references: float = 0.0) -> None:
        """Charge plain host instructions (loop bookkeeping, address math)."""
        counters = self.counters
        counters.cpu_cycles += cycles
        counters.branch_instructions += branches
        counters.cache_references += references
        self.clock += cycles / self.timing.cpu_freq_hz

    def stall_until(self, timestamp: float) -> None:
        """Busy-wait until ``timestamp``, charging poll loop costs."""
        if timestamp <= self.clock:
            return
        stall_seconds = timestamp - self.clock
        stall_cycles = stall_seconds * self.timing.cpu_freq_hz
        polls = stall_cycles / self.timing.poll_period_cycles
        self.counters.stall_cycles += stall_cycles
        self.counters.branch_instructions += polls * self.timing.poll_branches
        self.clock = timestamp

    def advance_transfer(self, seconds: float) -> None:
        """Block the CPU for a DMA transfer (send/recv wait)."""
        if seconds <= 0:
            return
        self.stall_until(self.clock + seconds)

    # -- attachments -----------------------------------------------------------
    def attach_accelerator(self, accelerator) -> None:
        self.accelerator = accelerator
        if self.dma is not None:
            self.dma.attach(accelerator)

    def install_dma(self, dma) -> None:
        self.dma = dma
        if self.accelerator is not None:
            dma.attach(self.accelerator)

    # -- accelerator scheduling ---------------------------------------------
    def schedule_accel_cycles(self, cycles: float,
                              data_arrival: Optional[float] = None) -> None:
        """Queue accelerator compute after the just-delivered data.

        ``data_arrival`` defaults to "now"; non-blocking transfers pass
        the future completion time of the in-flight DMA burst.
        """
        start = max(self.accel_ready_at,
                    data_arrival if data_arrival is not None else self.clock)
        self.accel_ready_at = start + cycles / self.timing.accel_freq_hz
        self.counters.accel_cycles += cycles

    def wait_for_accelerator(self) -> None:
        self.stall_until(self.accel_ready_at)

    # -- measurement ----------------------------------------------------------
    def sync_elapsed(self) -> None:
        """Bring ``counters.elapsed_seconds`` up to date with the clock."""
        self.counters.elapsed_seconds = self.clock

    def snapshot(self) -> PerfCounters:
        self.sync_elapsed()
        return self.counters.copy()

    def measure_since(self, snapshot: PerfCounters) -> PerfCounters:
        self.sync_elapsed()
        return self.counters.delta_since(snapshot)

    def reset_measurement(self) -> None:
        self.counters = PerfCounters()
        self.clock = 0.0
        self.accel_ready_at = 0.0
        self.dma_busy_until = 0.0


def make_pynq_z2(cpu_info=None, timing: Optional[TimingModel] = None) -> Board:
    """A board shaped like the paper's PYNQ-Z2 evaluation platform."""
    timing = timing or TimingModel()
    if cpu_info is not None:
        timing.cpu_freq_hz = cpu_info.frequency_hz
        caches = hierarchy_from_cpu_info(cpu_info, timing)
        return Board(timing=timing, caches=caches)
    return Board(timing=timing)
