"""Set-associative LRU cache simulation.

The simulator works at cache-line granularity: callers pass byte address
ranges (or precomputed line addresses) and receive hit/miss counts.  The
hierarchy wires L1D in front of a shared L2, charges the timing model's
penalties, and updates a :class:`~repro.soc.perf.PerfCounters`.

Two access paths share one cache state:

* the scalar reference — :meth:`Cache.access_line` /
  :meth:`CacheHierarchy.touch_lines` — processes one line at a time and
  defines the semantics;
* the batched engine — :meth:`CacheHierarchy.touch_lines_batch` (and
  the array-in entry point :meth:`Cache.access_batch`) — takes a whole
  line sequence (the copy kernels feed memoized per-tile sequences,
  see ``repro.runtime.copy``) and charges it in one pass: a single
  fused L1→L2 loop over C-speed insertion-ordered dicts, with hit/miss
  totals and the miss penalty computed analytically per batch instead
  of per line.

Each set is one ``dict`` keyed by line address: insertion order is
recency order, so a hit is ``del``+reinsert (move to MRU) and eviction
pops the first key (LRU) — every operation is a C-level dict primitive.
A numpy tag/age table was benchmarked for the batch path and loses
badly here: copy batches are a few dozen lines (one tile), far below
the break-even point of vectorized set lookups, and power-of-two tile
strides make rows conflict in the same sets, which forces multi-round
scatter resolution.  Property tests assert the batched path produces
bit-identical counters to the scalar reference.

For speed the copy kernels deduplicate intra-copy line reuse analytically
and only feed *first-touch* line sequences here (a tile is far smaller
than L1, so intra-copy reuse always hits).  Unit tests cross-check the
two paths on small tiles.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .perf import PerfCounters
from .timing import TimingModel


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, size_bytes: int, line_size: int = 32,
                 associativity: int = 4, name: str = "cache"):
        if size_bytes % (line_size * associativity):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line_size*associativity"
            )
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.name = name
        self.num_sets = size_bytes // (line_size * associativity)
        #: ``line & set_mask`` == ``line % num_sets`` when the set count
        #: is a power of two (the realistic geometries) — the batched
        #: loop prefers the cheaper AND.
        self.set_mask = self.num_sets - 1 \
            if self.num_sets & (self.num_sets - 1) == 0 else None
        # Per set: resident line addresses in LRU order (dict insertion
        # order; front = least recent).  Stored behind the ``_sets``
        # property: replay installs end-states as way *arrays* (see
        # :func:`install_ways`), and the dict expansion is deferred
        # until someone actually needs the dict form.
        self._ways_mirror: Optional[np.ndarray] = None
        self._sets_store: List[Dict[int, None]] = [
            {} for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def _sets(self) -> List[Dict[int, None]]:
        """The per-set LRU dicts, materializing any pending way array.

        Accessing this invalidates the array mirror — callers are free
        to mutate the dicts — so array-to-array replay sequences (apply
        a plan, export for the next build) never pay the expansion.
        """
        mirror = self._ways_mirror
        if mirror is not None:
            self._ways_mirror = None
            _expand_ways(self, mirror)
        return self._sets_store

    @_sets.setter
    def _sets(self, value: List[Dict[int, None]]) -> None:
        self._ways_mirror = None
        self._sets_store = value

    def reset(self) -> None:
        self._sets = [{} for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        return address // self.line_size

    def access_line(self, line: int) -> bool:
        """Touch one line address; returns True on hit.

        This is the scalar reference path; :meth:`access_batch` must
        produce identical counts for any access sequence.
        """
        ways = self._sets[line % self.num_sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            self.hits += 1
            return True
        ways[line] = None
        if len(ways) > self.associativity:
            del ways[next(iter(ways))]
        self.misses += 1
        return False

    def access_batch(self, lines: np.ndarray) -> np.ndarray:
        """Touch a line-address array; returns the per-line hit mask.

        Exactly equivalent to calling :meth:`access_line` per entry in
        order, but runs as one tight pass with the counters updated
        once per batch.
        """
        seq = lines.tolist() if isinstance(lines, np.ndarray) else lines
        sets = self._sets
        num_sets = self.num_sets
        associativity = self.associativity
        mask = []
        append = mask.append
        hits = 0
        for line in seq:
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]
                ways[line] = None
                hits += 1
                append(True)
            else:
                ways[line] = None
                if len(ways) > associativity:
                    del ways[next(iter(ways))]
                append(False)
        self.hits += hits
        self.misses += len(mask) - hits
        return np.asarray(mask, dtype=bool)

    def access_lines(self, lines: Iterable[int]) -> Tuple[int, int]:
        """Touch many lines; returns (hits, misses) for this batch."""
        mask = self.access_batch(
            lines if isinstance(lines, (list, np.ndarray)) else list(lines)
        )
        hits = int(mask.sum())
        return hits, mask.size - hits

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def occupancy(self) -> int:
        """Number of resident lines (for tests)."""
        return sum(len(ways) for ways in self._sets)


def lines_of_range(start_byte: int, num_bytes: int, line_size: int) -> range:
    """Line addresses covering ``[start, start+num_bytes)``."""
    if num_bytes <= 0:
        return range(0)
    first = start_byte // line_size
    last = (start_byte + num_bytes - 1) // line_size
    return range(first, last + 1)


class CacheHierarchy:
    """L1D backed by a shared L2, charging miss penalties to counters."""

    def __init__(self, timing: TimingModel,
                 l1: Optional[Cache] = None, l2: Optional[Cache] = None,
                 line_size: int = 32):
        self.timing = timing
        self.line_size = line_size
        self.l1 = l1 or Cache(32 * 1024, line_size, 4, "L1D")
        self.l2 = l2 or Cache(512 * 1024, line_size, 8, "L2")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1/L2 line sizes must agree")

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()

    def touch_lines(self, lines: Iterable[int],
                    counters: PerfCounters) -> float:
        """Access lines through the hierarchy (scalar reference path).

        Updates miss counters and returns the *extra* CPU cycles incurred
        by misses (the base access cost is charged by the caller as part
        of its instruction cost).  Does not bump ``cache_references`` —
        the caller decides how many architectural references the access
        pattern performs (element-wise vs vectorized).
        """
        penalty = 0.0
        timing = self.timing
        for line in lines:
            if self.l1.access_line(line):
                penalty += timing.l1_hit_extra_cycles
                continue
            counters.cache_misses += 1
            counters.l2_references += 1
            if self.l2.access_line(line):
                penalty += timing.l1_miss_penalty_cycles
            else:
                counters.l2_misses += 1
                penalty += (timing.l1_miss_penalty_cycles
                            + timing.l2_miss_penalty_cycles)
        return penalty

    def touch_lines_batch(self, lines: np.ndarray,
                          counters: PerfCounters) -> float:
        """Batched :meth:`touch_lines`: one fused L1→L2 pass.

        Processes the batch with both levels inlined into a single loop
        over C-speed dict operations, then updates counters and computes
        the penalty analytically from the per-batch totals — the per-
        line decision sequence is identical to the scalar reference, so
        the counts (and the penalty, a sum of per-line constants) are
        bit-identical.
        """
        seq = lines.tolist() if isinstance(lines, np.ndarray) else lines
        if not seq:
            return 0.0
        l1, l2 = self.l1, self.l2
        sets1, num_sets1, assoc1 = l1._sets, l1.num_sets, l1.associativity
        sets2, num_sets2, assoc2 = l2._sets, l2.num_sets, l2.associativity
        l1_hits = 0
        l2_hits = 0
        l2_misses = 0
        missing = False
        mask1 = l1.set_mask
        mask2 = l2.set_mask
        if mask1 is not None and mask2 is not None:
            # pop-and-reinsert moves the line to MRU with two dict
            # operations; the default (False, never a stored value)
            # distinguishes a miss without a second lookup.
            for line in seq:
                ways = sets1[line & mask1]
                if ways.pop(line, missing) is None:
                    ways[line] = None
                    l1_hits += 1
                    continue
                ways[line] = None
                if len(ways) > assoc1:
                    del ways[next(iter(ways))]
                ways2 = sets2[line & mask2]
                if ways2.pop(line, missing) is None:
                    ways2[line] = None
                    l2_hits += 1
                else:
                    ways2[line] = None
                    if len(ways2) > assoc2:
                        del ways2[next(iter(ways2))]
                    l2_misses += 1
        else:
            for line in seq:
                ways = sets1[line % num_sets1]
                if ways.pop(line, missing) is None:
                    ways[line] = None
                    l1_hits += 1
                    continue
                ways[line] = None
                if len(ways) > assoc1:
                    del ways[next(iter(ways))]
                ways2 = sets2[line % num_sets2]
                if ways2.pop(line, missing) is None:
                    ways2[line] = None
                    l2_hits += 1
                else:
                    ways2[line] = None
                    if len(ways2) > assoc2:
                        del ways2[next(iter(ways2))]
                    l2_misses += 1
        total = len(seq)
        l1_misses = total - l1_hits
        l1.hits += l1_hits
        l1.misses += l1_misses
        l2.hits += l2_hits
        l2.misses += l2_misses
        counters.cache_misses += l1_misses
        counters.l2_references += l1_misses
        counters.l2_misses += l2_misses
        timing = self.timing
        return (l1_hits * timing.l1_hit_extra_cycles
                + l1_misses * timing.l1_miss_penalty_cycles
                + l2_misses * timing.l2_miss_penalty_cycles)

    def touch_range(self, start_byte: int, num_bytes: int,
                    counters: PerfCounters) -> float:
        return self.touch_lines(
            lines_of_range(start_byte, num_bytes, self.line_size), counters
        )

    def touch_word(self, start_byte: int, counters: PerfCounters) -> float:
        """Touch one aligned 32-bit word (at most one line straddle)."""
        line_size = self.line_size
        first = start_byte // line_size
        last = (start_byte + 3) // line_size
        if first != last:
            return self.touch_lines_batch((first, last), counters)
        # Aligned words never straddle: inline the single access.
        l1 = self.l1
        timing = self.timing
        ways = l1._sets[first % l1.num_sets]
        if ways.pop(first, False) is None:
            ways[first] = None
            l1.hits += 1
            return timing.l1_hit_extra_cycles
        ways[first] = None
        if len(ways) > l1.associativity:
            del ways[next(iter(ways))]
        l1.misses += 1
        counters.cache_misses += 1
        counters.l2_references += 1
        l2 = self.l2
        ways2 = l2._sets[first % l2.num_sets]
        if ways2.pop(first, False) is None:
            ways2[first] = None
            l2.hits += 1
            return timing.l1_miss_penalty_cycles
        ways2[first] = None
        if len(ways2) > l2.associativity:
            del ways2[next(iter(ways2))]
        l2.misses += 1
        counters.l2_misses += 1
        return timing.l1_miss_penalty_cycles + timing.l2_miss_penalty_cycles


def _classify_lru_offline(lines: np.ndarray, num_sets: int,
                          associativity: int,
                          set_mask: Optional[int]) -> np.ndarray:
    """Exact LRU hit/miss classification for a known access sequence.

    Equivalent to feeding ``lines`` through :meth:`Cache.access_line`
    one at a time (same per-access decisions, in order), but computed
    offline from the whole sequence at once: an access hits iff fewer
    than ``associativity`` *distinct* lines of its set were touched
    since the previous access to the same line — the classic stack-
    distance characterization of set-associative LRU.  The heavy work
    (previous-occurrence chains, per-set ranks, bounded window scans)
    is vectorized; only rare long-window stragglers fall back to a
    per-query count.

    The caller is responsible for modelling any warm (non-empty) cache
    state by prepending one synthetic access per resident line, in
    LRU-to-MRU order, and discarding the prefix of the returned mask.
    """
    n = int(lines.size)
    if n == 0:
        return np.zeros(0, dtype=bool)
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    sets = (lines & set_mask) if set_mask is not None else (lines % num_sets)

    # Per-set local ranks: a stable sort by set groups each set's
    # sub-stream in time order.
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=new_group[1:])
    group_start_pos = np.flatnonzero(new_group)
    positions = np.arange(n, dtype=np.int64)
    base_sorted = np.repeat(group_start_pos,
                            np.diff(np.r_[group_start_pos, n]))
    local_sorted = positions - base_sorted
    rank = np.empty(n, dtype=np.int64)
    rank[order] = local_sorted
    base = np.empty(n, dtype=np.int64)
    base[order] = base_sorted

    # Previous occurrence of the same line (global indices; same line
    # implies same set).
    by_line = np.argsort(lines, kind="stable")
    same = lines[by_line][1:] == lines[by_line][:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[by_line[1:][same]] = by_line[:-1][same]

    hit = np.zeros(n, dtype=bool)
    seen = prev >= 0
    prev_rank = np.full(n, -1, dtype=np.int64)
    prev_rank[seen] = rank[prev[seen]]
    gap = rank - prev_rank - 1  # intervening same-set accesses
    # Fewer than `associativity` accesses in between bounds the distinct
    # count: a guaranteed hit.  Cold lines are guaranteed misses.
    hit[seen & (gap < associativity)] = True

    # Remaining queries need the exact distinct count over their window.
    # ``pr_sorted[s] <= a`` marks a first-occurrence-in-window access
    # (its own previous occurrence predates the window).
    pending = np.flatnonzero(seen & (gap >= associativity))
    if pending.size:
        pr_sorted = prev_rank[order]
        q_base = base[pending]
        q_a = prev_rank[pending]
        q_b = rank[pending]
        count = np.zeros(pending.size, dtype=np.int64)
        alive = np.arange(pending.size)
        step = 1
        # The set of unresolved queries shrinks rapidly (misses resolve
        # at the associativity'th distinct line, hits at their window
        # end); a work budget guards the pathological long-window case,
        # and the short tail finishes with per-query window counts.
        work_budget = 64 * n + (1 << 20)
        while alive.size > 1024 and work_budget > 0:
            work_budget -= alive.size
            scan = q_a[alive] + step
            reached = scan == q_b[alive]
            if reached.any():
                hit[pending[alive[reached]]] = True
                alive = alive[~reached]
                scan = q_a[alive] + step
            if alive.size:
                cand = pr_sorted[q_base[alive] + scan] <= q_a[alive]
                count[alive] += cand
                full_now = count[alive] >= associativity
                alive = alive[~full_now]  # classified miss (hit stays 0)
            step += 1
        # Tail: count each remaining window directly (vectorized within
        # the window; the partial scan count is not reused).
        for qi in alive:
            q = pending[qi]
            lo = q_base[qi] + q_a[qi] + 1
            hi = q_base[qi] + q_b[qi]
            window = pr_sorted[lo:hi]
            if np.count_nonzero(window <= q_a[qi]) < associativity:
                hit[q] = True
    return hit


def _final_lru_state(lines: np.ndarray, num_sets: int, associativity: int,
                     set_mask: Optional[int]) -> Dict[int, List[int]]:
    """Resident lines per touched set after an access sequence.

    For LRU, the final contents of a set are its last ``associativity``
    distinct lines, ordered by last access (LRU first) — extracted here
    without simulating the sequence.
    """
    if lines.size == 0:
        return {}
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    by_line = np.argsort(lines, kind="stable")
    vals = lines[by_line]
    is_last = np.empty(vals.size, dtype=bool)
    is_last[-1] = True
    np.not_equal(vals[1:], vals[:-1], out=is_last[:-1])
    distinct = vals[is_last]
    last_occ = by_line[is_last]
    line_sets = (distinct & set_mask) if set_mask is not None \
        else (distinct % num_sets)
    by_set = np.lexsort((last_occ, line_sets))
    line_sets = line_sets[by_set]
    distinct = distinct[by_set]
    boundaries = np.flatnonzero(
        np.r_[True, line_sets[1:] != line_sets[:-1]]
    ).tolist() + [line_sets.size]
    state: Dict[int, List[int]] = {}
    distinct_list = distinct.tolist()
    set_list = line_sets.tolist()
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        keep = max(start, end - associativity)
        state[set_list[start]] = distinct_list[keep:end]
    return state


class OfflineLruSimulator:
    """Replays a known line-access sequence through a hierarchy offline.

    Produces the exact per-access L1 hit mask and (for L1 misses) L2
    hit mask that :meth:`CacheHierarchy.touch_lines_batch` would, then
    installs the final LRU state and hit/miss totals back into the live
    :class:`Cache` objects.  Warm caches are honoured, so a replay can
    start from any hierarchy state.

    Two backends share the exact per-access semantics: a compiled C
    state machine (:mod:`repro.soc._native`, the common case) and a
    vectorized stack-distance classifier with synthetic warm-state
    prefixes (the no-compiler fallback).  Chunked use is supported:
    each :meth:`process` call carries the evolving state forward, so
    arbitrarily long sequences classify in bounded memory.

    The carry-forward also spans *kernels*: a resumable
    characterization (``PlanBuildCarrier`` in the metrics plane) keeps
    one simulator alive across consecutive plan builds on the same
    board, so each build starts from the previous build's warm LRU
    end-state instead of re-seeding from a fresh hierarchy export.
    Callers attributing work to one build bracket it with
    :meth:`counts_snapshot`.
    """

    def __init__(self, hierarchy: "CacheHierarchy"):
        from ._native import native_lib

        self.hierarchy = hierarchy
        self._lib = native_lib()
        self._counts = {hierarchy.l1.name: [0, 0], hierarchy.l2.name: [0, 0]}
        if self._lib is not None:
            self._ways = {
                cache.name: _export_ways(cache)
                for cache in (hierarchy.l1, hierarchy.l2)
            }
            return
        self._state = {}
        for cache in (hierarchy.l1, hierarchy.l2):
            self._state[cache.name] = {
                index: list(ways)
                for index, ways in enumerate(cache._sets) if ways
            }

    def _classify_level(self, cache: Cache, lines: np.ndarray) -> np.ndarray:
        state = self._state[cache.name]
        if state:
            warm = np.asarray(
                [line for ways in state.values() for line in ways],
                dtype=np.int64,
            )
            full = np.concatenate([warm, lines])
        else:
            warm = np.zeros(0, dtype=np.int64)
            full = lines
        hit = _classify_lru_offline(full, cache.num_sets,
                                    cache.associativity, cache.set_mask)
        hit = hit[warm.size:]
        new_state = _final_lru_state(full, cache.num_sets,
                                     cache.associativity, cache.set_mask)
        state.update(new_state)
        counts = self._counts[cache.name]
        hits = int(np.count_nonzero(hit))
        counts[0] += hits
        counts[1] += int(hit.size) - hits
        return hit

    def process(self, lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Classify one chunk; returns (l1_hit_mask, l2_hit_of_l1_miss).

        The second mask is aligned to the subsequence of L1 misses, as
        in the live hierarchy where only L1 misses reach L2.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        if self._lib is not None:
            return self._process_native(lines)
        l1_hit = self._classify_level(self.hierarchy.l1, lines)
        l2_hit = self._classify_level(self.hierarchy.l2, lines[~l1_hit])
        return l1_hit, l2_hit

    def _process_native(self, lines) -> Tuple[np.ndarray, np.ndarray]:
        import ctypes

        l1, l2 = self.hierarchy.l1, self.hierarchy.l2
        codes = np.empty(lines.size, dtype=np.uint8)
        if lines.size:
            i64p = ctypes.POINTER(ctypes.c_int64)
            self._lib.lru_hierarchy_batch(
                lines.ctypes.data_as(i64p), lines.size,
                self._ways[l1.name].ctypes.data_as(i64p),
                l1.num_sets, l1.associativity,
                -1 if l1.set_mask is None else l1.set_mask,
                self._ways[l2.name].ctypes.data_as(i64p),
                l2.num_sets, l2.associativity,
                -1 if l2.set_mask is None else l2.set_mask,
                codes.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
            )
        tallies = np.bincount(codes, minlength=3)
        self._counts[l1.name][0] += int(tallies[0])
        self._counts[l1.name][1] += int(tallies[1] + tallies[2])
        self._counts[l2.name][0] += int(tallies[1])
        self._counts[l2.name][1] += int(tallies[2])
        l1_hit = codes == 0
        l2_hit = codes[~l1_hit] == 1
        return l1_hit, l2_hit

    def counts_snapshot(self) -> Tuple[int, int, int, int]:
        """Immutable (l1_hits, l1_misses, l2_hits, l2_misses) so far.

        Snapshot before a run of :meth:`process` calls and diff after
        to attribute a hit/miss delta to that run alone — the basis of
        the cross-kernel resumable characterization, where one
        simulator accumulates counts over many plan builds.
        """
        l1, l2 = self.hierarchy.l1, self.hierarchy.l2
        c1, c2 = self._counts[l1.name], self._counts[l2.name]
        return (c1[0], c1[1], c2[0], c2[1])

    def finalize(self) -> None:
        """Install the final LRU contents and totals into the caches."""
        for cache in (self.hierarchy.l1, self.hierarchy.l2):
            if self._lib is not None:
                install_ways(cache, self._ways[cache.name])
            else:
                for index, resident in self._state[cache.name].items():
                    cache._sets[index] = dict.fromkeys(resident)
            hits, misses = self._counts[cache.name]
            cache.hits += hits
            cache.misses += misses


def _export_ways(cache: Cache) -> np.ndarray:
    """Way slots (MRU first, -1 empty) for the native state machine.

    Callers own (and may mutate) the returned array.  When the cache
    still holds an uninstalled mirror from :func:`install_ways` this is
    a plain array copy — no dict traversal.
    """
    mirror = cache._ways_mirror
    if mirror is not None:
        return mirror.copy()
    ways = np.full(cache.num_sets * cache.associativity, -1, dtype=np.int64)
    assoc = cache.associativity
    for index, resident in enumerate(cache._sets_store):
        if resident:
            stack = list(resident)  # dict order: LRU -> MRU
            stack.reverse()
            ways[index * assoc:index * assoc + len(stack)] = stack
    return ways


def warm_state_digest(hierarchy: "CacheHierarchy") -> str:
    """Hex digest of the exact LRU contents of both cache levels.

    Order-sensitive (MRU-first way stacks), so two boards agree iff
    their warm states are bit-identical — the pin the model-granularity
    replay tests use to prove the inter-kernel warm-state carry matches
    the sequential per-kernel path exactly.
    """
    digest = hashlib.sha256()
    for cache in (hierarchy.l1, hierarchy.l2):
        digest.update(np.int64(cache.hits).tobytes())
        digest.update(np.int64(cache.misses).tobytes())
        digest.update(_export_ways(cache).tobytes())
    return digest.hexdigest()


def install_ways(cache: Cache, ways: np.ndarray) -> None:
    """Adopt ``ways`` (MRU-first slots, -1 empty) as the LRU state.

    O(copy): the array is kept as a private mirror and only expanded
    into the per-set dicts when ``Cache._sets`` is next read — which a
    replay-to-replay step sequence never does, so model sessions hand
    cache end-states from one step's plan to the next build as arrays.
    """
    cache._ways_mirror = np.array(ways, dtype=np.int64)


def _expand_ways(cache: Cache, ways: np.ndarray) -> None:
    """Eagerly expand a way array into the per-set dicts.

    Occupied slots always form a prefix of each row (the exporters fill
    from slot 0 and the LRU state machines shift-insert at the MRU end),
    so per-row occupancy counts replace per-slot filtering.
    """
    assoc = cache.associativity
    grid = ways.reshape(cache.num_sets, assoc)
    occupancy = (grid >= 0).sum(axis=1).tolist()
    rows = grid.tolist()
    sets = cache._sets_store
    for i, occ in enumerate(occupancy):
        if occ == assoc:
            row = rows[i]
            row.reverse()  # back to LRU -> MRU insertion order
            sets[i] = dict.fromkeys(row)
        elif occ:
            sets[i] = dict.fromkeys(rows[i][occ - 1::-1])
        else:
            sets[i] = {}


def hierarchy_from_cpu_info(cpu_info, timing: TimingModel) -> CacheHierarchy:
    """Build a hierarchy from a parsed CPU config section (Fig. 5 L1-L2)."""
    levels = list(cpu_info.cache_levels)
    associativity = list(cpu_info.associativity)
    while len(associativity) < len(levels):
        associativity.append(8)
    line = cpu_info.line_size
    l1 = Cache(levels[0], line, associativity[0], "L1D")
    l2 = Cache(levels[-1] if len(levels) > 1 else levels[0] * 16,
               line, associativity[-1], "L2")
    return CacheHierarchy(timing, l1, l2, line)
