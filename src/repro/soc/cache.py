"""Set-associative LRU cache simulation.

The simulator works at cache-line granularity: callers pass byte address
ranges (or precomputed line addresses) and receive hit/miss counts.  The
hierarchy wires L1D in front of a shared L2, charges the timing model's
penalties, and updates a :class:`~repro.soc.perf.PerfCounters`.

For speed the copy kernels deduplicate intra-copy line reuse analytically
and only feed *first-touch* line sequences here (a tile is far smaller
than L1, so intra-copy reuse always hits).  Unit tests cross-check the
two paths on small tiles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .perf import PerfCounters
from .timing import TimingModel


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, size_bytes: int, line_size: int = 32,
                 associativity: int = 4, name: str = "cache"):
        if size_bytes % (line_size * associativity):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line_size*associativity"
            )
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.name = name
        self.num_sets = size_bytes // (line_size * associativity)
        # Per set: list of tags in LRU order (front = least recent).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        return address // self.line_size

    def access_line(self, line: int) -> bool:
        """Touch one line address; returns True on hit."""
        set_index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_index]
        try:
            ways.remove(tag)
        except ValueError:
            self.misses += 1
            ways.append(tag)
            if len(ways) > self.associativity:
                ways.pop(0)
            return False
        self.hits += 1
        ways.append(tag)
        return True

    def access_lines(self, lines: Iterable[int]) -> Tuple[int, int]:
        """Touch many lines; returns (hits, misses) for this batch."""
        hits = 0
        misses = 0
        sets = self._sets
        num_sets = self.num_sets
        associativity = self.associativity
        for line in lines:
            set_index = line % num_sets
            tag = line // num_sets
            ways = sets[set_index]
            if tag in ways:
                ways.remove(tag)
                ways.append(tag)
                hits += 1
            else:
                ways.append(tag)
                if len(ways) > associativity:
                    ways.pop(0)
                misses += 1
        self.hits += hits
        self.misses += misses
        return hits, misses

    def contains_line(self, line: int) -> bool:
        set_index = line % self.num_sets
        tag = line // self.num_sets
        return tag in self._sets[set_index]

    def occupancy(self) -> int:
        """Number of resident lines (for tests)."""
        return sum(len(ways) for ways in self._sets)


def lines_of_range(start_byte: int, num_bytes: int, line_size: int) -> range:
    """Line addresses covering ``[start, start+num_bytes)``."""
    if num_bytes <= 0:
        return range(0)
    first = start_byte // line_size
    last = (start_byte + num_bytes - 1) // line_size
    return range(first, last + 1)


class CacheHierarchy:
    """L1D backed by a shared L2, charging miss penalties to counters."""

    def __init__(self, timing: TimingModel,
                 l1: Optional[Cache] = None, l2: Optional[Cache] = None,
                 line_size: int = 32):
        self.timing = timing
        self.line_size = line_size
        self.l1 = l1 or Cache(32 * 1024, line_size, 4, "L1D")
        self.l2 = l2 or Cache(512 * 1024, line_size, 8, "L2")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1/L2 line sizes must agree")

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()

    def touch_lines(self, lines: Iterable[int],
                    counters: PerfCounters) -> float:
        """Access lines through the hierarchy.

        Updates miss counters and returns the *extra* CPU cycles incurred
        by misses (the base access cost is charged by the caller as part
        of its instruction cost).  Does not bump ``cache_references`` —
        the caller decides how many architectural references the access
        pattern performs (element-wise vs vectorized).
        """
        penalty = 0.0
        timing = self.timing
        for line in lines:
            if self.l1.access_line(line):
                penalty += timing.l1_hit_extra_cycles
                continue
            counters.cache_misses += 1
            counters.l2_references += 1
            if self.l2.access_line(line):
                penalty += timing.l1_miss_penalty_cycles
            else:
                counters.l2_misses += 1
                penalty += (timing.l1_miss_penalty_cycles
                            + timing.l2_miss_penalty_cycles)
        return penalty

    def touch_range(self, start_byte: int, num_bytes: int,
                    counters: PerfCounters) -> float:
        return self.touch_lines(
            lines_of_range(start_byte, num_bytes, self.line_size), counters
        )


def hierarchy_from_cpu_info(cpu_info, timing: TimingModel) -> CacheHierarchy:
    """Build a hierarchy from a parsed CPU config section (Fig. 5 L1-L2)."""
    levels = list(cpu_info.cache_levels)
    associativity = list(cpu_info.associativity)
    while len(associativity) < len(levels):
        associativity.append(8)
    line = cpu_info.line_size
    l1 = Cache(levels[0], line, associativity[0], "L1D")
    l2 = Cache(levels[-1] if len(levels) > 1 else levels[0] * 16,
               line, associativity[-1], "L2")
    return CacheHierarchy(timing, l1, l2, line)
