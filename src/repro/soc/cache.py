"""Set-associative LRU cache simulation.

The simulator works at cache-line granularity: callers pass byte address
ranges (or precomputed line addresses) and receive hit/miss counts.  The
hierarchy wires L1D in front of a shared L2, charges the timing model's
penalties, and updates a :class:`~repro.soc.perf.PerfCounters`.

Two access paths share one cache state:

* the scalar reference — :meth:`Cache.access_line` /
  :meth:`CacheHierarchy.touch_lines` — processes one line at a time and
  defines the semantics;
* the batched engine — :meth:`CacheHierarchy.touch_lines_batch` (and
  the array-in entry point :meth:`Cache.access_batch`) — takes a whole
  line sequence (the copy kernels feed memoized per-tile sequences,
  see ``repro.runtime.copy``) and charges it in one pass: a single
  fused L1→L2 loop over C-speed insertion-ordered dicts, with hit/miss
  totals and the miss penalty computed analytically per batch instead
  of per line.

Each set is one ``dict`` keyed by line address: insertion order is
recency order, so a hit is ``del``+reinsert (move to MRU) and eviction
pops the first key (LRU) — every operation is a C-level dict primitive.
A numpy tag/age table was benchmarked for the batch path and loses
badly here: copy batches are a few dozen lines (one tile), far below
the break-even point of vectorized set lookups, and power-of-two tile
strides make rows conflict in the same sets, which forces multi-round
scatter resolution.  Property tests assert the batched path produces
bit-identical counters to the scalar reference.

For speed the copy kernels deduplicate intra-copy line reuse analytically
and only feed *first-touch* line sequences here (a tile is far smaller
than L1, so intra-copy reuse always hits).  Unit tests cross-check the
two paths on small tiles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .perf import PerfCounters
from .timing import TimingModel


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, size_bytes: int, line_size: int = 32,
                 associativity: int = 4, name: str = "cache"):
        if size_bytes % (line_size * associativity):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line_size*associativity"
            )
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.name = name
        self.num_sets = size_bytes // (line_size * associativity)
        #: ``line & set_mask`` == ``line % num_sets`` when the set count
        #: is a power of two (the realistic geometries) — the batched
        #: loop prefers the cheaper AND.
        self.set_mask = self.num_sets - 1 \
            if self.num_sets & (self.num_sets - 1) == 0 else None
        # Per set: resident line addresses in LRU order (dict insertion
        # order; front = least recent).
        self._sets: List[Dict[int, None]] = [
            {} for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [{} for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        return address // self.line_size

    def access_line(self, line: int) -> bool:
        """Touch one line address; returns True on hit.

        This is the scalar reference path; :meth:`access_batch` must
        produce identical counts for any access sequence.
        """
        ways = self._sets[line % self.num_sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            self.hits += 1
            return True
        ways[line] = None
        if len(ways) > self.associativity:
            del ways[next(iter(ways))]
        self.misses += 1
        return False

    def access_batch(self, lines: np.ndarray) -> np.ndarray:
        """Touch a line-address array; returns the per-line hit mask.

        Exactly equivalent to calling :meth:`access_line` per entry in
        order, but runs as one tight pass with the counters updated
        once per batch.
        """
        seq = lines.tolist() if isinstance(lines, np.ndarray) else lines
        sets = self._sets
        num_sets = self.num_sets
        associativity = self.associativity
        mask = []
        append = mask.append
        hits = 0
        for line in seq:
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]
                ways[line] = None
                hits += 1
                append(True)
            else:
                ways[line] = None
                if len(ways) > associativity:
                    del ways[next(iter(ways))]
                append(False)
        self.hits += hits
        self.misses += len(mask) - hits
        return np.asarray(mask, dtype=bool)

    def access_lines(self, lines: Iterable[int]) -> Tuple[int, int]:
        """Touch many lines; returns (hits, misses) for this batch."""
        mask = self.access_batch(
            lines if isinstance(lines, (list, np.ndarray)) else list(lines)
        )
        hits = int(mask.sum())
        return hits, mask.size - hits

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def occupancy(self) -> int:
        """Number of resident lines (for tests)."""
        return sum(len(ways) for ways in self._sets)


def lines_of_range(start_byte: int, num_bytes: int, line_size: int) -> range:
    """Line addresses covering ``[start, start+num_bytes)``."""
    if num_bytes <= 0:
        return range(0)
    first = start_byte // line_size
    last = (start_byte + num_bytes - 1) // line_size
    return range(first, last + 1)


class CacheHierarchy:
    """L1D backed by a shared L2, charging miss penalties to counters."""

    def __init__(self, timing: TimingModel,
                 l1: Optional[Cache] = None, l2: Optional[Cache] = None,
                 line_size: int = 32):
        self.timing = timing
        self.line_size = line_size
        self.l1 = l1 or Cache(32 * 1024, line_size, 4, "L1D")
        self.l2 = l2 or Cache(512 * 1024, line_size, 8, "L2")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1/L2 line sizes must agree")

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()

    def touch_lines(self, lines: Iterable[int],
                    counters: PerfCounters) -> float:
        """Access lines through the hierarchy (scalar reference path).

        Updates miss counters and returns the *extra* CPU cycles incurred
        by misses (the base access cost is charged by the caller as part
        of its instruction cost).  Does not bump ``cache_references`` —
        the caller decides how many architectural references the access
        pattern performs (element-wise vs vectorized).
        """
        penalty = 0.0
        timing = self.timing
        for line in lines:
            if self.l1.access_line(line):
                penalty += timing.l1_hit_extra_cycles
                continue
            counters.cache_misses += 1
            counters.l2_references += 1
            if self.l2.access_line(line):
                penalty += timing.l1_miss_penalty_cycles
            else:
                counters.l2_misses += 1
                penalty += (timing.l1_miss_penalty_cycles
                            + timing.l2_miss_penalty_cycles)
        return penalty

    def touch_lines_batch(self, lines: np.ndarray,
                          counters: PerfCounters) -> float:
        """Batched :meth:`touch_lines`: one fused L1→L2 pass.

        Processes the batch with both levels inlined into a single loop
        over C-speed dict operations, then updates counters and computes
        the penalty analytically from the per-batch totals — the per-
        line decision sequence is identical to the scalar reference, so
        the counts (and the penalty, a sum of per-line constants) are
        bit-identical.
        """
        seq = lines.tolist() if isinstance(lines, np.ndarray) else lines
        if not seq:
            return 0.0
        l1, l2 = self.l1, self.l2
        sets1, num_sets1, assoc1 = l1._sets, l1.num_sets, l1.associativity
        sets2, num_sets2, assoc2 = l2._sets, l2.num_sets, l2.associativity
        l1_hits = 0
        l2_hits = 0
        l2_misses = 0
        missing = False
        mask1 = l1.set_mask
        mask2 = l2.set_mask
        if mask1 is not None and mask2 is not None:
            # pop-and-reinsert moves the line to MRU with two dict
            # operations; the default (False, never a stored value)
            # distinguishes a miss without a second lookup.
            for line in seq:
                ways = sets1[line & mask1]
                if ways.pop(line, missing) is None:
                    ways[line] = None
                    l1_hits += 1
                    continue
                ways[line] = None
                if len(ways) > assoc1:
                    del ways[next(iter(ways))]
                ways2 = sets2[line & mask2]
                if ways2.pop(line, missing) is None:
                    ways2[line] = None
                    l2_hits += 1
                else:
                    ways2[line] = None
                    if len(ways2) > assoc2:
                        del ways2[next(iter(ways2))]
                    l2_misses += 1
        else:
            for line in seq:
                ways = sets1[line % num_sets1]
                if ways.pop(line, missing) is None:
                    ways[line] = None
                    l1_hits += 1
                    continue
                ways[line] = None
                if len(ways) > assoc1:
                    del ways[next(iter(ways))]
                ways2 = sets2[line % num_sets2]
                if ways2.pop(line, missing) is None:
                    ways2[line] = None
                    l2_hits += 1
                else:
                    ways2[line] = None
                    if len(ways2) > assoc2:
                        del ways2[next(iter(ways2))]
                    l2_misses += 1
        total = len(seq)
        l1_misses = total - l1_hits
        l1.hits += l1_hits
        l1.misses += l1_misses
        l2.hits += l2_hits
        l2.misses += l2_misses
        counters.cache_misses += l1_misses
        counters.l2_references += l1_misses
        counters.l2_misses += l2_misses
        timing = self.timing
        return (l1_hits * timing.l1_hit_extra_cycles
                + l1_misses * timing.l1_miss_penalty_cycles
                + l2_misses * timing.l2_miss_penalty_cycles)

    def touch_range(self, start_byte: int, num_bytes: int,
                    counters: PerfCounters) -> float:
        return self.touch_lines(
            lines_of_range(start_byte, num_bytes, self.line_size), counters
        )

    def touch_word(self, start_byte: int, counters: PerfCounters) -> float:
        """Touch one aligned 32-bit word (at most one line straddle)."""
        line_size = self.line_size
        first = start_byte // line_size
        last = (start_byte + 3) // line_size
        if first != last:
            return self.touch_lines_batch((first, last), counters)
        # Aligned words never straddle: inline the single access.
        l1 = self.l1
        timing = self.timing
        ways = l1._sets[first % l1.num_sets]
        if ways.pop(first, False) is None:
            ways[first] = None
            l1.hits += 1
            return timing.l1_hit_extra_cycles
        ways[first] = None
        if len(ways) > l1.associativity:
            del ways[next(iter(ways))]
        l1.misses += 1
        counters.cache_misses += 1
        counters.l2_references += 1
        l2 = self.l2
        ways2 = l2._sets[first % l2.num_sets]
        if ways2.pop(first, False) is None:
            ways2[first] = None
            l2.hits += 1
            return timing.l1_miss_penalty_cycles
        ways2[first] = None
        if len(ways2) > l2.associativity:
            del ways2[next(iter(ways2))]
        l2.misses += 1
        counters.l2_misses += 1
        return timing.l1_miss_penalty_cycles + timing.l2_miss_penalty_cycles


def hierarchy_from_cpu_info(cpu_info, timing: TimingModel) -> CacheHierarchy:
    """Build a hierarchy from a parsed CPU config section (Fig. 5 L1-L2)."""
    levels = list(cpu_info.cache_levels)
    associativity = list(cpu_info.associativity)
    while len(associativity) < len(levels):
        associativity.append(8)
    line = cpu_info.line_size
    l1 = Cache(levels[0], line, associativity[0], "L1D")
    l2 = Cache(levels[-1] if len(levels) > 1 else levels[0] * 16,
               line, associativity[-1], "L2")
    return CacheHierarchy(timing, l1, l2, line)
