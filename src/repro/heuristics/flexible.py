"""Tile-size and dataflow selection for flexible accelerators (Sec. IV-C).

The v4 accelerator accepts rectangular tiles (multiples of its size
quantum that fit its internal buffers).  For a MatMul problem
``(M, N, K)`` the heuristics pick tile sizes and a stationary flow:

* ``As-squareTile`` / ``Bs-squareTile`` / ``Cs-squareTile`` — fix the
  flow, use the largest square tile that divides the problem and fits;
* ``Best`` — search all flows and rectangular tiles, minimizing the
  modelled host-accelerator transfer volume (the dominant cost at these
  problem sizes), with transaction count as tie-break.

The transfer model per flow (counts in elements):

=====  ==================  ==================  ==================
flow   A moved             B moved             C moved
=====  ==================  ==================  ==================
Ns     M*K * N/tN          K*N * M/tM          M*N * K/tK
As     M*K                 K*N * M/tM          M*N * K/tK
Bs     M*K * N/tN          K*N                 M*N * K/tK
Cs     M*K * N/tN          K*N * M/tM          M*N
=====  ==================  ==================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

FLOWS = ("Ns", "As", "Bs", "Cs")


@dataclass(frozen=True)
class TileChoice:
    """One candidate configuration and its modelled cost."""

    flow: str
    tile_m: int
    tile_n: int
    tile_k: int
    words_moved: int
    transactions: int

    @property
    def tiles(self) -> Tuple[int, int, int]:
        return (self.tile_m, self.tile_n, self.tile_k)

    def label(self) -> str:
        return f"{self.flow} {self.tile_m} {self.tile_n} {self.tile_k}"


def candidate_tiles(extent: int, quantum: int) -> List[int]:
    """Multiples of ``quantum`` that evenly divide ``extent``."""
    sizes = [t for t in range(quantum, extent + 1, quantum)
             if extent % t == 0]
    return sizes or [extent]


def transfer_cost_model(m: int, n: int, k: int,
                        tile_m: int, tile_n: int, tile_k: int,
                        flow: str) -> Tuple[int, int]:
    """(elements moved, DMA transactions) for one configuration."""
    trips_m = m // tile_m
    trips_n = n // tile_n
    trips_k = k // tile_k
    a_once = m * k
    b_once = k * n
    c_once = m * n
    if flow == "Ns":
        words = a_once * trips_n + b_once * trips_m + c_once * trips_k
        transactions = trips_m * trips_n * trips_k * 2
    elif flow == "As":
        words = a_once + b_once * trips_m + c_once * trips_k
        transactions = trips_m * trips_k * (1 + 2 * trips_n)
    elif flow == "Bs":
        words = a_once * trips_n + b_once + c_once * trips_k
        transactions = trips_n * trips_k * (1 + 2 * trips_m)
    elif flow == "Cs":
        words = a_once * trips_n + b_once * trips_m + c_once
        transactions = trips_m * trips_n * (trips_k + 2)
    else:
        raise ValueError(f"unknown flow {flow!r}")
    return words, transactions


def _fits(tile_m: int, tile_n: int, tile_k: int, capacity: int) -> bool:
    return (tile_m * tile_k <= capacity
            and tile_k * tile_n <= capacity
            and tile_m * tile_n <= capacity)


def square_tile_configuration(m: int, n: int, k: int, flow: str,
                              quantum: int, capacity: int) -> TileChoice:
    """Largest square tile that divides every dim and fits the buffers."""
    common = [
        t for t in candidate_tiles(m, quantum)
        if n % t == 0 and k % t == 0 and _fits(t, t, t, capacity)
    ]
    if not common:
        raise ValueError(
            f"no square tile of quantum {quantum} divides "
            f"({m}, {n}, {k}) and fits {capacity} elements"
        )
    tile = max(common)
    words, transactions = transfer_cost_model(m, n, k, tile, tile, tile, flow)
    return TileChoice(flow, tile, tile, tile, words, transactions)


def best_configuration(m: int, n: int, k: int, quantum: int, capacity: int,
                       flows: Iterable[str] = FLOWS) -> TileChoice:
    """Search flows x rectangular tiles for the cheapest configuration."""
    best: Optional[TileChoice] = None
    for flow in flows:
        for tile_m in candidate_tiles(m, quantum):
            for tile_n in candidate_tiles(n, quantum):
                for tile_k in candidate_tiles(k, quantum):
                    if not _fits(tile_m, tile_n, tile_k, capacity):
                        continue
                    words, transactions = transfer_cost_model(
                        m, n, k, tile_m, tile_n, tile_k, flow
                    )
                    candidate = TileChoice(flow, tile_m, tile_n, tile_k,
                                           words, transactions)
                    if best is None or (
                        (candidate.words_moved, candidate.transactions)
                        < (best.words_moved, best.transactions)
                    ):
                        best = candidate
    if best is None:
        raise ValueError(
            f"no feasible configuration for ({m}, {n}, {k}) with "
            f"quantum {quantum} and capacity {capacity}"
        )
    return best


def all_square_strategies(m: int, n: int, k: int, quantum: int,
                          capacity: int) -> Dict[str, TileChoice]:
    """The three square-tile heuristics of Fig. 14."""
    return {
        f"{flow}-squareTile": square_tile_configuration(
            m, n, k, flow, quantum, capacity
        )
        for flow in ("As", "Bs", "Cs")
    }
