"""Tiling/dataflow selection heuristics for flexible accelerators
(paper Sec. IV-C, Fig. 14)."""

from .flexible import (
    TileChoice,
    best_configuration,
    candidate_tiles,
    square_tile_configuration,
    transfer_cost_model,
)

__all__ = [
    "TileChoice", "best_configuration", "candidate_tiles",
    "square_tile_configuration", "transfer_cost_model",
]
