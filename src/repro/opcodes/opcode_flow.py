"""Parser and attribute class for ``opcode_flow`` strings (paper Fig. 8).

Grammar::

    opcode_flow_entry ::= `opcode_flow` `<` flow_expr `>`
    flow_expr         ::= `(` flow_expr `)` | bare_id (` ` bare_id)*

In practice (paper Fig. 6a) groups and identifiers mix freely inside a
group — ``(sA (sBcCrC))`` — so a group's items are any interleaving of
opcode names and nested groups.  The parenthesization is "a proxy to
specify multiple scopes for sequential or nested for loops" (Sec. III-C):
a nested group lands in a deeper loop than its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

from ..ir.attributes import Attribute
from .opcode_map import OpcodeMap, OpcodeSyntaxError


class FlowNode:
    """Base class of flow tree nodes."""


@dataclass(frozen=True)
class FlowOpcode(FlowNode):
    """A reference to an opcode defined in the accelerator's opcode_map."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FlowGroup(FlowNode):
    """A parenthesized scope: one loop level of communication logic."""

    items: Tuple[FlowNode, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __iter__(self) -> Iterator[FlowNode]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def opcode_names(self) -> List[str]:
        """All opcode names in this subtree, in textual order."""
        names: List[str] = []
        for item in self.items:
            if isinstance(item, FlowOpcode):
                names.append(item.name)
            else:
                names.extend(item.opcode_names())  # type: ignore[union-attr]
        return names

    def depth(self) -> int:
        """Height of the group tree (1 for a flat flow)."""
        nested = [i.depth() for i in self.items if isinstance(i, FlowGroup)]
        return 1 + (max(nested) if nested else 0)

    def __str__(self) -> str:
        return "(" + " ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class OpcodeFlow:
    """A validated flow: the root group plus convenience queries."""

    root: FlowGroup

    def opcode_names(self) -> List[str]:
        return self.root.opcode_names()

    def depth(self) -> int:
        return self.root.depth()

    def validate_against(self, opcode_map: OpcodeMap) -> None:
        """Every referenced opcode must exist in the map."""
        missing = [n for n in self.opcode_names() if n not in opcode_map]
        if missing:
            raise OpcodeSyntaxError(
                f"opcode_flow references unknown opcodes {missing}; "
                f"known: {opcode_map.names()}"
            )

    def __str__(self) -> str:
        return f"opcode_flow < {self.root} >"


@dataclass(frozen=True)
class OpcodeFlowAttr(Attribute):
    """IR attribute wrapping an :class:`OpcodeFlow` (paper Fig. 6a L23)."""

    value: OpcodeFlow

    def __str__(self) -> str:
        return str(self.value)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()":
            tokens.append(ch)
            i += 1
            continue
        if ch.isalnum() or ch == "_":
            j = i
            while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        raise OpcodeSyntaxError(f"unexpected character {ch!r} in flow")
    return tokens


def parse_opcode_flow(text: str) -> OpcodeFlow:
    """Parse an ``opcode_flow < ... >`` string into an :class:`OpcodeFlow`."""
    body = text.strip()
    if body.startswith("opcode_flow"):
        body = body[len("opcode_flow"):].strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]

    tokens = _tokenize(body)
    if not tokens:
        raise OpcodeSyntaxError("empty opcode_flow")
    position = 0

    def parse_group() -> FlowGroup:
        nonlocal position
        items: List[Union[FlowOpcode, FlowGroup]] = []
        while position < len(tokens):
            token = tokens[position]
            if token == "(":
                position += 1
                items.append(parse_group())
            elif token == ")":
                position += 1
                return FlowGroup(tuple(items))
            else:
                position += 1
                items.append(FlowOpcode(token))
        raise OpcodeSyntaxError("unbalanced parentheses in opcode_flow")

    if tokens[0] == "(":
        position = 1
        root = parse_group()
        if position != len(tokens):
            # Multiple top-level groups / trailing ids: wrap them all.
            items: List[FlowNode] = [root]
            while position < len(tokens):
                token = tokens[position]
                if token == "(":
                    position += 1
                    items.append(parse_group())
                elif token == ")":
                    raise OpcodeSyntaxError("unbalanced ')' in opcode_flow")
                else:
                    position += 1
                    items.append(FlowOpcode(token))
            root = FlowGroup(tuple(items))
    else:
        # Bare identifier list without parentheses: one flat scope.
        if any(t in "()" for t in tokens):
            raise OpcodeSyntaxError(f"unbalanced parentheses in {text!r}")
        root = FlowGroup(tuple(FlowOpcode(t) for t in tokens))

    if not root.opcode_names():
        raise OpcodeSyntaxError("opcode_flow contains no opcodes")
    return OpcodeFlow(root)
