"""AXI4MLIR opcode attributes: action lists and communication flows.

Implements the two new MLIR attribute kinds the paper introduces:

* ``opcode_map`` (Fig. 7) — a dictionary from opcode names to the sequence
  of memory actions (``send``, ``send_literal``, ``send_dim``, ``send_idx``,
  ``recv``) that drive the accelerator;
* ``opcode_flow`` (Fig. 8) — a nested sequence of opcode names whose
  parenthesization mirrors the loop scopes of the generated host code.
"""

from .actions import (
    Action,
    Recv,
    Send,
    SendDim,
    SendIdx,
    SendLiteral,
)
from .opcode_map import (
    Opcode,
    OpcodeMap,
    OpcodeMapAttr,
    OpcodeSyntaxError,
    parse_opcode_map,
)
from .opcode_flow import (
    FlowGroup,
    FlowNode,
    FlowOpcode,
    OpcodeFlow,
    OpcodeFlowAttr,
    parse_opcode_flow,
)

__all__ = [
    "Action", "Recv", "Send", "SendDim", "SendIdx", "SendLiteral",
    "Opcode", "OpcodeMap", "OpcodeMapAttr", "OpcodeSyntaxError",
    "parse_opcode_map",
    "FlowGroup", "FlowNode", "FlowOpcode", "OpcodeFlow", "OpcodeFlowAttr",
    "parse_opcode_flow",
]
