"""Action dataclasses for opcode lists (paper Sec. III-B1).

Each accelerator instruction is a sequence of three kinds of externally
visible actions — send, compute (encoded as a bare literal), and receive —
with metadata (opcode literal, operand argument, tile dimension or index).
"""

from __future__ import annotations

from dataclasses import dataclass


class Action:
    """Base class of opcode actions."""

    #: True for actions that move data toward the accelerator.
    is_send = False
    #: True for actions that move data from the accelerator.
    is_recv = False


@dataclass(frozen=True)
class SendLiteral(Action):
    """Stage a 32-bit literal (usually the opcode word itself)."""

    value: int
    is_send = True

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"literal {self.value:#x} does not fit in 32 bits")

    def __str__(self) -> str:
        return f"send_literal({self.value:#x})"


@dataclass(frozen=True)
class Send(Action):
    """Stage the current tile of operand ``arg`` (0 = A, 1 = B, 2 = C...)."""

    arg: int
    is_send = True

    def __str__(self) -> str:
        return f"send({self.arg})"


@dataclass(frozen=True)
class SendDim(Action):
    """Stage one dimension extent of operand ``arg``.

    Fig. 15a uses the two-argument form ``send_dim(1, 3)`` — operand index
    then dimension index — which this class follows.  (Fig. 7's grammar
    lists a one-argument form; the paper's own example needs two.)
    """

    arg: int
    dim: int
    is_send = True

    def __str__(self) -> str:
        return f"send_dim({self.arg},{self.dim})"


@dataclass(frozen=True)
class SendIdx(Action):
    """Stage the current index of loop dimension ``dim`` (by name)."""

    dim: str
    is_send = True

    def __str__(self) -> str:
        return f"send_idx({self.dim})"


@dataclass(frozen=True)
class Recv(Action):
    """Wait for and receive the current tile of operand ``arg``."""

    arg: int
    is_recv = True

    def __str__(self) -> str:
        return f"recv({self.arg})"
