"""Parser and attribute class for ``opcode_map`` strings (paper Fig. 7).

Grammar::

    opcode_dict  ::= `opcode_map` `<` opcode_entry (`,` opcode_entry)* `>`
    opcode_entry ::= (bare_id | string_literal) `=` opcode_list
    opcode_list  ::= `[` opcode_expr (`,` opcode_expr)* `]`
    opcode_expr  ::= `send` `(` int `)`
                   | `send_literal` `(` int `)`
                   | `send_dim` `(` int `,` int `)`
                   | `send_idx` `(` bare_id `)`
                   | `recv` `(` int `)`

Integer literals accept decimal and ``0x`` hexadecimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..ir.attributes import Attribute
from .actions import Action, Recv, Send, SendDim, SendIdx, SendLiteral


class OpcodeSyntaxError(ValueError):
    """Raised on malformed opcode_map / opcode_flow strings."""


@dataclass(frozen=True)
class Opcode:
    """A named instruction: an identifier bound to a list of actions."""

    name: str
    actions: Tuple[Action, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    @property
    def sends(self) -> Tuple[Action, ...]:
        return tuple(a for a in self.actions if a.is_send)

    @property
    def recvs(self) -> Tuple[Recv, ...]:
        return tuple(a for a in self.actions if a.is_recv)

    def send_args(self) -> Tuple[int, ...]:
        """Operand indices whose tiles this opcode transmits."""
        return tuple(a.arg for a in self.actions if isinstance(a, Send))

    def recv_args(self) -> Tuple[int, ...]:
        """Operand indices whose tiles this opcode receives."""
        return tuple(a.arg for a in self.actions if isinstance(a, Recv))

    def referenced_args(self) -> Tuple[int, ...]:
        seen: List[int] = []
        for action in self.actions:
            if isinstance(action, (Send, Recv)) and action.arg not in seen:
                seen.append(action.arg)
            if isinstance(action, SendDim) and action.arg not in seen:
                seen.append(action.arg)
        return tuple(seen)

    def __str__(self) -> str:
        return f"{self.name} = [{', '.join(str(a) for a in self.actions)}]"


@dataclass(frozen=True)
class OpcodeMap:
    """The full opcode dictionary of one accelerator."""

    opcodes: Tuple[Opcode, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "opcodes", tuple(self.opcodes))
        names = [o.name for o in self.opcodes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise OpcodeSyntaxError(
                f"duplicate opcode names: {sorted(duplicates)}"
            )

    def __contains__(self, name: str) -> bool:
        return any(o.name == name for o in self.opcodes)

    def __getitem__(self, name: str) -> Opcode:
        for opcode in self.opcodes:
            if opcode.name == name:
                return opcode
        raise KeyError(name)

    def __iter__(self) -> Iterator[Opcode]:
        return iter(self.opcodes)

    def __len__(self) -> int:
        return len(self.opcodes)

    def names(self) -> List[str]:
        return [o.name for o in self.opcodes]

    def __str__(self) -> str:
        body = ", ".join(str(o) for o in self.opcodes)
        return f"opcode_map < {body} >"


@dataclass(frozen=True)
class OpcodeMapAttr(Attribute):
    """IR attribute wrapping an :class:`OpcodeMap` (paper Fig. 6a L14)."""

    value: OpcodeMap

    def __str__(self) -> str:
        return str(self.value)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_ACTION_KEYWORDS = ("send_literal", "send_dim", "send_idx", "send", "recv")


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if not self.text.startswith(char, self.pos):
            context = self.text[self.pos:self.pos + 12]
            raise OpcodeSyntaxError(
                f"expected {char!r} at position {self.pos} (near {context!r})"
            )
        self.pos += len(char)

    def accept(self, char: str) -> bool:
        self.skip_ws()
        if self.text.startswith(char, self.pos):
            self.pos += len(char)
            return True
        return False

    def identifier(self) -> str:
        self.skip_ws()
        if self.accept('"'):
            end = self.text.find('"', self.pos)
            if end < 0:
                raise OpcodeSyntaxError("unterminated string literal")
            word = self.text[self.pos:end]
            self.pos = end + 1
            return word
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if self.pos == start:
            context = self.text[start:start + 12]
            raise OpcodeSyntaxError(
                f"expected identifier at position {start} (near {context!r})"
            )
        return self.text[start:self.pos]

    def integer(self) -> int:
        self.skip_ws()
        start = self.pos
        if self.text.startswith("0x", self.pos) or self.text.startswith("0X", self.pos):
            self.pos += 2
            while self.pos < len(self.text) and self.text[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            if self.pos == start + 2:
                raise OpcodeSyntaxError(f"bad hex literal at {start}")
            return int(self.text[start:self.pos], 16)
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start:
            raise OpcodeSyntaxError(f"expected integer at position {start}")
        return int(self.text[start:self.pos])

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def _parse_action(lexer: _Lexer) -> Action:
    keyword = lexer.identifier()
    if keyword not in _ACTION_KEYWORDS:
        raise OpcodeSyntaxError(f"unknown action {keyword!r}")
    lexer.expect("(")
    if keyword == "send_literal":
        action: Action = SendLiteral(lexer.integer())
    elif keyword == "send":
        action = Send(lexer.integer())
    elif keyword == "recv":
        action = Recv(lexer.integer())
    elif keyword == "send_dim":
        arg = lexer.integer()
        lexer.expect(",")
        action = SendDim(arg, lexer.integer())
    else:  # send_idx
        action = SendIdx(lexer.identifier())
    lexer.expect(")")
    return action


def parse_opcode_map(text: str) -> OpcodeMap:
    """Parse an ``opcode_map < ... >`` string into an :class:`OpcodeMap`."""
    lexer = _Lexer(text.strip())
    if lexer.text.startswith("opcode_map"):
        lexer.pos += len("opcode_map")
        lexer.expect("<")
        closing = lexer.text.rstrip()
        if not closing.endswith(">"):
            raise OpcodeSyntaxError("opcode_map must end with '>'")
        lexer.text = closing[:-1]

    opcodes: List[Opcode] = []
    while True:
        name = lexer.identifier()
        lexer.expect("=")
        lexer.expect("[")
        actions: List[Action] = [_parse_action(lexer)]
        while lexer.accept(","):
            actions.append(_parse_action(lexer))
        lexer.expect("]")
        opcodes.append(Opcode(name, tuple(actions)))
        if not lexer.accept(","):
            break
    if not lexer.at_end():
        raise OpcodeSyntaxError(
            f"trailing input at position {lexer.pos}: "
            f"{lexer.text[lexer.pos:lexer.pos + 20]!r}"
        )
    return OpcodeMap(tuple(opcodes))


def opcode_map_from_dict(entries: Dict[str, List[Action]]) -> OpcodeMap:
    """Programmatic construction, mirroring the parsed form."""
    return OpcodeMap(tuple(Opcode(k, tuple(v)) for k, v in entries.items()))
