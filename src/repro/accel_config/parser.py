"""JSON configuration parsing and validation (paper Fig. 5, step 2).

Accepts sizes either as integers or as strings with K/M suffixes
(``"32K"``), matching the paper's informal notation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..ir.types import element_type_from_string
from ..opcodes import (
    OpcodeFlow,
    OpcodeSyntaxError,
    parse_opcode_flow,
    parse_opcode_map,
)
from .errors import ConfigError
from .schema import AcceleratorInfo, CPUInfo, DMAConfig, SystemConfig

_SIZE_SUFFIXES = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}


def parse_size(value: Union[int, str]) -> int:
    """Parse ``32768``, ``"32K"``, ``"512K"``, ``"1M"``, or ``"0xFF00"``."""
    if isinstance(value, int):
        return value
    text = value.strip()
    if text.lower().startswith("0x"):
        return int(text, 16)
    suffix = text[-1:].upper()
    if suffix in _SIZE_SUFFIXES:
        return int(float(text[:-1]) * _SIZE_SUFFIXES[suffix])
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"cannot parse size {value!r}") from None


def parse_cpu(data: Dict) -> CPUInfo:
    """Parse the ``"cpu"`` section."""
    levels = data.get("cache-levels", data.get("cache_levels"))
    types = data.get("cache-types", data.get("cache_types"))
    kwargs = {}
    if levels is not None:
        kwargs["cache_levels"] = tuple(parse_size(v) for v in levels)
    if types is not None:
        kwargs["cache_types"] = tuple(str(t) for t in types)
    if "line-size" in data or "line_size" in data:
        kwargs["line_size"] = parse_size(data.get("line-size",
                                                  data.get("line_size")))
    if "frequency" in data:
        kwargs["frequency_hz"] = float(parse_size(data["frequency"]))
    if "associativity" in data:
        kwargs["associativity"] = tuple(int(a) for a in data["associativity"])
    try:
        return CPUInfo(**kwargs)
    except ValueError as error:
        raise ConfigError(f"bad cpu section: {error}") from error


def _parse_dma(data: Dict) -> DMAConfig:
    try:
        return DMAConfig(
            id=int(data.get("id", 0)),
            input_address=parse_size(data.get("inputAddress", 0x42)),
            input_buffer_size=parse_size(data.get("inputBufferSize", 0xFF00)),
            output_address=parse_size(data.get("outputAddress", 0xFF42)),
            output_buffer_size=parse_size(data.get("outputBufferSize", 0xFF00)),
        )
    except ValueError as error:
        raise ConfigError(f"bad dma_config: {error}") from error


def _require(data: Dict, key: str, context: str):
    if key not in data:
        raise ConfigError(f"{context}: missing required key {key!r}")
    return data[key]


def parse_accelerator(data: Dict) -> AcceleratorInfo:
    """Parse one entry of the ``"accelerators"`` list."""
    name = str(data.get("name", "accelerator"))
    context = f"accelerator {name!r}"

    kernel = str(_require(data, "kernel", context))
    dims = tuple(str(d) for d in _require(data, "dims", context))
    accel_size = tuple(
        int(parse_size(v)) for v in _require(data, "accel_size", context)
    )
    try:
        data_type = element_type_from_string(
            str(data.get("data_type", "int32"))
        )
    except ValueError as error:
        raise ConfigError(f"{context}: {error}") from error

    data_section = _require(data, "data", context)
    operand_entries: List[Tuple[str, Tuple[str, ...]]] = []
    for operand_name, operand_dims in data_section.items():
        operand_entries.append(
            (str(operand_name), tuple(str(d) for d in operand_dims))
        )

    try:
        opcode_map = parse_opcode_map(str(_require(data, "opcode_map", context)))
    except OpcodeSyntaxError as error:
        raise ConfigError(f"{context}: bad opcode_map: {error}") from error

    flows_section = _require(data, "opcode_flow_map", context)
    if not flows_section:
        raise ConfigError(f"{context}: opcode_flow_map is empty")
    flows: List[Tuple[str, OpcodeFlow]] = []
    for flow_name, flow_text in flows_section.items():
        try:
            flows.append((str(flow_name), parse_opcode_flow(str(flow_text))))
        except OpcodeSyntaxError as error:
            raise ConfigError(
                f"{context}: bad opcode_flow {flow_name!r}: {error}"
            ) from error

    selected = str(data.get("selected_flow", flows[0][0]))

    init_opcodes = None
    if "init_opcodes" in data:
        try:
            init_opcodes = parse_opcode_flow(str(data["init_opcodes"]))
        except OpcodeSyntaxError as error:
            raise ConfigError(f"{context}: bad init_opcodes: {error}") from error

    try:
        return AcceleratorInfo(
            name=name,
            kernel=kernel,
            accel_size=accel_size,
            data_type=data_type,
            dims=dims,
            data=tuple(operand_entries),
            opcode_map=opcode_map,
            opcode_flows=tuple(flows),
            selected_flow=selected,
            dma_config=_parse_dma(data.get("dma_config", {})),
            init_opcodes=init_opcodes,
            version=str(data.get("version", "1.0")),
            description=str(data.get("description", "")),
            loop_permutation=tuple(
                str(d) for d in data["loop_permutation"]
            ) if "loop_permutation" in data else None,
            flexible_size=bool(data.get("flexible_size", False)),
            flex_quantum=int(data.get("flex_quantum", 1)),
            buffer_capacity=int(parse_size(data.get("buffer_capacity", 0))),
        )
    except ValueError as error:
        raise ConfigError(f"{context}: {error}") from error


def parse_config(data: Dict) -> SystemConfig:
    """Parse a full configuration dictionary (the JSON root object)."""
    cpu = parse_cpu(data.get("cpu", {}))
    accel_section = data.get("accelerators", [])
    if not isinstance(accel_section, list):
        raise ConfigError('"accelerators" must be a list')
    accelerators = tuple(parse_accelerator(a) for a in accel_section)
    return SystemConfig(cpu=cpu, accelerators=accelerators)


def load_config(path: Union[str, Path]) -> SystemConfig:
    """Load and parse a configuration file from disk."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path}: invalid JSON: {error}") from error
    return parse_config(data)
