"""Typed configuration objects (paper Fig. 5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.types import Type
from ..opcodes import OpcodeFlow, OpcodeMap


@dataclass(frozen=True)
class CPUInfo:
    """Host CPU description: ``"cpu"`` section of the config file.

    ``cache_levels`` are capacities in bytes, smallest (L1) first;
    ``cache_types`` parallels it with ``"data"`` / ``"shared"`` tags.
    Frequency and cache geometry have PYNQ-Z2 (Cortex-A9) defaults.
    """

    cache_levels: Tuple[int, ...] = (32 * 1024, 512 * 1024)
    cache_types: Tuple[str, ...] = ("data", "shared")
    line_size: int = 32
    associativity: Tuple[int, ...] = (4, 8)
    frequency_hz: float = 650e6

    def __post_init__(self) -> None:
        object.__setattr__(self, "cache_levels", tuple(self.cache_levels))
        object.__setattr__(self, "cache_types", tuple(self.cache_types))
        object.__setattr__(self, "associativity", tuple(self.associativity))
        if len(self.cache_levels) != len(self.cache_types):
            raise ValueError("cache-levels and cache-types length mismatch")

    @property
    def l1_data_size(self) -> int:
        for size, kind in zip(self.cache_levels, self.cache_types):
            if kind == "data":
                return size
        return self.cache_levels[0]

    @property
    def last_level_size(self) -> int:
        return self.cache_levels[-1]


@dataclass(frozen=True)
class DMAConfig:
    """DMA engine parameters: ``dma_config`` (trait ``dma_init_config``)."""

    id: int = 0
    input_address: int = 0x42
    input_buffer_size: int = 0xFF00
    output_address: int = 0xFF42
    output_buffer_size: int = 0xFF00

    def __post_init__(self) -> None:
        if self.input_buffer_size <= 0 or self.output_buffer_size <= 0:
            raise ValueError("DMA buffer sizes must be positive")

    def as_operand_list(self) -> Tuple[int, int, int, int, int]:
        return (self.id, self.input_address, self.input_buffer_size,
                self.output_address, self.output_buffer_size)


@dataclass(frozen=True)
class AcceleratorInfo:
    """One accelerator entry of the configuration file.

    ``dims`` names the kernel's loop dimensions (e.g. ``["m","n","k"]``);
    ``data`` maps operand names, in operand order, to the dims that index
    them (``{"A": ["m","k"], "B": ["k","n"], "C": ["m","n"]}``);
    ``accel_size`` gives the accelerator tile extent per dim, where 0 means
    "the accelerator does not tile this dim" (conv Fig. 15a).
    """

    name: str
    kernel: str
    accel_size: Tuple[int, ...]
    data_type: Type
    dims: Tuple[str, ...]
    data: Tuple[Tuple[str, Tuple[str, ...]], ...]
    opcode_map: OpcodeMap
    opcode_flows: Tuple[Tuple[str, OpcodeFlow], ...]
    selected_flow: str
    dma_config: DMAConfig = field(default_factory=DMAConfig)
    init_opcodes: Optional[OpcodeFlow] = None
    version: str = "1.0"
    description: str = ""
    #: True when tile sizes may vary per problem as long as they divide
    #: ``flex_quantum`` and fit the buffers (the paper's v4 "flex size").
    flexible_size: bool = False
    flex_quantum: int = 1
    #: Accelerator internal buffer capacity in elements (for flex sizing).
    buffer_capacity: int = 0
    #: Optional explicit host loop order (outermost first); when absent
    #: the compiler derives it from the selected opcode flow.
    loop_permutation: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "accel_size", tuple(self.accel_size))
        object.__setattr__(self, "dims", tuple(self.dims))
        object.__setattr__(
            self, "data",
            tuple((k, tuple(v)) for k, v in self.data),
        )
        object.__setattr__(self, "opcode_flows", tuple(self.opcode_flows))
        if len(self.accel_size) != len(self.dims):
            raise ValueError(
                f"accel_size has {len(self.accel_size)} entries for "
                f"{len(self.dims)} dims"
            )
        flow_names = [name for name, _ in self.opcode_flows]
        if self.selected_flow not in flow_names:
            raise ValueError(
                f"selected_flow {self.selected_flow!r} not among {flow_names}"
            )
        for arg_name, arg_dims in self.data:
            unknown = [d for d in arg_dims if d not in self.dims]
            if unknown:
                raise ValueError(
                    f"operand {arg_name!r} uses unknown dims {unknown}"
                )
        if self.loop_permutation is not None:
            object.__setattr__(self, "loop_permutation",
                               tuple(self.loop_permutation))
            unknown_dims = [d for d in self.loop_permutation
                            if d not in self.dims]
            if unknown_dims:
                raise ValueError(
                    f"loop_permutation uses unknown dims {unknown_dims}"
                )
        for _, flow in self.opcode_flows:
            flow.validate_against(self.opcode_map)
        if self.init_opcodes is not None:
            self.init_opcodes.validate_against(self.opcode_map)

    # -- queries ------------------------------------------------------------
    @property
    def flow(self) -> OpcodeFlow:
        return self.flow_named(self.selected_flow)

    def flow_named(self, name: str) -> OpcodeFlow:
        for flow_name, flow in self.opcode_flows:
            if flow_name == name:
                return flow
        raise KeyError(name)

    def flow_names(self) -> List[str]:
        return [name for name, _ in self.opcode_flows]

    def operand_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.data)

    def operand_dims(self, index: int) -> Tuple[str, ...]:
        return self.data[index][1]

    def dim_position(self, dim: str) -> int:
        return self.dims.index(dim)

    def tile_sizes(self) -> Dict[str, int]:
        """Per-dim accelerator tile size (0 entries mean untiled)."""
        return dict(zip(self.dims, self.accel_size))

    def with_flow(self, flow_name: str) -> "AcceleratorInfo":
        """A copy of this config selecting a different opcode flow."""
        from dataclasses import replace

        if flow_name not in self.flow_names():
            raise KeyError(flow_name)
        return replace(self, selected_flow=flow_name)

    def with_accel_size(self, sizes) -> "AcceleratorInfo":
        """A copy with new tile sizes (for flexible-size accelerators)."""
        from dataclasses import replace

        return replace(self, accel_size=tuple(sizes))


@dataclass(frozen=True)
class SystemConfig:
    """A full parsed configuration file: one CPU, many accelerators."""

    cpu: CPUInfo
    accelerators: Tuple[AcceleratorInfo, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "accelerators", tuple(self.accelerators))

    def accelerator(self, name: Optional[str] = None) -> AcceleratorInfo:
        if name is None:
            if len(self.accelerators) != 1:
                raise KeyError(
                    "config has multiple accelerators; pass a name"
                )
            return self.accelerators[0]
        for accel in self.accelerators:
            if accel.name == name:
                return accel
        raise KeyError(name)
