"""Accelerator and host-CPU configuration files (paper Fig. 5, steps 1-2).

The user describes the target SoC in JSON: CPU cache hierarchy plus, per
accelerator, the supported kernel, tile sizes, data type, operand/dimension
structure, the opcode map, the available opcode flows, and DMA parameters.
:func:`parse_config` validates everything and produces typed objects the
compiler passes consume.
"""

from .errors import ConfigError
from .schema import (
    AcceleratorInfo,
    CPUInfo,
    DMAConfig,
    SystemConfig,
)
from .parser import (
    load_config,
    parse_config,
    parse_accelerator,
    parse_cpu,
)

__all__ = [
    "ConfigError",
    "AcceleratorInfo", "CPUInfo", "DMAConfig", "SystemConfig",
    "load_config", "parse_config", "parse_accelerator", "parse_cpu",
]
