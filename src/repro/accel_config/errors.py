"""Configuration error type."""


class ConfigError(ValueError):
    """Raised when an accelerator/CPU configuration file is invalid.

    The message always names the offending key so that co-design users can
    fix the JSON without reading compiler source.
    """
