"""Top-level AXI4MLIR driver: configuration to executable host code.

Typical use (see ``examples/quickstart.py``)::

    accel_hw, accel_info = make_matmul_system(version=3, size=8, flow="Cs")
    compiler = AXI4MLIRCompiler(accel_info)
    kernel = compiler.compile_matmul(64, 64, 64)
    board = make_pynq_z2()
    board.attach_accelerator(accel_hw)
    counters = kernel.run(board, A, B, C)      # C += A @ B on the accelerator
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .accel_config import AcceleratorInfo, CPUInfo
from .codegen import compile_host_function, emit_function_source
from .dialects import func, linalg
from .execution import interpret_function
from .ir import Module, MemRefType, element_type_from_string
from .runtime import AxiRuntime, CALL_STYLE_GENERATED
from .soc import Board
from .transforms import CompileError, build_axi4mlir_pipeline
from .transforms.lower_to_accel import LoweringPlan


def _np_dtype(element_type) -> np.dtype:
    text = str(element_type)
    return np.dtype({"f32": np.float32, "f64": np.float64,
                     "i32": np.int32, "i64": np.int64}.get(text, np.int32))


def build_matmul_module(m: int, n: int, k: int, element_type) -> Module:
    """A module holding ``matmul_call``: C(m,n) += A(m,k) * B(k,n)."""
    module = Module()
    func_op = func.define(
        "matmul_call",
        [
            MemRefType((m, k), element_type),
            MemRefType((k, n), element_type),
            MemRefType((m, n), element_type),
        ],
    )
    module.add_function(func_op)
    b = func.builder_at_entry(func_op)
    a, rhs, out = func.arguments(func_op)
    linalg.matmul(b, a, rhs, out)
    func.ret(b)
    return module


def build_conv_module(batch: int, in_ch: int, in_hw: int, out_ch: int,
                      f_hw: int, stride: int, element_type) -> Module:
    """A module holding ``conv_call`` for one NCHW/FCHW convolution."""
    out_hw = (in_hw - f_hw) // stride + 1
    module = Module()
    func_op = func.define(
        "conv_call",
        [
            MemRefType((batch, in_ch, in_hw, in_hw), element_type),
            MemRefType((out_ch, in_ch, f_hw, f_hw), element_type),
            MemRefType((batch, out_ch, out_hw, out_hw), element_type),
        ],
    )
    module.add_function(func_op)
    b = func.builder_at_entry(func_op)
    image, weights, out = func.arguments(func_op)
    linalg.conv_2d_nchw_fchw(b, image, weights, out, stride=stride)
    func.ret(b)
    return module


@dataclass
class CompiledKernel:
    """The result of one compilation: IR, emitted source, callable."""

    module: Module
    func_name: str
    source: str
    entry_point: object
    plan: Optional[LoweringPlan] = None
    specialized_copies: bool = True
    parameters: dict = field(default_factory=dict)

    @property
    def func_op(self):
        return self.module.lookup(self.func_name)

    def make_runtime(self, board: Board) -> AxiRuntime:
        return AxiRuntime(board, specialized_copies=self.specialized_copies,
                          call_style=CALL_STYLE_GENERATED)

    def run(self, board: Board, *arrays: np.ndarray,
            runtime: Optional[AxiRuntime] = None):
        """Execute the emitted host code against ``board``.

        Returns the perf counter delta for this invocation.
        """
        rt = runtime or self.make_runtime(board)
        descriptors = [rt.make_memref(np.ascontiguousarray(a), f"arg{i}")
                       for i, a in enumerate(arrays)]
        before = board.snapshot()
        self.entry_point(rt, *descriptors)
        return board.measure_since(before)

    def run_interpreted(self, board: Board, *arrays: np.ndarray,
                        runtime: Optional[AxiRuntime] = None):
        """Execute via the reference interpreter (tests / debugging)."""
        rt = runtime or self.make_runtime(board)
        descriptors = [rt.make_memref(np.ascontiguousarray(a), f"arg{i}")
                       for i, a in enumerate(arrays)]
        before = board.snapshot()
        interpret_function(self.func_op, descriptors, rt)
        return board.measure_since(before)


class AXI4MLIRCompiler:
    """User-facing compiler: accelerator config in, host driver out."""

    def __init__(self, info: AcceleratorInfo, cpu: Optional[CPUInfo] = None,
                 flow_name: Optional[str] = None,
                 permutation: Optional[Sequence[str]] = None,
                 enable_cpu_tiling: bool = True,
                 specialized_copies: bool = True):
        self.info = info
        self.cpu = cpu or CPUInfo()
        self.flow_name = flow_name
        self.permutation = permutation if permutation is not None \
            else info.loop_permutation
        self.enable_cpu_tiling = enable_cpu_tiling
        self.specialized_copies = specialized_copies

    # -- generic entry ---------------------------------------------------
    def compile_module(self, module: Module, func_name: str,
                       parameters: Optional[dict] = None) -> CompiledKernel:
        pipeline = build_axi4mlir_pipeline(
            self.info,
            cpu=self.cpu,
            flow_name=self.flow_name,
            permutation=self.permutation,
            enable_cpu_tiling=self.enable_cpu_tiling,
        )
        pipeline.run(module)
        func_op = module.lookup(func_name)
        entry, source = compile_host_function(func_op)
        lower_pass = pipeline.passes[-1]
        plan = lower_pass.plans[0] if getattr(lower_pass, "plans", None) \
            else None
        return CompiledKernel(
            module=module,
            func_name=func_name,
            source=source,
            entry_point=entry,
            plan=plan,
            specialized_copies=self.specialized_copies,
            parameters=dict(parameters or {}),
        )

    # -- kernels -----------------------------------------------------------
    def compile_matmul(self, m: int, n: int, k: int) -> CompiledKernel:
        if self.info.kernel != "linalg.matmul":
            raise CompileError(
                f"accelerator {self.info.name!r} implements "
                f"{self.info.kernel!r}, not linalg.matmul"
            )
        module = build_matmul_module(m, n, k, self.info.data_type)
        return self.compile_module(
            module, "matmul_call", {"m": m, "n": n, "k": k}
        )

    def compile_conv(self, batch: int, in_ch: int, in_hw: int, out_ch: int,
                     f_hw: int, stride: int = 1) -> CompiledKernel:
        if self.info.kernel != "linalg.conv_2d_nchw_fchw":
            raise CompileError(
                f"accelerator {self.info.name!r} implements "
                f"{self.info.kernel!r}, not linalg.conv_2d_nchw_fchw"
            )
        module = build_conv_module(batch, in_ch, in_hw, out_ch, f_hw,
                                   stride, self.info.data_type)
        return self.compile_module(
            module, "conv_call",
            {"batch": batch, "in_ch": in_ch, "in_hw": in_hw,
             "out_ch": out_ch, "f_hw": f_hw, "stride": stride},
        )


def element_type(name: str):
    """Re-export for callers building custom modules from dtype names."""
    return element_type_from_string(name)
